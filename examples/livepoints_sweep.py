#!/usr/bin/env python3
"""Core-parameter sweep from a live-point library.

Generates a live-point checkpoint library once (one warmed functional
pass), then replays only the detailed clusters for a sweep over core
configurations — the use case of "Simulation Sampling with Live-Points"
(Wenisch et al., ISPASS 2006), which the paper cites as reference [18].

    python examples/livepoints_sweep.py [workload]
"""

import sys
import time

from repro import SamplingRegimen, SimulatorConfigs, build_workload
from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.livepoints import LivePointLibrary
from repro.timing import CoreConfig


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    workload = build_workload(name)
    regimen = SamplingRegimen(
        total_instructions=200_000, num_clusters=15, cluster_size=1_200,
    )
    configs = SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )

    print(f"generating live-point library for {name} "
          f"({regimen.describe()})…")
    library = LivePointLibrary.generate(
        workload, regimen, configs, warmup_prefix=20_000,
    )
    print(f"  {len(library)} points in {library.generation_seconds:.1f}s\n")

    sweeps = [
        ("baseline (4-issue, ROB 64)", CoreConfig()),
        ("narrow (1-issue)", CoreConfig(issue_width=1)),
        ("wide (8-issue, retire 8)", CoreConfig(issue_width=8,
                                                retire_width=8)),
        ("small window (ROB 16)", CoreConfig(rob_entries=16,
                                             issue_queue_entries=8)),
        ("harsh mispredict (20 cyc)", CoreConfig(mispredict_penalty=20)),
    ]

    header = f"{'core configuration':28s} {'IPC':>8s} {'replay time':>12s}"
    print(header)
    print("-" * len(header))
    total_replay = 0.0
    for label, core in sweeps:
        start = time.perf_counter()
        result = library.replay(core)
        elapsed = time.perf_counter() - start
        total_replay += elapsed
        print(f"{label:28s} {result.estimate.mean:8.4f} {elapsed:11.2f}s")

    print(
        f"\n{len(sweeps)} configurations replayed in {total_replay:.1f}s "
        f"versus one {library.generation_seconds:.1f}s library build — "
        "functional fast-forwarding is paid once, not per configuration."
    )


if __name__ == "__main__":
    main()
