#!/usr/bin/env python3
"""Compare every warm-up method of the paper's Table 2 on one workload.

Reproduces a single column of the appendix tables: relative error, the
95% confidence test, warm-up update counts, and the deterministic work
metric for all sixteen configurations (plus the MRRL/BLRL related-work
baselines the paper discusses in §2).

    python examples/warmup_comparison.py [workload] [total_instructions]
"""

import sys

from repro import (
    BLRLWarmup,
    MRRLWarmup,
    SampledSimulator,
    SamplingRegimen,
    build_workload,
    measure_true_ipc,
    paper_method_suite,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    total = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000

    workload = build_workload(name)
    true_run = measure_true_ipc(workload, total)
    print(f"{workload.name}: true IPC = {true_run.ipc:.4f}\n")

    regimen = SamplingRegimen(
        total_instructions=total, num_clusters=15, cluster_size=1_200,
    )
    simulator = SampledSimulator(workload, regimen)

    methods = paper_method_suite() + [MRRLWarmup(0.95), BLRLWarmup(0.95)]
    header = (f"{'method':14s} {'IPC':>8s} {'rel.err':>8s} {'CI':>4s} "
              f"{'$ upd':>9s} {'BP upd':>8s} {'logged':>9s} {'work':>11s}")
    print(header)
    print("-" * len(header))
    for method in methods:
        result = simulator.run(method)
        error = result.relative_error(true_run.ipc)
        ci = "yes" if result.passes_confidence_test(true_run.ipc) else "no"
        cost = result.cost
        print(f"{result.method_name:14s} {result.estimate.mean:8.4f} "
              f"{error * 100:7.2f}% {ci:>4s} {cost.cache_updates:9,d} "
              f"{cost.predictor_updates:8,d} {cost.log_records:9,d} "
              f"{cost.work_units():11,.0f}")


if __name__ == "__main__":
    main()
