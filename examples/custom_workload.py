#!/usr/bin/env python3
"""Bring your own workload: assemble a program and sample it with RSR.

Demonstrates the two program-construction APIs — the text assembler and
the ProgramBuilder — and how to wrap an arbitrary program in a Workload
so the sampling stack can run it.

    python examples/custom_workload.py
"""

import numpy as np

from repro import (
    Memory,
    ReverseStateReconstruction,
    SampledSimulator,
    SamplingRegimen,
    SmartsWarmup,
    assemble,
    build_workload,
    measure_true_ipc,
)
from repro.workloads import Workload, init_pointer_chain

HISTOGRAM_KERNEL = """
# A histogram kernel: random increments over a table, with a
# data-dependent branch on the bucket value.
.name histogram
.entry main
main:   li   r26, 424243          # LCG state
        li   r20, 268435456       # table base (0x10000000)
loop:   li   r8, 6364136223846793005
        mul  r26, r26, r8
        li   r8, 1442695040888963407
        add  r26, r26, r8
        srli r3, r26, 30
        andi r3, r3, 2047          # bucket index
        slli r3, r3, 3
        add  r3, r3, r20
        load r4, r3, 0
        addi r4, r4, 1
        store r4, r3, 0
        andi r5, r4, 7
        bne  r5, r0, loop          # usually taken, data dependent
        addi r6, r6, 1
        jmp  loop
"""


def make_histogram_workload() -> Workload:
    program = assemble(HISTOGRAM_KERNEL)
    memory = Memory()
    # Pre-seed some buckets so the kernel starts from non-trivial state.
    rng = np.random.default_rng(7)
    init_pointer_chain(memory, 0x1100_0000, 256, rng)  # unused scratch
    return Workload(
        name="histogram",
        program=program,
        memory=memory,
        description="user-supplied histogram kernel",
    )


def main() -> None:
    workload = make_histogram_workload()
    total = 100_000
    true_run = measure_true_ipc(workload, total)
    print(f"custom workload {workload.name!r}: true IPC = {true_run.ipc:.4f}")

    regimen = SamplingRegimen(
        total_instructions=total, num_clusters=10, cluster_size=1_000,
    )
    simulator = SampledSimulator(workload, regimen)
    for method in (SmartsWarmup(), ReverseStateReconstruction(0.2)):
        result = simulator.run(method)
        print(f"  {result.method_name:12s} "
              f"IPC={result.estimate.mean:.4f} "
              f"err={result.relative_error(true_run.ipc) * 100:.2f}% "
              f"warm updates={result.cost.warm_updates():,}")

    # The built-in generators remain available alongside custom programs.
    reference = build_workload("perl")
    print(f"\n(for comparison, built-in {reference.name!r}: "
          f"{len(reference.program)} instructions, "
          f"{reference.memory.footprint_words()} data words)")


if __name__ == "__main__":
    main()
