#!/usr/bin/env python3
"""Quickstart: sampled simulation with Reverse State Reconstruction.

Runs one synthetic workload three ways — no warm-up, SMARTS full
functional warming, and the paper's Reverse State Reconstruction — and
compares accuracy and cost against a full-trace detailed simulation.

    python examples/quickstart.py [workload]
"""

import sys

from repro import (
    NoWarmup,
    ReverseStateReconstruction,
    SampledSimulator,
    SamplingRegimen,
    SmartsWarmup,
    build_workload,
    measure_true_ipc,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    workload = build_workload(name)
    total = 240_000

    print(f"workload: {workload.name} — {workload.description}")
    print("running full-trace detailed simulation (the accuracy baseline)…")
    true_run = measure_true_ipc(workload, total)
    print(f"  true IPC = {true_run.ipc:.4f} "
          f"({true_run.wall_seconds:.1f}s of wall time)\n")

    regimen = SamplingRegimen(
        total_instructions=total, num_clusters=25, cluster_size=1_200,
    )
    print(f"sampling regimen: {regimen.describe()}\n")
    simulator = SampledSimulator(workload, regimen)

    header = (f"{'method':14s} {'IPC est.':>9s} {'rel. err':>9s} "
              f"{'95% CI pass':>12s} {'warm updates':>13s} "
              f"{'work units':>11s}")
    print(header)
    print("-" * len(header))
    for method in (NoWarmup(), SmartsWarmup(),
                   ReverseStateReconstruction(fraction=0.2)):
        result = simulator.run(method)
        error = result.relative_error(true_run.ipc)
        passes = result.passes_confidence_test(true_run.ipc)
        print(f"{result.method_name:14s} {result.estimate.mean:9.4f} "
              f"{error * 100:8.2f}% {str(passes):>12s} "
              f"{result.cost.warm_updates():13,d} "
              f"{result.cost.work_units():11,.0f}")

    print(
        "\nReverse State Reconstruction approaches SMARTS accuracy while "
        "applying far fewer warm-up updates — the paper's headline result."
    )


if __name__ == "__main__":
    main()
