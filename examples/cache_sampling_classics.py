#!/usr/bin/env python3
"""The classical cache-sampling techniques the paper builds on (§2).

Captures a data-reference trace from a workload and compares miss-ratio
estimators: full-trace simulation (ground truth), cold time sampling
(the cold-start overestimate that motivates all warm-up research),
Laha's primed-set rule, and Kessler-style set sampling.

    python examples/cache_sampling_classics.py [workload]
"""

import sys

from repro import (
    build_workload,
    capture_trace,
    full_trace_miss_ratio,
    set_sampling_estimate,
    time_sampling_estimate,
)
from repro.cache import CacheConfig, WritePolicy


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    workload = build_workload(name)
    config = CacheConfig(
        name="study", size_bytes=8 * 1024, line_bytes=64, associativity=4,
        write_policy=WritePolicy.WBWA, hit_latency=1,
    )

    print(f"capturing 60k data references from {name}…")
    trace = capture_trace(workload, 60_000, skip_instructions=5_000)
    truth = full_trace_miss_ratio(trace, config)
    print(f"  full-trace miss ratio (ground truth): {truth:.4f}\n")

    rows = [
        ("time sampling, cold start",
         time_sampling_estimate(trace, config, num_samples=12,
                                sample_length=1_500, seed=1)),
        ("time sampling, primed sets (Laha)",
         time_sampling_estimate(trace, config, num_samples=12,
                                sample_length=1_500, seed=1,
                                primed_sets=True)),
        ("set sampling, 8 of 32 sets",
         set_sampling_estimate(trace, config, num_sets_sampled=8, seed=2)),
        ("set sampling, 16 of 32 sets",
         set_sampling_estimate(trace, config, num_sets_sampled=16, seed=2)),
    ]

    header = (f"{'estimator':36s} {'miss ratio':>11s} {'rel. error':>11s} "
              f"{'refs simulated':>15s}")
    print(header)
    print("-" * len(header))
    for label, estimate in rows:
        print(f"{label:36s} {estimate.miss_ratio:11.4f} "
              f"{estimate.relative_error(truth) * 100:10.2f}% "
              f"{estimate.references_simulated:15,d}")

    print(
        "\nThe cold-start overestimate of naive time sampling is the very "
        "problem warm-up methods — and ultimately Reverse State "
        "Reconstruction — were invented to fix; primed sets were the "
        "1988-era answer, and the paper's §3.1 notes RSR's reconstructed "
        "bits are 'similar to the notion of a primed set'."
    )


if __name__ == "__main__":
    main()
