#!/usr/bin/env python3
"""State-level anatomy of the cold-start problem.

IPC error is the symptom; stale microarchitectural state is the disease.
This example scores several warm-up policies against the SMARTS
reference at every cluster entry: how much of the cache contents and
predictor state does each policy get right?

    python examples/state_fidelity.py [workload]
"""

import sys

from repro import SamplingRegimen, SimulatorConfigs, build_workload
from repro.analysis import measure_state_fidelity
from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.core import ReverseStateReconstruction
from repro.warmup import FixedPeriodWarmup, NoWarmup


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    workload = build_workload(name)
    regimen = SamplingRegimen(
        total_instructions=160_000, num_clusters=10, cluster_size=1_000,
    )
    configs = SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )

    methods = [
        NoWarmup(),
        FixedPeriodWarmup(0.2),
        ReverseStateReconstruction(0.2),
        ReverseStateReconstruction(1.0),
    ]

    header = (f"{'method':14s} {'L1D':>7s} {'L2':>7s} {'counters':>9s} "
              f"{'predictions':>12s} {'GHR':>5s} {'RAS':>5s}")
    print(f"state agreement with the SMARTS reference at cluster entry "
          f"({name}):\n")
    print(header)
    print("-" * len(header))
    for method in methods:
        report = measure_state_fidelity(
            workload, regimen, method, configs, warmup_prefix=20_000,
        )
        summary = report.summary()
        print(f"{method.name:14s} "
              f"{summary['l1d_overlap'] * 100:6.1f}% "
              f"{summary['l2_overlap'] * 100:6.1f}% "
              f"{summary['counter_agreement'] * 100:8.1f}% "
              f"{summary['prediction_agreement'] * 100:11.1f}% "
              f"{summary['ghr_match'] * 100:4.0f}% "
              f"{summary['ras_top_match'] * 100:4.0f}%")

    print(
        "\nReading: stale caches are almost entirely wrong at cluster "
        "entry (the cold-start problem), while stale counters mostly "
        "still predict correctly — the state-level reason cache warm-up "
        "dominates branch-predictor warm-up in Figures 5-7."
    )


if __name__ == "__main__":
    main()
