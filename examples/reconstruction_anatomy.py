#!/usr/bin/env python3
"""Anatomy of Reverse State Reconstruction (paper Figures 2, 3, 4).

Walks through the three reconstruction mechanisms on tiny hand-traced
inputs, printing each step:

1. Figure 2 — reverse cache-set reconstruction versus normal simulation.
2. Figure 3 — inferring 2-bit counter states from reverse histories.
3. Figure 4 — the reverse return-address-stack counter algorithm.

    python examples/reconstruction_anatomy.py
"""

from repro.cache import Cache, CacheConfig, WritePolicy
from repro.core import default_table, reconstruct_ras_contents
from repro.core.logging import BR_CALL, BR_RET


def show_set(cache: Cache, label: str) -> None:
    order = cache.order[0]
    tags = [cache.tags[0][way] for way in order]
    # With one 64-byte-line set, the tag of line address (i+4)*256 is
    # (i+4)*4; invert that to recover the letter.
    names = ["-" if t is None else chr(ord("A") + t // 4 - 4) for t in tags]
    print(f"  {label}: MRU -> LRU = {names}")


def figure2() -> None:
    print("Figure 2 — reverse cache reconstruction of one set")
    print("  stale contents B A D C (MRU..LRU); skip-region stream E A F C")

    def fresh():
        cache = Cache(CacheConfig("fig2", 256, 64, 4, WritePolicy.WTNA, 1))
        # Line addresses chosen so tag == letter index + 4.
        for letter in "CDAB":
            cache.access((ord(letter) - ord("A") + 4) * 256)
        return cache

    addr = {c: (ord(c) - ord("A") + 4) * 256 for c in "ABCDEF"}

    forward = fresh()
    for letter in "EAFC":
        forward.access(addr[letter])
    show_set(forward, "normal simulation ")

    reverse = fresh()
    reverse.begin_reconstruction()
    for letter in reversed("EAFC"):
        applied = reverse.reconstruct_reference(addr[letter])
        print(f"    reverse ref {letter}: "
              f"{'applied' if applied else 'ignored (redundant)'}")
    show_set(reverse, "reverse reconstruction")
    match = forward.state_fingerprint() == reverse.state_fingerprint()
    print(f"  states identical: {match}\n")


def figure3() -> None:
    print("Figure 3 — counter inference from reverse branch history")
    table = default_table()
    cases = [
        ("T T T (last three taken)", [True, True, True]),
        ("N N N (last three not taken)", [False, False, False]),
        ("N T T T (pattern deeper in history)", [False, True, True, True]),
        ("T (single outcome)", [True]),
        ("T N (alternating)", [True, False]),
    ]
    names = {0: "strong NT", 1: "weak NT", 2: "weak T", 3: "strong T",
             None: "left stale"}
    for label, reverse_history in cases:
        bits = 0
        for position, taken in enumerate(reverse_history):
            bits |= int(taken) << position
        inference = table.lookup(len(reverse_history), bits)
        kind = "exact" if inference.exact else \
            f"ambiguous {set(inference.possible)}"
        print(f"  {label:36s} -> {names[inference.value]:9s} ({kind})")
    print()


def figure4() -> None:
    print("Figure 4 — reverse RAS reconstruction")
    # Forward call sequence: call@10, call@20, ret, call@30, ret, ret,
    # call@40, call@50  (only the last two frames survive).
    log = [
        (10, 110, True, BR_CALL),
        (20, 120, True, BR_CALL),
        (25, 0, True, BR_RET),
        (30, 130, True, BR_CALL),
        (35, 0, True, BR_RET),
        (36, 0, True, BR_RET),
        (40, 140, True, BR_CALL),
        (50, 150, True, BR_CALL),
    ]
    print("  forward events: push@10 push@20 pop push@30 pop pop "
          "push@40 push@50")
    counter = 0
    for pc, _next, _taken, kind in reversed(log):
        if kind == BR_RET:
            counter += 1
            print(f"    reverse: pop  at {pc:3d} -> counter={counter}")
        else:
            if counter == 0:
                print(f"    reverse: push at {pc:3d} -> counter=0, "
                      f"RAS gets return address {pc + 1}")
            else:
                counter -= 1
                print(f"    reverse: push at {pc:3d} -> cancelled, "
                      f"counter={counter}")
    contents = reconstruct_ras_contents(log, 8)
    print(f"  reconstructed RAS (top first): {contents}\n")


if __name__ == "__main__":
    figure2()
    figure3()
    figure4()
