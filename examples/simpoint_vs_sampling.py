#!/usr/bin/env python3
"""SimPoint versus statistically sampled simulation (paper Figure 9).

Runs SimPoint at a small and a large interval size, with and without
SMARTS warm-up while skipping to each simulation point, and compares
against cluster sampling with Reverse State Reconstruction at 20%.

    python examples/simpoint_vs_sampling.py [workload]
"""

import sys

from repro import (
    ReverseStateReconstruction,
    SampledSimulator,
    SamplingRegimen,
    SmartsWarmup,
    build_workload,
    measure_true_ipc,
)
from repro.simpoint import run_simpoints, select_simpoints


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    total = 160_000
    workload = build_workload(name)
    true_run = measure_true_ipc(workload, total)
    print(f"{workload.name}: true IPC = {true_run.ipc:.4f}\n")

    rows = []

    # SimPoint at two interval granularities (the paper's 50K vs 10M,
    # scaled), with and without SMARTS warm-up between points.
    for interval, tag in ((800, "small"), (8_000, "large")):
        selection = select_simpoints(
            workload, total, interval, max_points=15,
        )
        plain = run_simpoints(workload, selection)
        rows.append((f"SimPoint {tag} ({interval})", plain.ipc,
                     plain.relative_error(true_run.ipc), plain.wall_seconds))
        warmed = run_simpoints(workload, selection, warmup=SmartsWarmup())
        rows.append((f"SimPoint {tag} + SMARTS", warmed.ipc,
                     warmed.relative_error(true_run.ipc),
                     warmed.wall_seconds))

    # Cluster sampling with RSR at 20% (the paper's R$BP (20%)).
    regimen = SamplingRegimen(
        total_instructions=total, num_clusters=15, cluster_size=1_000,
    )
    rsr = SampledSimulator(workload, regimen).run(
        ReverseStateReconstruction(fraction=0.2)
    )
    rows.append(("Sampling + R$BP (20%)", rsr.estimate.mean,
                 rsr.relative_error(true_run.ipc), rsr.wall_seconds))

    header = f"{'configuration':24s} {'IPC':>8s} {'rel. error':>11s} {'time':>7s}"
    print(header)
    print("-" * len(header))
    for label, ipc, error, seconds in rows:
        print(f"{label:24s} {ipc:8.4f} {error * 100:10.2f}% "
              f"{seconds:6.2f}s")

    print(
        "\nExpected shape (paper Figure 9): small intervals without "
        "warm-up suffer heavy cold-start error; warm-up rescues them; "
        "large intervals are accurate but cost more detailed simulation; "
        "sampled simulation with RSR gives the best accuracy/cost point "
        "and, unlike SimPoint, supports confidence intervals."
    )


if __name__ == "__main__":
    main()
