"""Picklable telemetry snapshots and their merge algebra.

A snapshot is the frozen outcome of one telemetry session: counter
totals, accumulated phase seconds, histogram summaries, gauge values,
and the buffered per-cluster trace records.  Snapshots are built from
plain dicts/lists/dataclasses, so they pickle across the parallel
engine's process boundary unchanged — ``SampledRunResult.extra``
carries one per traced run, and :func:`merge_snapshots` folds the
per-cell snapshots back into a run-level profile that is identical
whether the grid ran serially or fanned out over workers.

Merge semantics: counters and phase seconds add; histograms combine
their streaming summaries; gauges add (every gauge the stack sets is a
per-run quantity — wall seconds, cluster counts — whose sum is the
run-level total); trace records concatenate and are re-sorted into the
deterministic (workload, method, cluster) order so the merged profile
does not depend on worker completion order.  Span records concatenate
and re-sort on the reconciled run timeline (ts, pid, tid, id), which is
equally completion-order independent: ids are stamped per process and
timestamps are run-origin relative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import HistogramSummary


@dataclass
class TelemetrySnapshot:
    """Frozen, picklable outcome of one telemetry session."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    trace_records: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots (see module docstring for semantics)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = summary if mine is None else mine.merge(summary)
        phases = dict(self.phase_seconds)
        for name, seconds in other.phase_seconds.items():
            phases[name] = phases.get(name, 0.0) + seconds
        records = sorted(
            self.trace_records + other.trace_records, key=_record_order
        )
        spans = sorted(self.spans + other.spans, key=_span_order)
        return TelemetrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            phase_seconds=phases,
            trace_records=records,
            spans=spans,
        )

    def is_empty(self) -> bool:
        """True when the session recorded nothing at all."""
        return not (
            self.counters
            or self.gauges
            or self.histograms
            or self.phase_seconds
            or self.trace_records
            or self.spans
        )

    def __bool__(self) -> bool:
        """A snapshot is truthy exactly when it carries data."""
        return not self.is_empty()

    def total_phase_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def to_dict(self) -> dict:
        """JSON-ready rendering (histograms flattened to summaries)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: summary.to_dict()
                for name, summary in self.histograms.items()
            },
            "phase_seconds": dict(self.phase_seconds),
            "trace_records": list(self.trace_records),
            "spans": list(self.spans),
        }


def _record_order(record: dict) -> tuple:
    return (
        record.get("workload", ""),
        record.get("method", ""),
        record.get("cluster", -1),
    )


def _span_order(record: dict) -> tuple:
    return (
        record.get("ts", 0),
        record.get("pid", 0),
        record.get("tid", 0),
        record.get("id", ""),
    )


#: Shared empty snapshot, the identity of the merge semigroup.  APIs
#: that promise to always hand back a snapshot (``merged_telemetry``)
#: return this sentinel instead of None for untraced grids, so callers
#: can write ``if snapshot:`` / iterate ``snapshot.trace_records``
#: without a None guard.  Treat it as read-only: ``merge`` returns new
#: objects, so the sentinel is never mutated by the normal fold.
EMPTY_SNAPSHOT = TelemetrySnapshot()


def merge_snapshots(snapshots) -> TelemetrySnapshot | None:
    """Fold an iterable of snapshots (Nones ignored) into one profile.

    Returns None when nothing was collected — callers use that to skip
    telemetry reporting entirely for untraced runs.  Callers that want a
    total function use :data:`EMPTY_SNAPSHOT` as the fallback (that is
    what :func:`repro.harness.merged_telemetry` does).
    """
    merged: TelemetrySnapshot | None = None
    for snapshot in snapshots:
        if snapshot is None:
            continue
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged
