"""Correlation IDs: one ``run_id`` joining every artifact of a run.

A run — one CLI invocation, one service job — produces observability
output in several places at once: span records (``REPRO_SPANS``), the
live events firehose (``REPRO_EVENTS``), per-cluster trace records
(``REPRO_TRACE``), the service's structured log, and the job status
payload.  Without a shared key, a span recorded in a worker process
cannot be tied back to the HTTP request that caused it.

The ``run_id`` is that key.  It is minted **once per logical run** —
``repro`` CLI entry (:func:`repro.__main__.main`) for command-line
invocations, :meth:`repro.service.SimulationService.submit` for service
jobs — and propagated through :data:`RUN_ID_ENV_VAR` exactly like the
span parent context (:data:`~.spans.SPAN_PARENT_ENV_VAR`): planted in
the environment for the run's dynamic extent, inherited by worker
processes at launch, read live by in-process backends.  Every sink
stamps the ambient id onto its records when one is set, so

    grep <run_id> events.jsonl spans.jsonl service-log.jsonl

reconstructs the full cross-process story of one request.

Off by default: without :data:`RUN_ID_ENV_VAR` nothing is stamped and
every record stays byte-identical to previous releases.  The id never
enters result payloads or cache fingerprints — correlation is an
observability concern, and results must stay content-addressed.
"""

from __future__ import annotations

import contextlib
import os
import time

#: Environment variable carrying the ambient correlation id.  Exported
#: by :meth:`~repro.harness.options.RunOptions.apply` (the service job
#: path) and by the CLI entry point; consumed by every telemetry sink.
RUN_ID_ENV_VAR = "REPRO_RUN_ID"

#: Per-process uniquifier so ids minted back-to-back never collide even
#: when the clock tick is coarser than the minting rate.
_mint_count = 0


def mint_run_id() -> str:
    """A new correlation id: short, unique, and grep-friendly.

    The format is ``r<wall-ns><pid><seq>`` in base-32-ish hex — opaque
    by design (ordering or timing must not be parsed back out of it),
    collision-free across processes via the pid, and across rapid mints
    in one process via the sequence number.
    """
    global _mint_count
    _mint_count += 1
    stamp = time.time_ns() & 0xFFFFFFFFFFFF
    return f"r{stamp:012x}{os.getpid() & 0xFFFFFF:06x}{_mint_count & 0xFFF:03x}"


def run_id_from_env() -> str | None:
    """The ambient correlation id, or None when none was minted."""
    value = os.environ.get(RUN_ID_ENV_VAR, "").strip()
    return value or None


def validate_run_id(value: str) -> str:
    """Reject ids that would corrupt JSONL greps or the environment."""
    if not value or value != value.strip() or any(
            ch.isspace() for ch in value):
        raise ValueError(
            f"{RUN_ID_ENV_VAR} must be a non-empty token without "
            f"whitespace, got {value!r}")
    if len(value) > 128:
        raise ValueError(
            f"{RUN_ID_ENV_VAR} must be at most 128 characters, "
            f"got {len(value)}")
    return value


@contextlib.contextmanager
def bound_run_id(run_id: str | None):
    """Plant `run_id` in the environment for a block (None: no-op).

    The CLI wraps each invocation's handler in this so one ``repro``
    command is one correlated run; restoring the previous value keeps
    nested or sequential runs from leaking ids into each other.
    """
    if run_id is None:
        yield
        return
    validate_run_id(run_id)
    previous = os.environ.get(RUN_ID_ENV_VAR)
    os.environ[RUN_ID_ENV_VAR] = run_id
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(RUN_ID_ENV_VAR, None)
        else:
            os.environ[RUN_ID_ENV_VAR] = previous
