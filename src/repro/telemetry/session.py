"""Telemetry sessions: phase timers, metrics, and cluster trace scoping.

A :class:`Telemetry` session is created per sampled run and threaded
down the stack (controller -> warm-up method -> core reconstruction) via
:class:`~repro.warmup.base.SimulationContext`.  It owns

- a :class:`~.registry.MetricsRegistry` of counters/gauges/histograms,
- cumulative **phase timers** — ``cold_skip`` (functional skip of the
  inter-cluster gap), ``reconstruct`` (eager state repair at the cluster
  boundary), ``hot_sim`` (detailed ramp + cluster simulation) — and
- the buffered per-cluster **trace records**.

The controller brackets each cluster with :meth:`begin_cluster` /
:meth:`end_cluster`; any counter incremented and any phase timed inside
the bracket is attributed to that cluster's trace record as a delta, so
instrumented code deep in the core never needs to know which cluster is
running.

:data:`NULL_TELEMETRY` is the default backend: every operation is a
no-op against shared singletons, keeping the disabled hot path within
the issue's <5% overhead budget (measured far below — one attribute
check and a handful of no-op calls per cluster).
"""

from __future__ import annotations

import time

from .events import EVENT_CLUSTER, emit_event, events_path_from_env
from .registry import MetricsRegistry, NULL_REGISTRY
from .runid import run_id_from_env
from .snapshot import TelemetrySnapshot
from .spans import (
    NULL_SPANS,
    _NULL_SPAN,
    recorder_from_env,
    rss_high_water_kb,
)
from .trace import (
    RECORD_CLUSTER,
    append_trace,
    collection_enabled,
    trace_path_from_env,
)

#: Canonical phase-timer names (docs/observability.md).
PHASE_COLD_SKIP = "cold_skip"
PHASE_RECONSTRUCT = "reconstruct"
PHASE_HOT_SIM = "hot_sim"
PHASES = (PHASE_COLD_SKIP, PHASE_RECONSTRUCT, PHASE_HOT_SIM)

#: Phase charged by the accuracy-audit probes (``REPRO_AUDIT``); not in
#: :data:`PHASES` because it is observability overhead, not part of the
#: sampled-simulation loop the paper's cost model argues about.
PHASE_AUDIT = "audit"

#: Counter names promoted to top-level trace-record fields.
METRIC_BLOCKS_RECONSTRUCTED = "reconstruct.blocks_applied"
METRIC_PHT_ENTRIES = "reconstruct.pht_entries"


class _PhaseTimer:
    """Context manager accumulating wall time into one named phase."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry._add_phase(
            self._name, time.perf_counter() - self._start
        )


class _NullPhaseTimer:
    """Shared no-op context manager (no clock reads, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_PHASE = _NullPhaseTimer()


class Telemetry:
    """One enabled telemetry session (typically: one sampled run)."""

    enabled = True

    def __init__(self, trace_path: str | None = None, spans=None) -> None:
        self.registry = MetricsRegistry()
        self.trace_path = trace_path
        #: Span backend — resolved from ``REPRO_SPANS`` unless an
        #: explicit recorder (or the null one) is injected.
        self.spans = spans if spans is not None else recorder_from_env()
        self.events_path = events_path_from_env()
        #: Ambient correlation id (None: trace records not stamped).
        self.run_id = run_id_from_env()
        self.phase_seconds: dict[str, float] = {}
        self.trace_records: list[dict] = []
        self._flushed = 0
        self._in_cluster = False
        self._cluster_phases: dict[str, float] = {}
        self._cluster_counters: dict[str, int] = {}

    # -- instruments ---------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    # -- phase timers --------------------------------------------------------

    def phase(self, name: str) -> _PhaseTimer:
        return _PhaseTimer(self, name)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, cat: str = "repro", **args):
        """Open a hierarchical span (no-op when spans are disabled)."""
        return self.spans.span(name, cat=cat, **args)

    def sample_span_counters(self) -> None:
        """Emit counter-track samples at a span boundary.

        Samples the skip-log and reconstruction totals plus the
        process's RSS high-water (and tracemalloc peak, when tracing is
        already on) so the Perfetto export grows stepped counter tracks
        alongside the span lanes.  Skipped entirely when spans are off.
        """
        recorder = self.spans
        if not recorder.enabled:
            return
        values = self.registry.counter_values()
        for name in ("log.stored_records", METRIC_BLOCKS_RECONSTRUCTED):
            if name in values:
                recorder.counter(name, values[name])
        rss = rss_high_water_kb()
        if rss is not None:
            recorder.counter("process.rss_high_water_kb", rss)
        import tracemalloc

        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            recorder.counter("process.tracemalloc_peak_bytes", peak)

    def _add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = (
            self.phase_seconds.get(name, 0.0) + seconds
        )
        if self._in_cluster:
            self._cluster_phases[name] = (
                self._cluster_phases.get(name, 0.0) + seconds
            )

    # -- per-cluster trace scoping ------------------------------------------

    def begin_cluster(self) -> None:
        """Open a cluster scope: phase times and counter increments from
        here to :meth:`end_cluster` are attributed to this cluster."""
        self._in_cluster = True
        self._cluster_phases = {}
        self._cluster_counters = self.registry.counter_values()

    def end_cluster(self, fields: dict) -> dict:
        """Close the cluster scope and buffer its trace record.

        `fields` carries the controller-known facts (workload, method,
        cluster index, gap, IPC, warm-update deltas...); the session adds
        per-phase seconds, their sum as ``wall_seconds``, and the deltas
        of every counter touched inside the scope.
        """
        record = {"type": RECORD_CLUSTER, **fields}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        phases = self._cluster_phases
        for name in PHASES:
            record[f"{name}_seconds"] = phases.get(name, 0.0)
        # Extra phases (e.g. the audit probe) get their own fields too,
        # keeping the invariant wall_seconds == sum of *_seconds fields.
        for name in sorted(phases):
            if name not in PHASES:
                record[f"{name}_seconds"] = phases[name]
        record["wall_seconds"] = sum(phases.values())
        before = self._cluster_counters
        deltas = {}
        for name, value in self.registry.counter_values().items():
            delta = value - before.get(name, 0)
            if delta:
                deltas[name] = delta
        record["blocks_reconstructed"] = deltas.pop(
            METRIC_BLOCKS_RECONSTRUCTED, 0
        )
        record["pht_entries_reconstructed"] = deltas.pop(
            METRIC_PHT_ENTRIES, 0
        )
        if deltas:
            record["counters"] = deltas
        self._in_cluster = False
        self.trace_records.append(record)
        self.sample_span_counters()
        if self.events_path is not None:
            emit_event(
                self.events_path,
                EVENT_CLUSTER,
                workload=record.get("workload"),
                method=record.get("method"),
                cluster=record.get("cluster"),
                wall_seconds=record.get("wall_seconds"),
            )
        return record

    def emit(self, record: dict) -> None:
        """Buffer an arbitrary extra trace record (run_id-stamped)."""
        if self.run_id is not None and "run_id" not in record:
            record = {**record, "run_id": self.run_id}
        self.trace_records.append(record)

    # -- output --------------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the session into a picklable snapshot."""
        registry = self.registry
        return TelemetrySnapshot(
            counters=registry.counter_values(),
            gauges=registry.gauge_values(),
            histograms=registry.histogram_summaries(),
            phase_seconds=dict(self.phase_seconds),
            trace_records=list(self.trace_records),
            spans=self.spans.export(),
        )

    def flush_trace(self) -> int:
        """Append not-yet-written records to ``trace_path`` (one batch).

        A no-op without a trace path; safe to call repeatedly — each
        record is written at most once.
        """
        if self.trace_path is None:
            return 0
        pending = self.trace_records[self._flushed:]
        written = append_trace(pending, self.trace_path)
        self._flushed += written
        return written

    def flush_spans(self) -> int:
        """Flush the span recorder's pending records to its JSONL path."""
        return self.spans.flush()


class NullTelemetry:
    """The disabled backend: accepts the full session API as no-ops."""

    enabled = False
    trace_path = None
    registry = NULL_REGISTRY
    phase_seconds: dict = {}
    trace_records: list = []
    spans = NULL_SPANS
    events_path = None

    __slots__ = ()

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def phase(self, name: str) -> _NullPhaseTimer:
        return _NULL_PHASE

    def span(self, name: str, cat: str = "repro", **args):
        return _NULL_SPAN

    def sample_span_counters(self) -> None:
        pass

    def begin_cluster(self) -> None:
        pass

    def end_cluster(self, fields: dict) -> None:
        return None

    def emit(self, record: dict) -> None:
        pass

    def snapshot(self) -> None:
        return None

    def flush_trace(self) -> int:
        return 0

    def flush_spans(self) -> int:
        return 0


NULL_TELEMETRY = NullTelemetry()


def telemetry_from_env() -> Telemetry | NullTelemetry:
    """Resolve the default backend from the environment.

    ``REPRO_TRACE=<path>`` enables collection and appends each run's
    records to the file; ``REPRO_TELEMETRY=1`` enables in-memory
    collection only (snapshots, no file).  Unset: the null backend.
    """
    path = trace_path_from_env()
    if path is not None:
        return Telemetry(trace_path=path)
    if collection_enabled():
        return Telemetry()
    return NULL_TELEMETRY
