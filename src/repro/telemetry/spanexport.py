"""Span export: Chrome trace-event JSON (Perfetto) and normalized JSONL.

The Chrome trace-event format is the lowest-common-denominator timeline
interchange: ``chrome://tracing`` and https://ui.perfetto.dev both load
it directly.  We emit:

- ``"M"`` metadata events naming each process/thread lane
  (``process_name`` / ``thread_name``), so worker processes render as
  labelled tracks instead of bare pids;
- ``"X"`` complete events — one per span, with ``ts``/``dur`` in
  microseconds (the format's unit) converted from the recorder's
  nanosecond timeline;
- ``"C"`` counter events — one per sampled counter value (skip-log
  stored records, blocks reconstructed, RSS high-water), which Perfetto
  renders as stepped counter tracks.

`validate_chrome_trace` checks an export against
:data:`CHROME_TRACE_SCHEMA` — a deliberately small JSON-Schema subset
(type / required / properties / items / enum / additionalProperties)
interpreted by a stdlib validator here, so CI needs no third-party
schema package.  The same schema dict is checked in at
``docs/schemas/chrome-trace.schema.json`` (a test asserts the two stay
equal).  `check_lane_nesting` adds the semantic check no schema can
express: within one (pid, tid) lane, spans must be properly nested or
disjoint — overlap means the clock reconciliation or the stack
discipline broke.
"""

from __future__ import annotations

import json

from .spans import RECORD_COUNTER, RECORD_SPAN

#: JSON-Schema (subset) for the Chrome trace export.  Kept in sync with
#: docs/schemas/chrome-trace.schema.json by a test.
CHROME_TRACE_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro Chrome trace export",
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"type": "string", "enum": ["X", "C", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
    },
    "additionalProperties": False,
}

_NS_PER_US = 1000.0


def _lane_metadata(records) -> list[dict]:
    """``"M"`` events naming every (pid, tid) lane seen in `records`."""
    pids: dict[int, None] = {}
    lanes: dict[tuple, None] = {}
    root_pid = None
    for record in records:
        pid, tid = record["pid"], record["tid"]
        if root_pid is None and record.get("type") == RECORD_SPAN:
            root_pid = pid
        pids.setdefault(pid, None)
        lanes.setdefault((pid, tid), None)
    events = []
    for pid in pids:
        role = "repro" if pid == root_pid else "repro worker"
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"{role} (pid {pid})"},
        })
    for pid, tid in lanes:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": f"tid {tid}"},
        })
    return events


def to_chrome_trace(records) -> dict:
    """Convert span/counter records into a Chrome trace-event payload."""
    records = list(records)
    events = _lane_metadata(records)
    for record in records:
        kind = record.get("type")
        if kind == RECORD_SPAN:
            event = {
                "ph": "X",
                "name": record["name"],
                "cat": record.get("cat", "repro"),
                "pid": record["pid"],
                "tid": record["tid"],
                "ts": record["ts"] / _NS_PER_US,
                "dur": record["dur"] / _NS_PER_US,
            }
            args = dict(record.get("args") or {})
            args["span_id"] = record["id"]
            if record.get("parent"):
                args["parent_span_id"] = record["parent"]
            event["args"] = args
            events.append(event)
        elif kind == RECORD_COUNTER:
            events.append({
                "ph": "C",
                "name": record["name"],
                "pid": record["pid"],
                "tid": record["tid"],
                "ts": record["ts"] / _NS_PER_US,
                "args": {"value": record["value"]},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records, path: str) -> int:
    """Write the Chrome trace JSON for `records`; returns event count."""
    payload = to_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=1, sort_keys=True)
        stream.write("\n")
    return len(payload["traceEvents"])


def spans_to_jsonl(records) -> str:
    """Normalized JSONL of span/counter records, timeline-sorted."""
    from .trace import format_trace_lines

    ordered = sorted(
        (r for r in records
         if r.get("type") in (RECORD_SPAN, RECORD_COUNTER)),
        key=lambda r: (r["ts"], r["pid"], r["tid"], r.get("id", "")),
    )
    return format_trace_lines(ordered)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def _validate_node(value, schema: dict, path: str, errors: list) -> None:
    expected = schema.get("type")
    if expected is not None:
        checkers = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "integer": lambda v: (isinstance(v, int)
                                  and not isinstance(v, bool)),
            "number": lambda v: (isinstance(v, (int, float))
                                 and not isinstance(v, bool)),
            "boolean": lambda v: isinstance(v, bool),
        }
        if not checkers[expected](value):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _validate_node(value[key], sub, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate_node(item, schema["items"],
                           f"{path}[{index}]", errors)


def validate_chrome_trace(payload) -> list[str]:
    """Schema + semantic errors for a Chrome trace payload (empty = valid).

    Beyond the schema: ``"X"`` events must carry non-negative ``ts`` and
    ``dur``, and counters must carry a numeric ``args.value``.
    """
    errors: list[str] = []
    _validate_node(payload, CHROME_TRACE_SCHEMA, "$", errors)
    if errors:
        return errors
    for index, event in enumerate(payload["traceEvents"]):
        where = f"$.traceEvents[{index}]"
        if event["ph"] == "X":
            if "ts" not in event or "dur" not in event:
                errors.append(f"{where}: X event missing ts/dur")
            elif event["ts"] < 0 or event["dur"] < 0:
                errors.append(f"{where}: negative ts/dur")
        elif event["ph"] == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}: counter without numeric args.value")
    return errors


def check_lane_nesting(payload) -> list[str]:
    """Per-lane overlap errors: spans in one (pid, tid) lane must be
    properly nested or disjoint (empty list = well-formed timeline)."""
    lanes: dict[tuple, list] = {}
    for event in payload["traceEvents"]:
        if event["ph"] == "X":
            lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    errors = []
    for lane, events in sorted(lanes.items()):
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        # Stack of end-times of currently-open enclosing spans.
        open_ends: list[float] = []
        for event in events:
            start, end = event["ts"], event["ts"] + event["dur"]
            while open_ends and open_ends[-1] <= start:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                errors.append(
                    f"lane pid={lane[0]} tid={lane[1]}: span "
                    f"{event['name']!r} [{start}, {end}] straddles its "
                    f"enclosing span's end {open_ends[-1]}"
                )
            open_ends.append(end)
    return errors
