"""Hierarchical span tracing with cross-process propagation.

A *span* is one named, timed region of work.  Spans nest — the recorder
keeps an open-span stack per session, so ``with telemetry.span("run"):``
containing ``with telemetry.span("cluster 0"):`` yields a tree:

    run -> (matrix cell ->) phase_a / phase_b -> cluster i
        -> cold_skip / reconstruct / hot_sim / audit

Each completed span becomes one plain dict record (JSONL-friendly, the
same discipline as the cluster trace) carrying:

- identity: ``id`` (``"<pid>:<seq>"``, unique across the processes of a
  run), ``parent`` (another span id or None for roots), ``name``,
  ``cat`` (coarse category for trace viewers), ``args`` (small facts —
  workload, method, cluster index);
- lane: ``pid`` / ``tid``, so every worker process renders on its own
  track in Perfetto;
- time: ``ts`` / ``dur`` in nanoseconds.  Durations come from the
  monotonic clock (``time.perf_counter_ns``); timestamps are that
  monotonic reading *anchored* at the recorder's wall-clock origin and
  re-based onto the run's clock origin, which is how spans recorded in
  different processes land on one reconciled timeline (see
  :class:`SpanContext`).

**Cross-process propagation.**  A parent session exports its open-span
context (:meth:`SpanRecorder.context`); the parallel engine plants it in
the environment (:data:`SPAN_PARENT_ENV_VAR`) before fanning out, so
worker sessions created via :func:`recorder_from_env` parent their root
spans directly into the run's trace and stamp timestamps relative to the
run's clock origin.  At fold time the parent *adopts* the workers' span
records (:meth:`SpanRecorder.adopt`) — no id rewriting, no offset
arithmetic left to do.

**Off by default.**  Without :data:`SPANS_ENV_VAR` every call lands on
the shared :data:`NULL_SPANS` recorder: one attribute load and a no-op
context manager per bracket, preserving the telemetry layer's <5%
disabled-overhead budget (measured far below in
``benchmarks/test_span_overhead.py``).
"""

from __future__ import annotations

import os
import sys
import threading
import time

from .runid import run_id_from_env

#: Environment variable enabling span recording.  ``1``/``on`` collects
#: in memory only (span records ride telemetry snapshots); any other
#: non-off value is a JSONL file path the session appends its spans to
#: at flush time (same whole-batch append discipline as ``REPRO_TRACE``).
SPANS_ENV_VAR = "REPRO_SPANS"

#: Environment variable carrying a parent span context across process
#: boundaries: ``"<parent span id>@<run clock origin ns>"``.  Set by the
#: parallel engine around worker fan-out; read by
#: :func:`recorder_from_env` in the workers.
SPAN_PARENT_ENV_VAR = "REPRO_SPAN_PARENT"

#: Record type of one completed span.
RECORD_SPAN = "span"

#: Record type of one sampled counter value (a Perfetto counter track
#: point: skip-log stored records, blocks reconstructed, RSS...).
RECORD_COUNTER = "counter"

_OFF_VALUES = ("", "0", "off", "false", "no")
_MEMORY_VALUES = ("1", "on", "true", "yes")


def spans_enabled() -> bool:
    """True when ``REPRO_SPANS`` asks for span recording."""
    flag = os.environ.get(SPANS_ENV_VAR, "").strip()
    return flag.lower() not in _OFF_VALUES


def span_path_from_env() -> str | None:
    """The spans JSONL path, or None for off / in-memory-only modes."""
    flag = os.environ.get(SPANS_ENV_VAR, "").strip()
    if flag.lower() in _OFF_VALUES or flag.lower() in _MEMORY_VALUES:
        return None
    return flag


class SpanContext:
    """Picklable hand-off of an open span across a process boundary.

    `parent_id` re-parents the receiving recorder's root spans into the
    sender's tree; `origin_wall_ns` is the run's clock origin — every
    recorder stamps ``ts`` relative to it, so spans from any process of
    the run share one timeline without a post-hoc offset pass.
    """

    __slots__ = ("parent_id", "origin_wall_ns")

    def __init__(self, parent_id: str | None, origin_wall_ns: int) -> None:
        self.parent_id = parent_id
        self.origin_wall_ns = origin_wall_ns

    def encode(self) -> str:
        return f"{self.parent_id or ''}@{self.origin_wall_ns}"

    @classmethod
    def decode(cls, text: str) -> "SpanContext | None":
        text = text.strip()
        if not text or "@" not in text:
            return None
        parent, _, origin = text.rpartition("@")
        try:
            return cls(parent_id=parent or None,
                       origin_wall_ns=int(origin))
        except ValueError:
            return None

    def __eq__(self, other) -> bool:
        return (isinstance(other, SpanContext)
                and self.parent_id == other.parent_id
                and self.origin_wall_ns == other.origin_wall_ns)

    def __getstate__(self):
        return (self.parent_id, self.origin_wall_ns)

    def __setstate__(self, state):
        self.parent_id, self.origin_wall_ns = state


class _OpenSpan:
    """Context manager closing one recorder stack frame."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: "SpanRecorder") -> None:
        self._recorder = recorder

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._close()


class _NullSpan:
    """Shared no-op span context manager (no clock reads)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Per-process recorder counter, part of every span id.  Ids must stay
#: unique across *recorders*, not just processes: the in-process
#: fallback of ``map_tasks`` runs shard sessions in the parent's pid,
#: and their spans are adopted into the parent recorder afterwards.
_recorder_count = 0


def _next_recorder_index() -> int:
    global _recorder_count
    _recorder_count += 1
    return _recorder_count


class SpanRecorder:
    """One enabled span-recording session (typically: one process)."""

    enabled = True

    def __init__(self, context: SpanContext | None = None,
                 path: str | None = None) -> None:
        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self.path = path
        #: Ambient correlation id at session start (None: not stamped).
        #: Worker recorders inherit it through the environment exactly
        #: like the span parent context, so spans from every process of
        #: a run grep under one id.
        self.run_id = run_id_from_env()
        self._instance = _next_recorder_index()
        self._seq = 0
        self._flushed = 0
        self._origin_perf_ns = time.perf_counter_ns()
        origin_wall_ns = time.time_ns()
        #: The run's clock origin: inherited from the propagated context
        #: when this recorder lives in a worker, else this recorder's
        #: own wall clock at creation.
        self.origin_wall_ns = (context.origin_wall_ns
                               if context is not None else origin_wall_ns)
        #: Offset mapping this process's monotonic readings onto the
        #: run timeline: ts = (perf - origin_perf) + wall_offset.
        self._wall_offset_ns = origin_wall_ns - self.origin_wall_ns
        self._root_parent = context.parent_id if context is not None else None
        #: Open-span stack: (id, name, cat, args, start_perf_ns).
        self._stack: list[tuple] = []
        #: Completed span + counter records, in completion order.
        self.records: list[dict] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str, cat: str = "repro", **args) -> _OpenSpan:
        """Open a span; close it by exiting the returned context."""
        self._seq += 1
        span_id = f"{self.pid}:{self._instance}:{self._seq}"
        self._stack.append(
            (span_id, name, cat, args or None, time.perf_counter_ns())
        )
        return _OpenSpan(self)

    def _close(self) -> None:
        end_perf_ns = time.perf_counter_ns()
        span_id, name, cat, args, start_perf_ns = self._stack.pop()
        parent = (self._stack[-1][0] if self._stack else self._root_parent)
        record = {
            "type": RECORD_SPAN,
            "id": span_id,
            "parent": parent,
            "name": name,
            "cat": cat,
            "pid": self.pid,
            "tid": self.tid,
            "ts": (start_perf_ns - self._origin_perf_ns
                   + self._wall_offset_ns),
            "dur": end_perf_ns - start_perf_ns,
        }
        if self.run_id is not None:
            record["run_id"] = self.run_id
        if args:
            record["args"] = args
        self.records.append(record)

    def counter(self, name: str, value) -> None:
        """Record one counter-track sample at the current timestamp."""
        record = {
            "type": RECORD_COUNTER,
            "name": name,
            "value": value,
            "pid": self.pid,
            "tid": self.tid,
            "ts": (time.perf_counter_ns() - self._origin_perf_ns
                   + self._wall_offset_ns),
        }
        if self.run_id is not None:
            record["run_id"] = self.run_id
        self.records.append(record)

    # -- propagation ---------------------------------------------------------

    @property
    def current_span_id(self) -> str | None:
        return self._stack[-1][0] if self._stack else self._root_parent

    def context(self) -> SpanContext:
        """The propagation context for work forked under the open span."""
        return SpanContext(parent_id=self.current_span_id,
                           origin_wall_ns=self.origin_wall_ns)

    def adopt(self, records) -> int:
        """Fold completed records from another recorder into this one.

        Worker spans arrive with their parent ids and run-relative
        timestamps already set (the propagated context did the
        reconciliation at record time), so adoption is a plain append;
        returns the number of records adopted.
        """
        records = list(records)
        self.records.extend(records)
        return len(records)

    # -- output --------------------------------------------------------------

    def export(self) -> list[dict]:
        """Copies of all completed records (open spans are not exported)."""
        return [dict(record) for record in self.records]

    def flush(self) -> int:
        """Append not-yet-written records to :attr:`path` (one batch).

        A no-op without a path; each record is written at most once.
        """
        if self.path is None:
            return 0
        from .trace import append_trace

        pending = self.records[self._flushed:]
        written = append_trace(pending, self.path)
        self._flushed += written
        return written


class NullSpanRecorder:
    """The disabled backend: the full recorder API as no-ops."""

    enabled = False
    path = None
    records: list = []
    current_span_id = None
    origin_wall_ns = 0

    __slots__ = ()

    def span(self, name: str, cat: str = "repro", **args) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value) -> None:
        pass

    def context(self) -> None:
        return None

    def adopt(self, records) -> int:
        return 0

    def export(self) -> list:
        return []

    def flush(self) -> int:
        return 0


NULL_SPANS = NullSpanRecorder()


def recorder_from_env() -> SpanRecorder | NullSpanRecorder:
    """Resolve the span backend from the environment.

    ``REPRO_SPANS`` off: the shared null recorder.  Otherwise a live
    recorder whose parent context — if :data:`SPAN_PARENT_ENV_VAR` is
    planted (worker processes) — re-parents roots and re-bases
    timestamps onto the run's clock origin.
    """
    if not spans_enabled():
        return NULL_SPANS
    context = SpanContext.decode(
        os.environ.get(SPAN_PARENT_ENV_VAR, "")
    )
    return SpanRecorder(context=context, path=span_path_from_env())


# ---------------------------------------------------------------------------
# span-tree structure helpers (tests, report, export)
# ---------------------------------------------------------------------------


def span_records(records) -> list[dict]:
    """Only the span records of a mixed record stream."""
    return [r for r in records if r.get("type") == RECORD_SPAN]


def build_span_tree(records) -> list[dict]:
    """Nest span records into root trees (``children`` lists, ts-sorted).

    Records whose parent id is unknown (e.g. worker spans exported
    without their parent's process) become roots.  Returns the list of
    root nodes; every node is a copy of its record plus ``children``.
    """
    nodes = {r["id"]: {**r, "children": []} for r in span_records(records)}
    roots = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: (child["ts"], child["id"]))
    roots.sort(key=lambda node: (node["ts"], node["id"]))
    return roots


def span_tree_shape(records, collapse: tuple = ()) -> tuple:
    """Canonical timing-free shape of a span forest.

    The shape is a nested tuple of ``(name, (child shapes...))`` with
    siblings sorted canonically (by name, then recursively by shape), so
    two runs with identical structure — names, parentage, counts — map
    to equal shapes no matter how their timings or worker pids differ.

    `collapse` names *grouping* spans to splice out: their children are
    lifted into the grandparent, and same-named siblings merge their
    child lists.  Collapsing ``("phase_a", "phase_b")`` erases the
    two-phase pipeline's scheduling structure, so a sharded run's shape
    can be compared against the serial walk's (each ``cluster i`` node
    then owns its cold_skip *and* reconstruct/hot_sim children, exactly
    as in serial).
    """
    def shape_of(node) -> tuple:
        children = []
        for child in node["children"]:
            if child["name"] in collapse:
                children.extend(child["children"])
            else:
                children.append(child)
        if collapse:
            merged: dict[str, dict] = {}
            ordered = []
            for child in children:
                existing = merged.get(child["name"])
                if existing is None:
                    clone = {**child, "children": list(child["children"])}
                    merged[child["name"]] = clone
                    ordered.append(clone)
                else:
                    existing["children"] = (list(existing["children"])
                                            + list(child["children"]))
            children = ordered
        return (node["name"],
                tuple(sorted(shape_of(child) for child in children)))

    roots = build_span_tree(records)
    if collapse:
        lifted = []
        for root in roots:
            if root["name"] in collapse:
                lifted.extend(root["children"])
            else:
                lifted.append(root)
        roots = lifted
    return tuple(sorted(shape_of(root) for root in roots))


def read_spans(path: str) -> list[dict]:
    """Parse a spans JSONL file (tolerant of a truncated final line)."""
    from .trace import read_trace

    return read_trace(path)


def rss_high_water_kb() -> int | None:
    """The process's peak resident set size in KiB, when knowable."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return usage // 1024 if sys.platform == "darwin" else usage
