"""Live progress event firehose (``REPRO_EVENTS`` JSONL).

Unlike trace/span records — buffered per session and written in one
batch at flush — events are appended **line-by-line as they happen**:
the whole point is that an external consumer (a dashboard, the future
distributed-executor service, or plain ``tail -f``) can watch a run
while it is still going.  Each append is a single ``write`` of one
complete line, so concurrent writer processes interleave whole events,
never fragments.

Event kinds currently emitted:

- ``run_start`` / ``run_end`` — one sampled run (workload × method);
- ``cluster`` — one cluster boundary (from ``Telemetry.end_cluster``),
  carrying cluster index, wall seconds, and phase seconds;
- ``cell`` — one matrix-cell completion (from the matrix progress hook),
  carrying completed/total counts so a consumer can compute rate/ETA.

Timestamps are wall-clock seconds (``time.time()``): the firehose is a
cross-run observation stream, not a reconciled intra-run timeline — the
span subsystem owns that.
"""

from __future__ import annotations

import json
import os
import sys
import time

from .runid import run_id_from_env

#: Environment variable naming the events JSONL file.  Setting it turns
#: on per-event append writes everywhere (sessions and matrix driver).
EVENTS_ENV_VAR = "REPRO_EVENTS"

#: Paths whose appends already failed once: the first failure earns a
#: stderr warning, later ones stay silent (a full disk would otherwise
#: turn every cluster boundary into a warning line).
_warned_paths: set[str] = set()

EVENT_RUN_START = "run_start"
EVENT_RUN_END = "run_end"
EVENT_CLUSTER = "cluster"
EVENT_CELL = "cell"


def events_path_from_env() -> str | None:
    """The ``REPRO_EVENTS`` path, or None when the firehose is off."""
    path = os.environ.get(EVENTS_ENV_VAR, "").strip()
    return path or None


def emit_event(path: str | None, event: str, **fields) -> None:
    """Append one event line immediately (no-op without a path).

    The line goes out as a single ``os.write`` on an ``O_APPEND``
    descriptor — one syscall, no userspace buffering — so a worker
    killed mid-run (executor ``close(cancel=True)``, SIGTERM) can never
    leave a partially written line for concurrent writers to interleave
    with.  A failed append (full disk, revoked path) never takes the
    run down — the firehose is an observation channel — but the *first*
    failure per path warns on stderr so a silently dead firehose is
    diagnosable.

    When a correlation id is ambient (:data:`~.runid.RUN_ID_ENV_VAR`),
    every line carries it as ``run_id``, joining the firehose to span
    records and the service log.
    """
    if path is None:
        return
    record = {"event": event, "t": time.time(), "pid": os.getpid()}
    run_id = run_id_from_env()
    if run_id is not None:
        record["run_id"] = run_id
    record.update(fields)
    line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
    try:
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    except OSError as exc:
        if path not in _warned_paths:
            _warned_paths.add(path)
            print(
                f"repro: warning: cannot append events to {path!r} "
                f"({exc}); further failures for this path will be silent",
                file=sys.stderr,
            )


def read_events(path: str) -> list[dict]:
    """Parse an events JSONL file (tolerant of a truncated final line)."""
    from .trace import read_trace

    return read_trace(path)
