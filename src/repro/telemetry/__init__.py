"""Telemetry: metrics, phase timers, and per-cluster tracing.

Disabled by default at near-zero cost (the null backend); enabled per
run by passing a :class:`Telemetry` factory to the controller, or
globally via ``REPRO_TRACE=<path>`` / ``REPRO_TELEMETRY=1``.  See
docs/observability.md for the metric catalogue and trace schema.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .session import (
    METRIC_BLOCKS_RECONSTRUCTED,
    METRIC_PHT_ENTRIES,
    NULL_TELEMETRY,
    NullTelemetry,
    PHASE_AUDIT,
    PHASE_COLD_SKIP,
    PHASE_HOT_SIM,
    PHASE_RECONSTRUCT,
    PHASES,
    Telemetry,
    telemetry_from_env,
)
from .snapshot import EMPTY_SNAPSHOT, TelemetrySnapshot, merge_snapshots
from .trace import (
    AUDIT_ENV_VAR,
    COLLECT_ENV_VAR,
    RECORD_AUDIT,
    RECORD_CLUSTER,
    TRACE_ENV_VAR,
    append_trace,
    audit_enabled,
    collection_enabled,
    format_trace_lines,
    read_trace,
    trace_path_from_env,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "telemetry_from_env",
    "PHASES",
    "PHASE_COLD_SKIP",
    "PHASE_RECONSTRUCT",
    "PHASE_HOT_SIM",
    "PHASE_AUDIT",
    "METRIC_BLOCKS_RECONSTRUCTED",
    "METRIC_PHT_ENTRIES",
    "TelemetrySnapshot",
    "EMPTY_SNAPSHOT",
    "merge_snapshots",
    "TRACE_ENV_VAR",
    "COLLECT_ENV_VAR",
    "AUDIT_ENV_VAR",
    "RECORD_CLUSTER",
    "RECORD_AUDIT",
    "append_trace",
    "write_trace",
    "format_trace_lines",
    "read_trace",
    "trace_path_from_env",
    "collection_enabled",
    "audit_enabled",
]
