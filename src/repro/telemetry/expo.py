"""Prometheus-style metrics exposition, stdlib only.

The in-engine :class:`~.registry.MetricsRegistry` is deliberately
minimal on the hot path — counters, gauges, and *streaming* histograms
(count/total/min/max, no buckets).  This module is the cold side: it
aggregates those values (plus service-side measurements) into
fixed-bucket :class:`BucketHistogram` distributions and renders
everything in the Prometheus text exposition format (version 0.0.4),
the lingua franca every scrape-based monitoring stack ingests::

    # HELP repro_job_run_seconds Job execution latency.
    # TYPE repro_job_run_seconds histogram
    repro_job_run_seconds_bucket{kind="sample",le="0.25"} 3
    ...
    repro_job_run_seconds_sum{kind="sample"} 0.41
    repro_job_run_seconds_count{kind="sample"} 3

Three consumers share it:

- ``GET /metrics`` on the simulation service (live scrape),
- the ``repro metrics`` CLI (the same exposition re-rendered from a
  completed run's ``REPRO_TRACE`` record file), and
- :func:`parse_exposition`, a strict stdlib parser the tests and the CI
  metrics-smoke job use to validate whatever the other two emit.
"""

from __future__ import annotations

import math
import re

#: Default latency buckets (seconds).  Wide enough for both sub-second
#: HTTP handling and multi-minute matrix jobs; finite buckets only —
#: the implicit ``+Inf`` bucket is added at render time.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: "dict | None") -> tuple:
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (\\, ", newline)."""
    return (value.replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_number(value: float) -> str:
    """Canonical sample-value spelling: ints bare, floats via repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _render_labels(items: tuple, extra: "tuple | None" = None) -> str:
    pairs = list(items) + list(extra or ())
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


class BucketHistogram:
    """A fixed-bucket distribution (cumulative at render time only).

    Internally each finite bucket holds its own count (cheaper to
    update); :meth:`cumulative` produces the ``le``-cumulative view the
    exposition format requires, with the implicit ``+Inf`` bucket equal
    to the total observation count.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValueError("histogram needs at least one finite bucket")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(
                f"histogram buckets must be strictly increasing, "
                f"got {buckets}")
        if buckets[-1] == math.inf:
            raise ValueError("+Inf bucket is implicit; pass finite bounds")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(le, cumulative count)`` pairs, ``+Inf`` last."""
        pairs = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, self.count))
        return pairs

    def merge(self, other: "BucketHistogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count

    def copy(self) -> "BucketHistogram":
        """An independent snapshot (scrapes render copies, not the live
        cell, so a concurrent observe cannot tear sum/count/buckets)."""
        clone = BucketHistogram(self.buckets)
        clone.counts = list(self.counts)
        clone.sum = self.sum
        clone.count = self.count
        return clone


class MetricsExposition:
    """A buildable set of metric families rendered as exposition text.

    Families are keyed by metric name; within a family, samples are
    keyed by their (sorted) label items.  Counters accumulate, gauges
    overwrite, histogram cells are :class:`BucketHistogram` instances
    created on first touch.
    """

    def __init__(self) -> None:
        #: name -> {"kind", "help", "buckets", "samples": {labels: value}}
        self._families: dict[str, dict] = {}

    def _family(self, name: str, kind: str, help_text: str,
                buckets=None) -> dict:
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = {"kind": kind, "help": help_text,
                      "buckets": buckets, "samples": {}}
            self._families[name] = family
        elif family["kind"] != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{family['kind']}, not {kind}")
        return family

    def counter(self, name: str, help_text: str, value: float = 0,
                labels: "dict | None" = None) -> None:
        """Accumulate into a counter (name must end in ``_total``)."""
        if not name.endswith("_total"):
            raise ValueError(
                f"counter names end in '_total' by convention, got {name!r}")
        family = self._family(name, "counter", help_text)
        key = _check_labels(labels)
        family["samples"][key] = family["samples"].get(key, 0) + value

    def gauge(self, name: str, help_text: str, value: float,
              labels: "dict | None" = None) -> None:
        family = self._family(name, "gauge", help_text)
        family["samples"][_check_labels(labels)] = value

    def observe(self, name: str, help_text: str, value: float,
                labels: "dict | None" = None,
                buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        """Observe one value into a histogram cell."""
        family = self._family(name, "histogram", help_text,
                              buckets=tuple(float(b) for b in buckets))
        key = _check_labels(labels)
        cell = family["samples"].get(key)
        if cell is None:
            cell = family["samples"][key] = BucketHistogram(family["buckets"])
        cell.observe(value)

    def attach_histogram(self, name: str, help_text: str,
                         histogram: BucketHistogram,
                         labels: "dict | None" = None) -> None:
        """Adopt an externally maintained :class:`BucketHistogram` cell."""
        family = self._family(name, "histogram", help_text,
                              buckets=histogram.buckets)
        key = _check_labels(labels)
        existing = family["samples"].get(key)
        if existing is None:
            family["samples"][key] = histogram
        else:
            existing.merge(histogram)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The full exposition text (families sorted by name)."""
        lines = []
        for name in sorted(self._families):
            family = self._families[name]
            help_text = family["help"].replace("\\", "\\\\").replace(
                "\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family['kind']}")
            samples = family["samples"]
            for key in sorted(samples):
                value = samples[key]
                if family["kind"] == "histogram":
                    for bound, count in value.cumulative():
                        le = ("le", _format_number(bound))
                        lines.append(
                            f"{name}_bucket{_render_labels(key, (le,))} "
                            f"{count}")
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_number(value.sum)}")
                    lines.append(
                        f"{name}_count{_render_labels(key)} {value.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_format_number(value)}")
        return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# parsing (tests + CI validation)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)

_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_labels(text: str) -> dict:
    labels = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed label block {text!r}")
        raw = match.group("value")
        labels[match.group("key")] = (
            raw.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))
        pos = match.end()
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{family: {kind, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``.
    Strict by design — this is the validator behind the CI smoke job —
    so it raises ``ValueError`` on: samples without a ``# TYPE``
    declaration, unknown sample suffixes for the declared kind,
    histograms missing their ``+Inf`` bucket, non-monotonic cumulative
    bucket counts, or ``_count`` disagreeing with the ``+Inf`` bucket.
    """
    families: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = _check_name(parts[0])
            families.setdefault(
                name, {"kind": None, "help": None, "samples": []}
            )["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or parts[1] not in _KINDS:
                raise ValueError(f"line {lineno}: malformed TYPE {line!r}")
            families.setdefault(
                parts[0], {"kind": None, "help": None, "samples": []}
            )["kind"] = parts[1]
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        family = _owning_family(families, sample_name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no "
                f"# TYPE declaration")
        families[family]["samples"].append((sample_name, labels, value))
    for name, family in families.items():
        if family["kind"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _owning_family(families: dict, sample_name: str) -> "str | None":
    if sample_name in families and families[sample_name]["kind"] is not None:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if families.get(base, {}).get("kind") == "histogram":
                return base
    return None


def _check_histogram(name: str, samples: list) -> None:
    cells: dict[tuple, dict] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"))
        cell = cells.setdefault(key, {"buckets": [], "sum": None,
                                      "count": None})
        if sample_name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(
                    f"{name}: bucket sample without 'le' label")
            cell["buckets"].append((_parse_value(labels["le"]), value))
        elif sample_name.endswith("_sum"):
            cell["sum"] = value
        elif sample_name.endswith("_count"):
            cell["count"] = value
    for key, cell in cells.items():
        buckets = sorted(cell["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{name}{dict(key)}: missing +Inf bucket")
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            raise ValueError(
                f"{name}{dict(key)}: bucket counts not cumulative")
        if cell["count"] is None or cell["sum"] is None:
            raise ValueError(f"{name}{dict(key)}: missing _sum or _count")
        if cell["count"] != buckets[-1][1]:
            raise ValueError(
                f"{name}{dict(key)}: _count {cell['count']} != +Inf "
                f"bucket {buckets[-1][1]}")


# ---------------------------------------------------------------------------
# offline rendering: a completed run's trace records -> exposition
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def exposition_from_records(records) -> MetricsExposition:
    """Build the exposition of a completed run's trace records.

    The offline twin of the service's live ``/metrics``: given the
    per-cluster records a run appended to ``REPRO_TRACE`` (or the
    ``trace_records`` of a merged snapshot), it renders cluster counts,
    per-phase latency histograms, counter totals, and one
    ``repro_run_info`` series per distinct ``run_id`` seen — which is
    how a scrape-less batch run still lands in the same dashboards.
    """
    expo = MetricsExposition()
    run_ids = set()
    for record in records:
        if record.get("run_id"):
            run_ids.add(record["run_id"])
        if record.get("type") != "cluster":
            continue
        labels = {"workload": str(record.get("workload")),
                  "method": str(record.get("method"))}
        expo.counter("repro_clusters_total",
                     "Sampled clusters simulated.", 1, labels)
        for key, value in record.items():
            if key.endswith("_seconds") and key != "wall_seconds":
                expo.observe(
                    "repro_cluster_phase_seconds",
                    "Per-cluster wall time by pipeline phase.",
                    value, {"phase": key[: -len("_seconds")]})
        if "wall_seconds" in record:
            expo.observe("repro_cluster_wall_seconds",
                         "Per-cluster total wall time.",
                         record["wall_seconds"])
        for counter, amount in (record.get("counters") or {}).items():
            expo.counter(f"repro_{_sanitize(counter)}_total",
                         f"Engine counter {counter}.", amount)
        for field in ("blocks_reconstructed", "pht_entries_reconstructed"):
            if record.get(field):
                expo.counter(f"repro_{field}_total",
                             "Reverse-reconstruction volume.",
                             record[field])
    for run_id in sorted(run_ids):
        expo.gauge("repro_run_info",
                   "One series per correlated run seen in the records.",
                   1, {"run_id": run_id})
    return expo
