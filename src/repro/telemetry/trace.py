"""JSON-lines trace emission and parsing.

One trace record is emitted per sampled cluster (``"type": "cluster"``)
carrying the fields the paper's cost model argues about: where the
cluster landed (start/gap/ramp), what the skip region buffered
(``log_records``), what reconstruction actually touched
(``blocks_reconstructed``, ``pht_entries_reconstructed``,
``cache_updates``, ``predictor_updates``), how long each phase took
(``cold_skip_seconds``, ``reconstruct_seconds``, ``hot_sim_seconds``),
and what the cluster measured (``ipc``).  See docs/observability.md for
the full schema.

Records are buffered in memory by the telemetry session and written in
one batch — never record-by-record — so tracing adds no per-cluster I/O
and concurrent worker processes appending to the same ``REPRO_TRACE``
file emit whole-line batches.
"""

from __future__ import annotations

import json
import os
import sys

#: Environment variable naming the JSON-lines trace file.  Setting it
#: enables telemetry collection and appends each run's records to the
#: file when the run finishes.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable enabling in-memory collection only (snapshots in
#: ``SampledRunResult.extra``, no file): the parallel engine sets this in
#: workers so the parent can merge and write one deterministic file.
COLLECT_ENV_VAR = "REPRO_TELEMETRY"

#: Environment variable enabling the accuracy audit: at every cluster
#: boundary the controller diffs reconstructed state against a cached
#: perfectly-warmed reference trajectory and emits per-cluster bias
#: records.  Implies in-memory telemetry collection — audit data rides
#: the normal snapshot/merge machinery.
AUDIT_ENV_VAR = "REPRO_AUDIT"

#: Record type emitted once per sampled cluster.
RECORD_CLUSTER = "cluster"

#: Record type emitted once per audited cluster (``REPRO_AUDIT``).
RECORD_AUDIT = "audit"

_OFF_VALUES = ("", "0", "off", "false", "no")


def format_trace_lines(records) -> str:
    """Render records as JSON-lines text (one compact object per line)."""
    return "".join(
        json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        for record in records
    )


def append_trace(records, path: str) -> int:
    """Append records to the JSON-lines file at `path`; returns count.

    The whole batch is rendered first and written with a single
    ``write`` call in append mode, keeping concurrent writers from
    splicing lines into each other.
    """
    records = list(records)
    if not records:
        return 0
    payload = format_trace_lines(records)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(payload)
    return len(records)


def write_trace(records, path: str) -> int:
    """Write records to `path`, replacing any existing file."""
    records = list(records)
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(format_trace_lines(records))
    return len(records)


def read_trace(path: str) -> list[dict]:
    """Parse a JSON-lines trace file back into record dicts.

    Tolerant of a truncated *final* line — a run killed mid-append
    leaves a partial last record, which is skipped with a warning on
    stderr rather than poisoning the whole file.  Malformed lines
    anywhere else still raise: those indicate corruption, not a crash.
    """
    with open(path, "r", encoding="utf-8") as stream:
        lines = [(number, line.strip())
                 for number, line in enumerate(stream, start=1)
                 if line.strip()]
    records = []
    for position, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                print(
                    f"repro: warning: skipping truncated final record "
                    f"at {path}:{number} (interrupted run?)",
                    file=sys.stderr,
                )
                break
            raise
    return records


def trace_path_from_env() -> str | None:
    """The ``REPRO_TRACE`` path, or None when tracing is off."""
    path = os.environ.get(TRACE_ENV_VAR, "").strip()
    return path or None


def audit_enabled() -> bool:
    """True when ``REPRO_AUDIT`` asks for accuracy-audit probes."""
    flag = os.environ.get(AUDIT_ENV_VAR, "").strip().lower()
    return flag not in _OFF_VALUES


def collection_enabled() -> bool:
    """True when any telemetry environment switch is on.

    The audit switch counts: audit records are trace records, so
    ``REPRO_AUDIT`` alone is enough to collect snapshots in memory.
    So does the span switch: span records ride telemetry snapshots
    across process boundaries, which needs live sessions everywhere.
    """
    if trace_path_from_env() is not None:
        return True
    flag = os.environ.get(COLLECT_ENV_VAR, "").strip().lower()
    if flag not in _OFF_VALUES or audit_enabled():
        return True
    from .spans import spans_enabled

    return spans_enabled()
