"""Metric instruments and their registry.

Three instrument kinds cover the reproduction's measurement needs:

- **Counter** — a monotonically increasing event count (log records
  buffered, cache blocks reconstructed, PHT entries inferred, ...);
- **Gauge** — a point-in-time value overwritten on every set (clusters
  in the regimen, wall seconds of the last run, ...);
- **Histogram** — a streaming summary (count/total/min/max) of a value
  observed once per event (per-cluster IPC, gap length, ...).

A :class:`MetricsRegistry` lazily creates instruments by name, so call
sites never declare metrics up front.  The :class:`NullRegistry` — the
default backend when telemetry is disabled — hands out shared no-op
instruments: the hot path pays one dict hit and one no-op method call,
nothing else, which keeps the disabled-overhead budget near zero.

Metric naming convention: dotted ``area.event`` lowercase names, e.g.
``reconstruct.blocks_applied`` (see docs/observability.md for the full
catalogue).
"""

from __future__ import annotations

from dataclasses import dataclass


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class HistogramSummary:
    """Picklable streaming summary of one histogram."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramSummary") -> "HistogramSummary":
        return HistogramSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


class Histogram:
    """Streaming value summary (no buckets: laptop-scale runs only need
    count/total/extremes, and a fixed-size summary keeps snapshots
    picklable and cheap to merge)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> HistogramSummary:
        return HistogramSummary(count=self.count, total=self.total,
                                min=self.min, max=self.max)


class MetricsRegistry:
    """Lazily creates and stores instruments by name."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def counter_values(self) -> dict[str, int]:
        return {name: c.value for name, c in self.counters.items()}

    def gauge_values(self) -> dict[str, float]:
        return {name: g.value for name, g in self.gauges.items()}

    def histogram_summaries(self) -> dict[str, HistogramSummary]:
        return {name: h.summary() for name, h in self.histograms.items()}


class _NullCounter:
    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<null>"

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> HistogramSummary:
        return HistogramSummary()


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled backend: every lookup returns a shared no-op
    instrument, so instrumented code runs unchanged at near-zero cost."""

    __slots__ = ()

    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    def counter(self, name: str):
        return NULL_COUNTER

    def gauge(self, name: str):
        return NULL_GAUGE

    def histogram(self, name: str):
        return NULL_HISTOGRAM

    def counter_values(self) -> dict:
        return {}

    def gauge_values(self) -> dict:
        return {}

    def histogram_summaries(self) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
