"""Cache hierarchy substrate: caches, buses, and the two-level hierarchy."""

from .config import (
    CacheConfig,
    BusConfig,
    HierarchyConfig,
    WritePolicy,
    paper_hierarchy_config,
)
from .cache import Cache, CacheStats, AccessResult
from .bus import Bus
from .hierarchy import MemoryHierarchy

__all__ = [
    "CacheConfig",
    "BusConfig",
    "HierarchyConfig",
    "WritePolicy",
    "paper_hierarchy_config",
    "Cache",
    "CacheStats",
    "AccessResult",
    "Bus",
    "MemoryHierarchy",
]
