"""Set-associative LRU cache with reverse-reconstruction support.

The cache keeps, per set, an explicit recency ordering (`order[set]` lists
way indices from MRU to LRU) plus per-block *reconstructed* bits, the
hardware hook the paper's §3.1 algorithm relies on:

    "Each cache block contains a bit that indicates if it has been
     reconstructed.  These bits are cleared before the logged data are
     used to warm the cache."

State layout
------------

Block state lives in flat typed stores indexed ``set * associativity +
way`` — ``tag_store`` (``array('q')``, −1 = invalid), ``dirty_bits`` and
``recon_bits`` (``bytearray``), and ``recon_count`` (``array('H')``, one
count per set).  The flat stores are the canonical representation: they
give C-speed bulk operations (``begin_reconstruction`` and ``reset`` are
slice fills instead of per-way Python loops) and a compact, contiguous
form for bulk consumers such as the vectorized reverse reconstructor.

The forward-time tag scan additionally keeps a per-set *list* mirror of
the tag column (``_tag_rows``): CPython scans a small list of cached
ints measurably faster than a flat typed array, which re-boxes every
element it reads.  The mirror is updated at the few tag-write sites
(miss fill, reconstruction insert, ``load_state``, ``reset``) and is an
implementation detail — external readers use the read-only ``tags`` /
``dirty`` / ``reconstructed`` views, which render the legacy
list-of-lists shape (``None`` marks an invalid way).

Two access families are exposed:

- :meth:`Cache.access` — a normal (forward-time) access that updates tags,
  recency, and dirty bits according to the write policy.  Used by detailed
  simulation and by SMARTS-style functional warming.
- :meth:`Cache.begin_reconstruction` / :meth:`Cache.reconstruct_reference`
  / :meth:`Cache.reconstruct_line` — the reverse-order primitives: the
  *first* reference seen for a block (i.e. the most recent in program
  order) wins, reconstructed blocks are ranked MRU-first in discovery
  order, and victims are chosen among *stale* (not-yet-reconstructed)
  blocks only.  :meth:`Cache.reconstruct_line` takes a pre-split
  (set, tag) pair so bulk callers that split addresses with numpy skip
  the per-reference address arithmetic.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from .config import CacheConfig, WritePolicy


@dataclass
class CacheStats:
    """Event counters; `updates` counts every state-changing operation and
    is the deterministic cost metric used by the warm-up comparisons."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    reconstruction_applied: int = 0
    reconstruction_skipped: int = 0
    updates: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.reconstruction_applied = 0
        self.reconstruction_skipped = 0
        self.updates = 0

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of one forward cache access."""

    hit: bool
    #: Byte address of a dirty line written back, or None.
    writeback_address: int | None = None
    #: Byte address of the line evicted (clean or dirty), or None.
    evicted_address: int | None = None


class _SetView:
    """Read-only list-of-lists rendering of a flat per-block column.

    Supports the access patterns the legacy list-of-lists attributes
    served — ``view[set_index]`` returns a fresh per-set list (so
    ``view[s][w]``, ``view[s].count(None)`` etc. work), iteration yields
    one list per set, and ``len(view)`` is the set count.  Each row is
    rendered on demand from the flat store, so a view is always current.
    """

    __slots__ = ("_render", "_num_sets")

    def __init__(self, render, num_sets: int) -> None:
        self._render = render
        self._num_sets = num_sets

    def __len__(self) -> int:
        return self._num_sets

    def __getitem__(self, set_index: int) -> list:
        if set_index < 0:
            set_index += self._num_sets
        if not 0 <= set_index < self._num_sets:
            raise IndexError("cache set index out of range")
        return self._render(set_index)

    def __iter__(self):
        render = self._render
        return (render(index) for index in range(self._num_sets))

    def __eq__(self, other) -> bool:
        if isinstance(other, _SetView):
            other = list(other)
        return list(self) == other

    def __repr__(self) -> str:
        return repr(list(self))


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        self._index_mask = self.num_sets - 1
        self._sets_power_of_two = (self.num_sets & (self.num_sets - 1)) == 0
        self._set_bits = self.num_sets.bit_length() - 1
        self._wbwa = config.write_policy is WritePolicy.WBWA
        self._wtna = config.write_policy is WritePolicy.WTNA
        assoc = self.associativity
        sets = self.num_sets
        blocks = sets * assoc
        #: Flat canonical stores, indexed ``set * associativity + way``.
        self.tag_store: array = array("q", [-1]) * blocks
        self.dirty_bits = bytearray(blocks)
        self.recon_bits = bytearray(blocks)
        #: Number of ways reconstructed so far per set (reverse warm-up).
        self.recon_count: array = array("H", bytes(2 * sets))
        #: Per-set list mirror of the tag column (fast forward scan).
        self._tag_rows: list[list[int]] = [[-1] * assoc for _ in range(sets)]
        #: order[s] lists way indices from most- to least-recently used.
        self.order: list[list[int]] = [list(range(assoc)) for _ in range(sets)]
        self.stats = CacheStats()
        # Invariant templates for C-speed bulk clears.
        self._empty_tag_store = array("q", [-1]) * blocks
        self._zero_blocks = bytes(blocks)
        self._zero_counts = array("H", bytes(2 * sets))

    # -- legacy read-only views ---------------------------------------------

    @property
    def tags(self) -> _SetView:
        """tags[s][w] is the line tag in way w of set s (None=invalid)."""
        rows = self._tag_rows
        return _SetView(
            lambda s: [t if t >= 0 else None for t in rows[s]], self.num_sets
        )

    @property
    def dirty(self) -> _SetView:
        """dirty[s][w] is the dirty bit of way w of set s."""
        bits = self.dirty_bits
        assoc = self.associativity
        return _SetView(
            lambda s: [b == 1 for b in bits[s * assoc:(s + 1) * assoc]],
            self.num_sets,
        )

    @property
    def reconstructed(self) -> _SetView:
        """reconstructed[s][w] is the §3.1 reconstructed bit of way w."""
        bits = self.recon_bits
        assoc = self.associativity
        return _SetView(
            lambda s: [b == 1 for b in bits[s * assoc:(s + 1) * assoc]],
            self.num_sets,
        )

    # -- address helpers --------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing `address`."""
        return (address >> self._line_shift) << self._line_shift

    def split_address(self, address: int) -> tuple[int, int]:
        """Return (set index, tag) for `address`."""
        line = address >> self._line_shift
        if self._sets_power_of_two:
            return line & self._index_mask, line >> self._set_bits
        return line % self.num_sets, line // self.num_sets

    def _address_of(self, set_index: int, tag: int) -> int:
        if self._sets_power_of_two:
            line = (tag << self._set_bits) | set_index
        else:
            line = tag * self.num_sets + set_index
        return line << self._line_shift

    # -- forward-time access ------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one forward access, honouring the write policy."""
        stats = self.stats
        stats.accesses += 1
        stats.updates += 1
        line = address >> self._line_shift
        if self._sets_power_of_two:
            set_index = line & self._index_mask
            tag = line >> self._set_bits
        else:
            set_index = line % self.num_sets
            tag = line // self.num_sets
        row = self._tag_rows[set_index]
        order = self.order[set_index]

        for way, stored in enumerate(row):
            if stored == tag:
                stats.hits += 1
                if order[0] != way:
                    order.remove(way)
                    order.insert(0, way)
                if is_write and self._wbwa:
                    self.dirty_bits[set_index * self.associativity + way] = 1
                return AccessResult(hit=True)

        stats.misses += 1
        if is_write and self._wtna:
            # Write miss with no-write-allocate: the line is not brought in.
            return AccessResult(hit=False)

        victim = order[-1]
        base = set_index * self.associativity
        evicted_tag = row[victim]
        writeback_address = None
        evicted_address = None
        if evicted_tag >= 0:
            evicted_address = self._address_of(set_index, evicted_tag)
            stats.evictions += 1
            if self.dirty_bits[base + victim]:
                stats.writebacks += 1
                writeback_address = evicted_address
        row[victim] = tag
        self.tag_store[base + victim] = tag
        self.dirty_bits[base + victim] = 1 if is_write and self._wbwa else 0
        order.remove(victim)
        order.insert(0, victim)
        return AccessResult(
            hit=False,
            writeback_address=writeback_address,
            evicted_address=evicted_address,
        )

    def probe(self, address: int) -> bool:
        """Check residency without perturbing any state."""
        set_index, tag = self.split_address(address)
        return tag in self._tag_rows[set_index]

    # -- reverse reconstruction primitives ---------------------------------

    def begin_reconstruction(self) -> None:
        """Clear all reconstructed bits (start of a reverse warm-up pass)."""
        self.recon_bits[:] = self._zero_blocks
        self.recon_count[:] = self._zero_counts

    def set_fully_reconstructed(self, set_index: int) -> bool:
        """True once every way of `set_index` has been reconstructed."""
        return self.recon_count[set_index] >= self.associativity

    def reconstruct_reference(self, address: int, is_write: bool = False) -> bool:
        """Apply one logged reference during a reverse-order scan.

        Returns True if the reference changed state, False if it was
        skipped as redundant (its set already fully reconstructed, or its
        block already reconstructed by a more recent reference).

        Implements the paper's §3.1 rules:

        - a set that is fully reconstructed ignores all older references;
        - a hit on an already-reconstructed block is redundant;
        - a hit on a stale block promotes it to the next reconstruction
          rank (first reconstructed block of a set becomes MRU, later ones
          take increasing LRU values);
        - a miss replaces the least-recently-used *stale* block;
        - WTNA caches allocate even on logged writes, "to avoid history
          looking for a previous read".
        """
        set_index, tag = self.split_address(address)
        return self.reconstruct_line(set_index, tag, is_write)

    def reconstruct_line(
        self, set_index: int, tag: int, is_write: bool = False
    ) -> bool:
        """:meth:`reconstruct_reference` for a pre-split (set, tag) pair.

        Bulk callers (the vectorized reverse reconstructor) split whole
        reference columns with numpy and feed winners through this entry
        point, skipping the per-reference address arithmetic.
        """
        stats = self.stats
        count = self.recon_count[set_index]
        if count >= self.associativity:
            stats.reconstruction_skipped += 1
            return False

        row = self._tag_rows[set_index]
        base = set_index * self.associativity
        recon_bits = self.recon_bits
        order = self.order[set_index]

        for way, stored in enumerate(row):
            if stored == tag:
                if recon_bits[base + way]:
                    stats.reconstruction_skipped += 1
                    return False
                # Present but stale: promote to the next reconstruction rank.
                recon_bits[base + way] = 1
                order.remove(way)
                order.insert(count, way)
                self.recon_count[set_index] = count + 1
                stats.reconstruction_applied += 1
                stats.updates += 1
                return True

        # Absent: insert into the least-recently-used stale block.  Because
        # reconstructed blocks occupy order[0:count], order[-1] is always a
        # stale way here.
        victim = order[-1]
        row[victim] = tag
        self.tag_store[base + victim] = tag
        self.dirty_bits[base + victim] = 1 if is_write and self._wbwa else 0
        recon_bits[base + victim] = 1
        order.pop()
        order.insert(count, victim)
        self.recon_count[set_index] = count + 1
        stats.reconstruction_applied += 1
        stats.updates += 1
        return True

    def reconstruct_winners(self, set_indices, tags, writes) -> int:
        """Bulk-insert pre-filtered winner references, newest first.

        The three columns run in parallel and must already be filtered to
        the reverse-scan *winners* — the first occurrence of each line,
        limited to the first `associativity` distinct lines per set (the
        winner set depends only on the reference stream, never on cache
        contents, so callers can compute it without consulting state).
        Every winner therefore applies; state transitions and statistics
        are charged through the same scalar primitive the reference
        reverse scan uses, keeping bulk and scalar paths bit-identical.

        Returns the number of references applied (== the column length
        for a correctly filtered input).
        """
        applied = 0
        reconstruct_line = self.reconstruct_line
        for set_index, tag, is_write in zip(set_indices, tags, writes):
            if reconstruct_line(set_index, tag, is_write):
                applied += 1
        return applied

    # -- maintenance --------------------------------------------------------

    def reset(self) -> None:
        """Invalidate all lines and reset statistics."""
        assoc = self.associativity
        self.tag_store[:] = self._empty_tag_store
        self.dirty_bits[:] = self._zero_blocks
        self.recon_bits[:] = self._zero_blocks
        self.recon_count[:] = self._zero_counts
        self._tag_rows = [[-1] * assoc for _ in range(self.num_sets)]
        for set_index in range(self.num_sets):
            self.order[set_index] = list(range(assoc))
        self.stats.reset()

    def contents(self) -> set[int]:
        """Line addresses of every valid block (for state-comparison tests)."""
        lines = set()
        for set_index, row in enumerate(self._tag_rows):
            for tag in row:
                if tag >= 0:
                    lines.add(self._address_of(set_index, tag))
        return lines

    def state_fingerprint(self) -> tuple:
        """Hashable summary of the architecturally visible state.

        Per set, the stored tags in most- to least-recently-used order.
        Physical way placement is excluded: two caches holding the same
        lines with the same recency behave identically regardless of
        which way each line occupies.
        """
        rows = self._tag_rows
        return tuple(
            tuple(
                rows[set_index][way] if rows[set_index][way] >= 0 else None
                for way in self.order[set_index]
            )
            for set_index in range(self.num_sets)
        )

    # -- state snapshot (live-points support) --------------------------------

    def export_state(self) -> dict:
        """Deep-copy the architecturally visible state (tags, dirty bits,
        recency) into a plain dict, for checkpoint libraries."""
        assoc = self.associativity
        dirty_bits = self.dirty_bits
        return {
            "tags": [
                [tag if tag >= 0 else None for tag in row]
                for row in self._tag_rows
            ],
            "dirty": [
                [b == 1 for b in dirty_bits[s * assoc:(s + 1) * assoc]]
                for s in range(self.num_sets)
            ],
            "order": [list(row) for row in self.order],
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state`.

        The snapshot must come from a cache with identical geometry.
        """
        if len(state["tags"]) != self.num_sets or (
            self.num_sets and len(state["tags"][0]) != self.associativity
        ):
            raise ValueError("snapshot geometry does not match this cache")
        assoc = self.associativity
        tag_store = self.tag_store
        dirty_bits = self.dirty_bits
        for set_index, (tag_row, dirty_row) in enumerate(
            zip(state["tags"], state["dirty"])
        ):
            base = set_index * assoc
            mirror = self._tag_rows[set_index]
            for way in range(assoc):
                tag = tag_row[way]
                value = -1 if tag is None else tag
                mirror[way] = value
                tag_store[base + way] = value
                dirty_bits[base + way] = 1 if dirty_row[way] else 0
        self.order = [list(row) for row in state["order"]]
        self.recon_bits[:] = self._zero_blocks
        self.recon_count[:] = self._zero_counts

    def __repr__(self) -> str:
        config = self.config
        return (
            f"Cache({config.name}: {config.size_bytes}B, "
            f"{config.associativity}-way, {config.line_bytes}B lines, "
            f"{config.write_policy.value})"
        )
