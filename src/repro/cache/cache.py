"""Set-associative LRU cache with reverse-reconstruction support.

The cache keeps, per set, an explicit recency ordering (`order[set]` lists
way indices from MRU to LRU) plus per-block *reconstructed* bits, the
hardware hook the paper's §3.1 algorithm relies on:

    "Each cache block contains a bit that indicates if it has been
     reconstructed.  These bits are cleared before the logged data are
     used to warm the cache."

Two access families are exposed:

- :meth:`Cache.access` — a normal (forward-time) access that updates tags,
  recency, and dirty bits according to the write policy.  Used by detailed
  simulation and by SMARTS-style functional warming.
- :meth:`Cache.begin_reconstruction` / :meth:`Cache.reconstruct_reference`
  — the reverse-order primitives: the *first* reference seen for a block
  (i.e. the most recent in program order) wins, reconstructed blocks are
  ranked MRU-first in discovery order, and victims are chosen among
  *stale* (not-yet-reconstructed) blocks only.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import CacheConfig, WritePolicy


@dataclass
class CacheStats:
    """Event counters; `updates` counts every state-changing operation and
    is the deterministic cost metric used by the warm-up comparisons."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    reconstruction_applied: int = 0
    reconstruction_skipped: int = 0
    updates: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.reconstruction_applied = 0
        self.reconstruction_skipped = 0
        self.updates = 0

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of one forward cache access."""

    hit: bool
    #: Byte address of a dirty line written back, or None.
    writeback_address: int | None = None
    #: Byte address of the line evicted (clean or dirty), or None.
    evicted_address: int | None = None


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        self._index_mask = self.num_sets - 1
        self._sets_power_of_two = (self.num_sets & (self.num_sets - 1)) == 0
        assoc = self.associativity
        sets = self.num_sets
        #: tags[s][w] is the line tag stored in way w of set s (None=invalid).
        self.tags: list[list[int | None]] = [[None] * assoc for _ in range(sets)]
        self.dirty: list[list[bool]] = [[False] * assoc for _ in range(sets)]
        self.reconstructed: list[list[bool]] = [
            [False] * assoc for _ in range(sets)
        ]
        #: order[s] lists way indices from most- to least-recently used.
        self.order: list[list[int]] = [list(range(assoc)) for _ in range(sets)]
        #: Number of ways reconstructed so far in set s (reverse warm-up).
        self.recon_count: list[int] = [0] * sets
        self.stats = CacheStats()

    # -- address helpers --------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing `address`."""
        return (address >> self._line_shift) << self._line_shift

    def split_address(self, address: int) -> tuple[int, int]:
        """Return (set index, tag) for `address`."""
        line = address >> self._line_shift
        if self._sets_power_of_two:
            return line & self._index_mask, line >> self.num_sets.bit_length() - 1
        return line % self.num_sets, line // self.num_sets

    def _address_of(self, set_index: int, tag: int) -> int:
        if self._sets_power_of_two:
            line = (tag << (self.num_sets.bit_length() - 1)) | set_index
        else:
            line = tag * self.num_sets + set_index
        return line << self._line_shift

    # -- forward-time access ------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one forward access, honouring the write policy."""
        stats = self.stats
        stats.accesses += 1
        stats.updates += 1
        set_index, tag = self.split_address(address)
        tags = self.tags[set_index]
        order = self.order[set_index]

        for way, stored in enumerate(tags):
            if stored == tag:
                stats.hits += 1
                if order[0] != way:
                    order.remove(way)
                    order.insert(0, way)
                if is_write and self.config.write_policy is WritePolicy.WBWA:
                    self.dirty[set_index][way] = True
                return AccessResult(hit=True)

        stats.misses += 1
        if is_write and self.config.write_policy is WritePolicy.WTNA:
            # Write miss with no-write-allocate: the line is not brought in.
            return AccessResult(hit=False)

        victim = order[-1]
        evicted_tag = tags[victim]
        writeback_address = None
        evicted_address = None
        if evicted_tag is not None:
            evicted_address = self._address_of(set_index, evicted_tag)
            stats.evictions += 1
            if self.dirty[set_index][victim]:
                stats.writebacks += 1
                writeback_address = evicted_address
        tags[victim] = tag
        self.dirty[set_index][victim] = (
            is_write and self.config.write_policy is WritePolicy.WBWA
        )
        order.remove(victim)
        order.insert(0, victim)
        return AccessResult(
            hit=False,
            writeback_address=writeback_address,
            evicted_address=evicted_address,
        )

    def probe(self, address: int) -> bool:
        """Check residency without perturbing any state."""
        set_index, tag = self.split_address(address)
        return tag in self.tags[set_index]

    # -- reverse reconstruction primitives ---------------------------------

    def begin_reconstruction(self) -> None:
        """Clear all reconstructed bits (start of a reverse warm-up pass)."""
        for bits in self.reconstructed:
            for way in range(self.associativity):
                bits[way] = False
        for set_index in range(self.num_sets):
            self.recon_count[set_index] = 0

    def set_fully_reconstructed(self, set_index: int) -> bool:
        """True once every way of `set_index` has been reconstructed."""
        return self.recon_count[set_index] >= self.associativity

    def reconstruct_reference(self, address: int, is_write: bool = False) -> bool:
        """Apply one logged reference during a reverse-order scan.

        Returns True if the reference changed state, False if it was
        skipped as redundant (its set already fully reconstructed, or its
        block already reconstructed by a more recent reference).

        Implements the paper's §3.1 rules:

        - a set that is fully reconstructed ignores all older references;
        - a hit on an already-reconstructed block is redundant;
        - a hit on a stale block promotes it to the next reconstruction
          rank (first reconstructed block of a set becomes MRU, later ones
          take increasing LRU values);
        - a miss replaces the least-recently-used *stale* block;
        - WTNA caches allocate even on logged writes, "to avoid history
          looking for a previous read".
        """
        stats = self.stats
        set_index, tag = self.split_address(address)
        count = self.recon_count[set_index]
        if count >= self.associativity:
            stats.reconstruction_skipped += 1
            return False

        tags = self.tags[set_index]
        bits = self.reconstructed[set_index]
        order = self.order[set_index]

        for way, stored in enumerate(tags):
            if stored == tag:
                if bits[way]:
                    stats.reconstruction_skipped += 1
                    return False
                # Present but stale: promote to the next reconstruction rank.
                bits[way] = True
                order.remove(way)
                order.insert(count, way)
                self.recon_count[set_index] = count + 1
                stats.reconstruction_applied += 1
                stats.updates += 1
                return True

        # Absent: insert into the least-recently-used stale block.  Because
        # reconstructed blocks occupy order[0:count], order[-1] is always a
        # stale way here.
        victim = order[-1]
        tags[victim] = tag
        self.dirty[set_index][victim] = (
            is_write and self.config.write_policy is WritePolicy.WBWA
        )
        bits[victim] = True
        order.pop()
        order.insert(count, victim)
        self.recon_count[set_index] = count + 1
        stats.reconstruction_applied += 1
        stats.updates += 1
        return True

    # -- maintenance --------------------------------------------------------

    def reset(self) -> None:
        """Invalidate all lines and reset statistics."""
        for set_index in range(self.num_sets):
            for way in range(self.associativity):
                self.tags[set_index][way] = None
                self.dirty[set_index][way] = False
                self.reconstructed[set_index][way] = False
            self.order[set_index] = list(range(self.associativity))
            self.recon_count[set_index] = 0
        self.stats.reset()

    def contents(self) -> set[int]:
        """Line addresses of every valid block (for state-comparison tests)."""
        lines = set()
        for set_index in range(self.num_sets):
            for tag in self.tags[set_index]:
                if tag is not None:
                    lines.add(self._address_of(set_index, tag))
        return lines

    def state_fingerprint(self) -> tuple:
        """Hashable summary of the architecturally visible state.

        Per set, the stored tags in most- to least-recently-used order.
        Physical way placement is excluded: two caches holding the same
        lines with the same recency behave identically regardless of
        which way each line occupies.
        """
        return tuple(
            tuple(self.tags[set_index][way] for way in self.order[set_index])
            for set_index in range(self.num_sets)
        )

    # -- state snapshot (live-points support) --------------------------------

    def export_state(self) -> dict:
        """Deep-copy the architecturally visible state (tags, dirty bits,
        recency) into a plain dict, for checkpoint libraries."""
        return {
            "tags": [list(row) for row in self.tags],
            "dirty": [list(row) for row in self.dirty],
            "order": [list(row) for row in self.order],
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state`.

        The snapshot must come from a cache with identical geometry.
        """
        if len(state["tags"]) != self.num_sets or (
            self.num_sets and len(state["tags"][0]) != self.associativity
        ):
            raise ValueError("snapshot geometry does not match this cache")
        self.tags = [list(row) for row in state["tags"]]
        self.dirty = [list(row) for row in state["dirty"]]
        self.order = [list(row) for row in state["order"]]
        for set_index in range(self.num_sets):
            for way in range(self.associativity):
                self.reconstructed[set_index][way] = False
            self.recon_count[set_index] = 0

    def __repr__(self) -> str:
        config = self.config
        return (
            f"Cache({config.name}: {config.size_bytes}B, "
            f"{config.associativity}-way, {config.line_bytes}B lines, "
            f"{config.write_policy.value})"
        )
