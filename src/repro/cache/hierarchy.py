"""Two-level memory hierarchy with split L1, unified L2, and buses.

Mirrors the paper's §4 framework: write-through no-allocate L1 instruction
and data caches in front of a write-back write-allocate unified L2, an L1
bus shared by both L1s, and an L2 bus to main memory.

Two access families are provided:

- :meth:`MemoryHierarchy.timed_access` — updates cache state *and* returns
  the access latency in core cycles, modelling bus contention.  Used by
  hot (detailed) simulation.
- :meth:`MemoryHierarchy.warm_access` — updates cache state only, with no
  timing.  Used by functional (SMARTS-style) warming.  The state change is
  identical to the timed path.
"""

from __future__ import annotations

from .bus import Bus
from .cache import Cache
from .config import HierarchyConfig, WritePolicy, paper_hierarchy_config


class MemoryHierarchy:
    """L1I + L1D + unified L2 + two buses + flat main memory."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config if config is not None else paper_hierarchy_config()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l1_bus = Bus(self.config.l1_bus)
        self.l2_bus = Bus(self.config.l2_bus)
        self.memory_accesses = 0
        # Per-access constants, hoisted out of the hot access paths (the
        # write-policy enum compare costs three attribute loads per call).
        self._l1i_wtna = self.config.l1i.write_policy is WritePolicy.WTNA
        self._l1d_wtna = self.config.l1d.write_policy is WritePolicy.WTNA
        self._l1i_hit_latency = self.config.l1i.hit_latency
        self._l1d_hit_latency = self.config.l1d.hit_latency
        self._l2_hit_latency = self.config.l2.hit_latency
        self._l1_line_bytes = (
            self.config.l1i.line_bytes, self.config.l1d.line_bytes
        )
        self._l2_line_bytes = self.config.l2.line_bytes
        self._memory_latency = self.config.memory_latency

    # -- internal: one L2-and-below round trip -------------------------------

    def _l2_fill(self, address: int, is_write: bool, now: int) -> int:
        """Access L2 (and memory below it); return completion time."""
        line_bytes = self._l2_line_bytes
        result = self.l2.access(address, is_write)
        time = now + self._l2_hit_latency
        if not result.hit:
            self.memory_accesses += 1
            # Miss: fetch the line across the L2 bus from memory.
            time += self._memory_latency
            time = self.l2_bus.request(time, line_bytes)
        if result.writeback_address is not None:
            # Dirty victim drains to memory; occupies the bus after our fill.
            self.l2_bus.request(time, line_bytes)
        return time

    # -- timed accesses (hot simulation) --------------------------------------

    def timed_access(
        self, address: int, is_write: bool, is_instruction: bool, now: int
    ) -> int:
        """Access the hierarchy at core-cycle `now`; return latency in cycles."""
        if is_instruction:
            l1 = self.l1i
            l1_wtna = self._l1i_wtna
            hit_latency = self._l1i_hit_latency
            line_bytes = self._l1_line_bytes[0]
        else:
            l1 = self.l1d
            l1_wtna = self._l1d_wtna
            hit_latency = self._l1d_hit_latency
            line_bytes = self._l1_line_bytes[1]
        result = l1.access(address, is_write)

        if result.hit:
            finish = now + hit_latency
            if is_write and l1_wtna:
                # Write-through: the word crosses the L1 bus and updates L2.
                # The store retires at L1 speed; the write-through drains in
                # the background but still occupies bus/L2 bandwidth.
                drain = self.l1_bus.request(now + hit_latency, 8)
                self._l2_fill(address, True, drain)
            return finish - now

        if is_write and l1_wtna:
            # Write miss, no-write-allocate: forward the word to L2 only.
            drain = self.l1_bus.request(now + hit_latency, 8)
            finish = self._l2_fill(address, True, drain)
            # The store itself completes once accepted by the bus.
            return drain - now

        # Read miss (or WBWA write miss): fetch line from L2 via the L1 bus.
        request_time = self.l1_bus.request(now + hit_latency, 8)
        fill_time = self._l2_fill(address, is_write, request_time)
        finish = self.l1_bus.request(fill_time, line_bytes)
        if result.writeback_address is not None:
            # Dirty L1 victim (only possible for WBWA L1s) drains afterwards.
            drain = self.l1_bus.request(finish, line_bytes)
            self._l2_fill(result.writeback_address, True, drain)
        return finish - now

    # -- untimed accesses (functional warming / cold-state repair) -----------

    def warm_access(
        self, address: int, is_write: bool, is_instruction: bool
    ) -> None:
        """Apply the state effect of one access with no timing.

        Follows the same miss/write-through paths as :meth:`timed_access`
        so warmed state matches what detailed simulation would produce.
        """
        if is_instruction:
            l1 = self.l1i
            l1_wtna = self._l1i_wtna
        else:
            l1 = self.l1d
            l1_wtna = self._l1d_wtna
        result = l1.access(address, is_write)
        if result.hit:
            if is_write and l1_wtna:
                self.l2.access(address, True)
            return
        if is_write and l1_wtna:
            self.l2.access(address, True)
            return
        self.l2.access(address, is_write)
        if result.writeback_address is not None:
            self.l2.access(result.writeback_address, True)

    # -- maintenance ----------------------------------------------------------

    def reset(self) -> None:
        """Invalidate all caches and reset buses and counters."""
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.l1_bus.reset()
        self.l2_bus.reset()
        self.memory_accesses = 0

    def reset_stats(self) -> None:
        """Zero counters without disturbing cache contents."""
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.memory_accesses = 0

    def total_updates(self) -> int:
        """Total state-changing cache operations (warm-up cost metric)."""
        return (
            self.l1i.stats.updates
            + self.l1d.stats.updates
            + self.l2.stats.updates
        )

    def caches(self) -> tuple[Cache, Cache, Cache]:
        return self.l1i, self.l1d, self.l2

    def export_state(self) -> dict:
        """Snapshot all three caches (live-points support)."""
        return {
            "l1i": self.l1i.export_state(),
            "l1d": self.l1d.export_state(),
            "l2": self.l2.export_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`; buses rewind."""
        self.l1i.load_state(state["l1i"])
        self.l1d.load_state(state["l1d"])
        self.l2.load_state(state["l2"])
        self.l1_bus.rewind()
        self.l2_bus.rewind()

    def __repr__(self) -> str:
        return f"MemoryHierarchy({self.l1i!r}, {self.l1d!r}, {self.l2!r})"
