"""Cache and memory-hierarchy configuration records.

Defaults follow the paper's §4 experimental framework, with sizes scaled
down by a constant factor so the (much shorter) synthetic workloads exert
comparable pressure on the hierarchy.  Pass ``scale=1`` to
:func:`paper_hierarchy_config` for the paper's literal geometry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WritePolicy(enum.Enum):
    """Write-hit/write-miss handling."""

    #: Write-through, no-write-allocate (paper's L1 I/D policy).
    WTNA = "write-through-no-allocate"
    #: Write-back, write-allocate (paper's L2 policy).
    WBWA = "write-back-write-allocate"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of a single cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    write_policy: WritePolicy
    hit_latency: int  # core cycles

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.associativity})"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class BusConfig:
    """A shared bus between two hierarchy levels.

    Latencies are expressed in *core* cycles; `cycles_per_beat` is the
    number of core cycles one bus beat takes (core frequency / bus
    frequency).
    """

    name: str
    width_bytes: int
    cycles_per_beat: int

    def transfer_cycles(self, num_bytes: int) -> int:
        """Core cycles to move `num_bytes` across the bus."""
        beats = -(-num_bytes // self.width_bytes)  # ceil division
        return beats * self.cycles_per_beat


@dataclass(frozen=True)
class HierarchyConfig:
    """Complete memory-hierarchy description."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l1_bus: BusConfig
    l2_bus: BusConfig
    memory_latency: int  # core cycles for a DRAM access, excluding buses


def paper_hierarchy_config(scale: int = 16) -> HierarchyConfig:
    """The paper's hierarchy, optionally scaled down by `scale`.

    Paper values (scale=1): L1D 32 KB 4-way WTNA, L1I 64 KB 4-way WTNA,
    L2 1 MB 8-way WBWA, all 64-byte lines.  L1 bus 16 B @ 1 GHz, L2 bus
    32 B @ 2 GHz, 2 GHz core.  `scale` divides capacities (associativity
    and line size are preserved) so that synthetic workloads of a few
    million instructions see realistic miss behaviour.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return HierarchyConfig(
        l1i=CacheConfig(
            name="L1I",
            size_bytes=64 * 1024 // scale,
            line_bytes=64,
            associativity=4,
            write_policy=WritePolicy.WTNA,
            hit_latency=1,
        ),
        l1d=CacheConfig(
            name="L1D",
            size_bytes=32 * 1024 // scale,
            line_bytes=64,
            associativity=4,
            write_policy=WritePolicy.WTNA,
            hit_latency=1,
        ),
        l2=CacheConfig(
            name="L2",
            size_bytes=1024 * 1024 // scale,
            line_bytes=64,
            associativity=8,
            write_policy=WritePolicy.WBWA,
            hit_latency=8,
        ),
        # 2 GHz core: the 1 GHz L1 bus takes 2 core cycles per beat, the
        # 2 GHz L2 bus takes 1.
        l1_bus=BusConfig(name="L1bus", width_bytes=16, cycles_per_beat=2),
        l2_bus=BusConfig(name="L2bus", width_bytes=32, cycles_per_beat=1),
        memory_latency=60,
    )
