"""Bus model: arbitration, contention, and transfer delay.

The paper's §4 models two buses: a 16-byte 1 GHz bus shared by the L1
caches (to L2) and a 32-byte 2 GHz bus from L2 to main memory.  Each bus
serialises transfers: a request issued while the bus is busy waits until
the in-flight transfer drains (contention), then occupies the bus for the
transfer duration.
"""

from __future__ import annotations

from .config import BusConfig


class Bus:
    """A single shared bus with first-come-first-served arbitration."""

    def __init__(self, config: BusConfig) -> None:
        self.config = config
        #: Core-cycle time at which the current transfer completes.
        self.busy_until = 0
        self.transfers = 0
        self.bytes_moved = 0
        self.contention_cycles = 0

    def request(self, now: int, num_bytes: int) -> int:
        """Schedule a transfer of `num_bytes` starting no earlier than `now`.

        Returns the core-cycle time at which the transfer completes.  The
        caller's latency is ``completion - now`` (queueing + transfer).
        """
        start = now if now >= self.busy_until else self.busy_until
        self.contention_cycles += start - now
        completion = start + self.config.transfer_cycles(num_bytes)
        self.busy_until = completion
        self.transfers += 1
        self.bytes_moved += num_bytes
        return completion

    def rewind(self) -> None:
        """Clear the transfer schedule but keep statistics.

        The timing core's cycle counter restarts at zero for every hot
        run; the bus schedule must restart with it.
        """
        self.busy_until = 0

    def reset(self) -> None:
        self.busy_until = 0
        self.transfers = 0
        self.bytes_moved = 0
        self.contention_cycles = 0

    def __repr__(self) -> str:
        return f"Bus({self.config.name}, busy_until={self.busy_until})"
