"""Picklable functional checkpoints for the two-phase pipeline.

The in-process :class:`~repro.functional.machine.Checkpoint` shares the
live :class:`~repro.functional.memory.Memory` implementation and is made
for same-process save/restore (MRRL's look-ahead profiling).  The
two-phase execution pipeline needs something stronger: a cluster shard
restores architectural state in a *worker process*, so the captured
state must cross a pickle boundary compactly and deterministically.

:class:`FunctionalCheckpoint` is that form — plain ints, a tuple of
registers, and the sparse memory image as a word dict.  Restoring onto a
freshly built machine of the same workload reproduces the exact
architectural state (and therefore the exact downstream instruction
trace): the program image is immutable per workload, so only the mutable
state travels.

Capture is O(resident memory words); the bundled workloads keep that in
the tens of thousands of words, far below the cost of the detailed
cluster simulation the shard exists to parallelise.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import FunctionalMachine
from .memory import Memory


@dataclass(frozen=True)
class FunctionalCheckpoint:
    """Full architectural state of one machine, in picklable form.

    Frozen so a captured checkpoint can be shared by several consumers
    (shards, tests) without defensive copies at hand-off time; `restore`
    copies the memory image into the target machine instead.
    """

    pc: int
    registers: tuple[int, ...]
    memory_words: dict[int, int]
    instructions_retired: int
    halted: bool

    @classmethod
    def capture(cls, machine: FunctionalMachine) -> "FunctionalCheckpoint":
        """Snapshot `machine`'s architectural state."""
        return cls(
            pc=machine.pc,
            registers=tuple(machine.registers),
            memory_words=dict(machine.memory._words),
            instructions_retired=machine.instructions_retired,
            halted=machine.halted,
        )

    def restore(self, machine: FunctionalMachine) -> FunctionalMachine:
        """Install this state onto `machine` (same workload program).

        Replaces registers, PC, retirement counter, and the whole memory
        image; the machine's ifetch-continuity marker is invalidated
        because execution is jumping to a checkpointed position.
        Returns `machine` for chaining.
        """
        machine.pc = self.pc
        machine.registers = list(self.registers)
        memory = Memory()
        memory._words = dict(self.memory_words)
        machine.memory = memory
        machine.instructions_retired = self.instructions_retired
        machine.halted = self.halted
        machine.invalidate_fetch_block()
        return machine

    def resident_words(self) -> int:
        """Distinct memory words carried by this checkpoint."""
        return len(self.memory_words)
