"""Predecoded program representation (columnar decode cache).

The scalar interpreter reads one :class:`~repro.isa.instructions.
Instruction` object per step and pays an attribute lookup for every
operand field.  The batched interpreter in
:meth:`~repro.functional.machine.FunctionalMachine.run_batch` instead
executes over *parallel columns* — one typed array per operand field —
decoded once per :class:`~repro.isa.program.Program`:

- ``ops``/``rds``/``rs1s``/``rs2s`` (``array('h')``/``array('B')``) and
  ``imms``/``targets`` (``array('q')``) hold the operand fields;
- ``boundary`` marks instructions the batched span loop must leave to
  the boundary handler: memory references and control transfers (which
  fire observation hooks) and HALT;
- ``span_end[i]`` is the index of the first boundary instruction at or
  after ``i`` — the straight-line ALU/NOP span ``[i, span_end[i])`` can
  execute with no hook checks and no per-step object churn;
- the timing-simulator columns (``is_mem``/``is_control``/``is_load``/
  ``is_store`` bytearrays, ``latency``, ``dest`` with −1 for "no
  destination", and per-instruction ``sources`` tuples) let the hot
  loop replace five attribute/method lookups per retired instruction
  with list indexing.

The interpreter additionally keeps plain-list mirrors of the operand
columns (``op_list`` and friends): CPython indexes a list of cached
small ints faster than a typed array, which re-boxes on every read.
The typed arrays remain the canonical, compact storage (and the form
bulk/numpy consumers view); the mirrors are derived once here and never
mutated.

Decoding is memoized on the program object (``program._predecoded``),
so every machine over the same image shares one decode.
"""

from __future__ import annotations

from array import array

from ..isa import Opcode

#: Opcodes at which a straight-line batched span must stop: memory
#: references and control transfers (their observation hooks interleave
#: with execution order) plus HALT.
_BOUNDARY_OPS = frozenset({
    Opcode.LOAD, Opcode.STORE,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.CALLR, Opcode.RET,
    Opcode.HALT,
})


class PredecodedProgram:
    """Columnar decode of one program (see module docstring)."""

    __slots__ = (
        "ops", "rds", "rs1s", "rs2s", "imms", "targets",
        "boundary", "span_end",
        "is_mem", "is_control", "is_load", "is_store",
        "latency", "dest", "sources",
        "op_list", "rd_list", "rs1_list", "rs2_list", "imm_list",
        "target_list", "span_end_list",
    )

    def __init__(self, program) -> None:
        instructions = program.instructions
        n = len(instructions)
        ops = array("h", bytes(2 * n))
        rds = array("B", bytes(n))
        rs1s = array("B", bytes(n))
        rs2s = array("B", bytes(n))
        imms = array("q", bytes(8 * n))
        targets = array("q", bytes(8 * n))
        boundary = bytearray(n)
        is_mem = bytearray(n)
        is_control = bytearray(n)
        is_load = bytearray(n)
        is_store = bytearray(n)
        latency = bytearray(n)
        dest = array("b", bytes(n))
        sources: list[tuple[int, ...]] = [()] * n

        for index, inst in enumerate(instructions):
            op = inst.opcode
            ops[index] = op
            rds[index] = inst.rd
            rs1s[index] = inst.rs1
            rs2s[index] = inst.rs2
            try:
                imms[index] = inst.imm
                targets[index] = inst.target
                boundary[index] = op in _BOUNDARY_OPS
            except OverflowError:
                # An operand that does not fit the 64-bit column is left
                # to the step() fallback: marking the instruction as a
                # boundary keeps the batched span loop away from it, and
                # poisoning its opcode column keeps the boundary
                # dispatcher from matching an inline case on the stale
                # column values.
                ops[index] = -1
                boundary[index] = True
            is_mem[index] = inst.is_mem
            is_control[index] = inst.is_control
            is_load[index] = inst.is_load
            is_store[index] = inst.is_store
            latency[index] = inst.latency
            destination = inst.destination()
            dest[index] = -1 if destination is None else destination
            sources[index] = inst.sources()

        # span_end[i]: first boundary index at or after i (or n).  Walked
        # backwards so each element is filled in O(1).
        span_end = array("q", bytes(8 * n))
        nearest = n
        for index in range(n - 1, -1, -1):
            if boundary[index]:
                nearest = index
            span_end[index] = nearest

        self.ops = ops
        self.rds = rds
        self.rs1s = rs1s
        self.rs2s = rs2s
        self.imms = imms
        self.targets = targets
        self.boundary = boundary
        self.span_end = span_end
        self.is_mem = is_mem
        self.is_control = is_control
        self.is_load = is_load
        self.is_store = is_store
        self.latency = latency
        self.dest = dest
        self.sources = sources
        # Interpreter-facing list mirrors (see module docstring).
        self.op_list = ops.tolist()
        self.rd_list = rds.tolist()
        self.rs1_list = rs1s.tolist()
        self.rs2_list = rs2s.tolist()
        self.imm_list = imms.tolist()
        self.target_list = targets.tolist()
        self.span_end_list = span_end.tolist()

    def __len__(self) -> int:
        return len(self.ops)


def predecode_program(program) -> PredecodedProgram:
    """Decode `program` into columns, memoized on the program object."""
    cached = getattr(program, "_predecoded", None)
    if cached is not None:
        return cached
    decoded = PredecodedProgram(program)
    program._predecoded = decoded
    return decoded
