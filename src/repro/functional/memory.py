"""Sparse data memory for the functional simulator.

The synthetic workloads touch gigabyte-spanning address ranges but only a
few megabytes of distinct words, so memory is a dictionary keyed by
word-aligned byte address.  Unwritten locations read as zero, which the
workload generators rely on for zero-initialised arrays.
"""

from __future__ import annotations

WORD_BYTES = 8
_WORD_MASK = ~(WORD_BYTES - 1)


class Memory:
    """Word-granular sparse memory.

    Addresses are byte addresses; accesses are aligned down to the
    containing 8-byte word.  Values are stored as Python ints masked to
    64 bits by the callers (the machine masks on write).
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load(self, address: int) -> int:
        """Read the word containing `address` (0 if never written)."""
        return self._words.get(address & _WORD_MASK, 0)

    def store(self, address: int, value: int) -> None:
        """Write `value` to the word containing `address`."""
        self._words[address & _WORD_MASK] = value

    def fill_words(self, base: int, values) -> None:
        """Bulk-initialise consecutive words starting at `base`."""
        words = self._words
        address = base & _WORD_MASK
        for value in values:
            words[address] = value
            address += WORD_BYTES

    def footprint_words(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def copy(self) -> "Memory":
        """Deep copy (used by checkpoints)."""
        clone = Memory()
        clone._words = dict(self._words)
        return clone

    def clear(self) -> None:
        self._words.clear()
