"""The functional simulator.

The functional machine maintains architecturally correct state (registers,
PC, memory) regardless of how instructions are timed.  It plays three roles
in sampled simulation, mirroring the paper's §4:

1. *Cold* simulation — fast-forwarding between clusters while keeping
   architectural state correct.
2. The execution engine underneath *warm* simulation — warm-up methods
   attach hooks that observe memory references and branch outcomes.
3. The oracle underneath *hot* simulation — the timing core single-steps
   the functional machine and times each retired instruction.

Performance notes: the dispatch in :meth:`FunctionalMachine.run` is a flat
``if/elif`` chain on the opcode's integer value with all hot attributes
hoisted into locals, because this is the innermost loop of every
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Opcode, Program, NUM_REGISTERS, LINK_REGISTER, STACK_POINTER
from .memory import Memory

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & _SIGN_BIT else value


@dataclass
class StepResult:
    """Everything the timing simulator needs to know about one instruction.

    A single instance is reused across steps to avoid per-instruction
    allocation; consumers must copy any field they want to keep.
    """

    index: int = 0          # instruction index executed
    next_index: int = 0     # architecturally correct next instruction index
    taken: bool = False     # for control instructions: was it taken?
    mem_address: int = -1   # effective byte address for LOAD/STORE, else -1
    halted: bool = False


@dataclass
class Checkpoint:
    """A full architectural snapshot (registers, PC, memory, counters)."""

    pc: int
    registers: list[int]
    memory: Memory
    instructions_retired: int = 0
    extra: dict = field(default_factory=dict)


class FunctionalMachine:
    """Architectural-state interpreter for one :class:`Program`.

    Parameters
    ----------
    program:
        The workload image to execute.
    memory:
        Optional pre-initialised memory (workload generators seed arrays).
    """

    def __init__(self, program: Program, memory: Memory | None = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.registers: list[int] = [0] * NUM_REGISTERS
        self.registers[STACK_POINTER] = program.stack_base
        self.pc = program.entry
        self.halted = False
        self.instructions_retired = 0
        self._step_result = StepResult()
        #: Ifetch-continuity marker: ``(per_block, block)`` of the last
        #: instruction block fetched by an *observed* :meth:`run` (one
        #: with an ``ifetch_hook``).  Carried across calls so a phase
        #: boundary (warm-up prefix -> skip, skip -> skip) does not
        #: re-report a block the previous phase already fetched; see
        #: :meth:`invalidate_fetch_block` for when it resets.
        self._last_fetch: tuple[int, int] = (0, -1)

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Capture the full architectural state."""
        return Checkpoint(
            pc=self.pc,
            registers=list(self.registers),
            memory=self.memory.copy(),
            instructions_retired=self.instructions_retired,
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Restore state captured by :meth:`checkpoint`."""
        self.pc = checkpoint.pc
        self.registers = list(checkpoint.registers)
        self.memory = checkpoint.memory.copy()
        self.instructions_retired = checkpoint.instructions_retired
        self.halted = False
        self.invalidate_fetch_block()

    def invalidate_fetch_block(self) -> None:
        """Forget the ifetch-continuity marker.

        Called whenever execution discontinuously moves (checkpoint
        restore) or when instructions were fetched without an observer
        (a hook-less :meth:`run`), so the next observed run re-reports
        its first block instead of wrongly deduplicating it.
        """
        self._last_fetch = (0, -1)

    # -- single stepping ------------------------------------------------------

    def step(self) -> StepResult:
        """Execute exactly one instruction; return its :class:`StepResult`.

        The returned object is reused by subsequent calls.
        """
        result = self._step_result
        if self.halted:
            result.halted = True
            return result

        program = self.program
        regs = self.registers
        inst = program.instructions[self.pc]
        op = inst.opcode
        pc = self.pc
        next_pc = pc + 1
        taken = False
        mem_address = -1

        if op is Opcode.ADD:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] + regs[inst.rs2]) & _MASK64
        elif op is Opcode.ADDI:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] + inst.imm) & _MASK64
        elif op is Opcode.LOAD:
            mem_address = (regs[inst.rs1] + inst.imm) & _MASK64
            if inst.rd:
                regs[inst.rd] = self.memory.load(mem_address)
        elif op is Opcode.STORE:
            mem_address = (regs[inst.rs1] + inst.imm) & _MASK64
            self.memory.store(mem_address, regs[inst.rs2])
        elif op is Opcode.BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is Opcode.BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is Opcode.BLT:
            taken = to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is Opcode.BGE:
            taken = to_signed(regs[inst.rs1]) >= to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is Opcode.SUB:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] - regs[inst.rs2]) & _MASK64
        elif op is Opcode.MUL:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] * regs[inst.rs2]) & _MASK64
        elif op is Opcode.DIV:
            if inst.rd:
                divisor = regs[inst.rs2]
                regs[inst.rd] = regs[inst.rs1] // divisor if divisor else 0
        elif op is Opcode.AND:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2]
        elif op is Opcode.OR:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2]
        elif op is Opcode.XOR:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2]
        elif op is Opcode.SLL:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & _MASK64
        elif op is Opcode.SRL:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] >> (regs[inst.rs2] & 63)
        elif op is Opcode.SLT:
            if inst.rd:
                regs[inst.rd] = int(
                    to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
                )
        elif op is Opcode.ANDI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] & (inst.imm & _MASK64)
        elif op is Opcode.ORI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] | (inst.imm & _MASK64)
        elif op is Opcode.XORI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] ^ (inst.imm & _MASK64)
        elif op is Opcode.SLTI:
            if inst.rd:
                regs[inst.rd] = int(to_signed(regs[inst.rs1]) < inst.imm)
        elif op is Opcode.SLLI:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] << (inst.imm & 63)) & _MASK64
        elif op is Opcode.SRLI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] >> (inst.imm & 63)
        elif op is Opcode.LI:
            if inst.rd:
                regs[inst.rd] = inst.imm & _MASK64
        elif op is Opcode.JMP:
            taken = True
            next_pc = inst.target
        elif op is Opcode.CALL:
            taken = True
            regs[LINK_REGISTER] = next_pc
            next_pc = inst.target
        elif op is Opcode.CALLR:
            taken = True
            regs[LINK_REGISTER] = next_pc
            next_pc = regs[inst.rs1]
        elif op is Opcode.RET:
            taken = True
            next_pc = regs[LINK_REGISTER]
        elif op is Opcode.JR:
            taken = True
            next_pc = regs[inst.rs1]
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
            result.index = pc
            result.next_index = pc
            result.taken = False
            result.mem_address = -1
            result.halted = True
            self.instructions_retired += 1
            return result
        else:  # pragma: no cover - all opcodes handled above
            raise RuntimeError(f"unimplemented opcode {op!r}")

        self.pc = next_pc
        self.instructions_retired += 1
        result.index = pc
        result.next_index = next_pc
        result.taken = taken
        result.mem_address = mem_address
        result.halted = False
        return result

    # -- bulk execution -------------------------------------------------------

    def run(
        self,
        count: int,
        mem_hook=None,
        branch_hook=None,
        ifetch_hook=None,
        ifetch_block_bytes: int = 64,
    ) -> int:
        """Execute up to `count` instructions; return how many retired.

        Parameters
        ----------
        count:
            Maximum number of instructions to execute.
        mem_hook:
            Called as ``mem_hook(pc_index, next_pc_index, address, is_store)``
            for every LOAD/STORE.
        branch_hook:
            Called as ``branch_hook(pc_index, next_pc_index, inst, taken)``
            for every control-transfer instruction (conditional or not).
        ifetch_hook:
            Called as ``ifetch_hook(byte_address)`` whenever execution moves
            to a different `ifetch_block_bytes`-sized code block.  Repeated
            fetches within one block are filtered because they cannot change
            cache state; see DESIGN.md §2.  The filter carries across
            calls: a new call continuing in the block the previous
            observed call ended in does not re-report it (the controller
            invokes :meth:`run` once per phase, and a phase boundary is
            not a fetch).
        """
        executed = 0
        step = self.step
        program = self.program
        instruction_bytes = program.instruction_bytes
        code_base = program.code_base
        per_block = max(1, ifetch_block_bytes // instruction_bytes)
        stored_per_block, stored_block = self._last_fetch
        last_fetch_block = stored_block if stored_per_block == per_block else -1
        pc_before = -1

        while executed < count and not self.halted:
            pc_before = self.pc
            if ifetch_hook is not None:
                fetch_block = pc_before // per_block
                if fetch_block != last_fetch_block:
                    last_fetch_block = fetch_block
                    ifetch_hook(code_base + pc_before * instruction_bytes)
            result = step()
            executed += 1
            if result.halted:
                break
            if result.mem_address >= 0 and mem_hook is not None:
                mem_hook(
                    result.index, result.next_index,
                    result.mem_address,
                    program.instructions[result.index].is_store,
                )
            if branch_hook is not None:
                inst = program.instructions[result.index]
                if inst.is_control:
                    branch_hook(
                        result.index, result.next_index, inst, result.taken
                    )
        if executed:
            if ifetch_hook is not None:
                # The last executed instruction's block is, by induction,
                # the last one reported; remember it for the next phase.
                self._last_fetch = (per_block, pc_before // per_block)
            else:
                # Blocks were fetched unobserved; continuity is broken.
                self.invalidate_fetch_block()
        return executed
