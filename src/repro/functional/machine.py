"""The functional simulator.

The functional machine maintains architecturally correct state (registers,
PC, memory) regardless of how instructions are timed.  It plays three roles
in sampled simulation, mirroring the paper's §4:

1. *Cold* simulation — fast-forwarding between clusters while keeping
   architectural state correct.
2. The execution engine underneath *warm* simulation — warm-up methods
   attach hooks that observe memory references and branch outcomes.
3. The oracle underneath *hot* simulation — the timing core single-steps
   the functional machine and times each retired instruction.

Performance notes: the dispatch in :meth:`FunctionalMachine.run` is a flat
``if/elif`` chain on the opcode's integer value with all hot attributes
hoisted into locals, because this is the innermost loop of every
experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..isa import Opcode, Program, NUM_REGISTERS, LINK_REGISTER, STACK_POINTER
from .memory import Memory
from .predecode import predecode_program

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63

#: Environment variable selecting the bulk-execution engine used by
#: :meth:`FunctionalMachine.run`: any of ``off``/``0``/``scalar``/
#: ``false``/``no`` selects the per-step scalar reference loop,
#: everything else (including unset) the batched span interpreter.
BATCH_CORE_ENV_VAR = "REPRO_BATCH_CORE"

_SCALAR_SENTINELS = frozenset({"off", "0", "scalar", "false", "no"})


def batch_core_enabled() -> bool:
    """Resolve ``REPRO_BATCH_CORE`` (unset means batched)."""
    setting = os.environ.get(BATCH_CORE_ENV_VAR, "").strip().lower()
    return setting not in _SCALAR_SENTINELS


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & _SIGN_BIT else value


# Plain-int opcode values for the batched span interpreter: comparing a
# list element against a cached small int avoids the enum identity check
# and attribute traffic of the scalar chain.  Ordered here roughly by
# dynamic frequency in the nine workload generators.
_OP_ADDI = int(Opcode.ADDI)
_OP_ADD = int(Opcode.ADD)
_OP_LI = int(Opcode.LI)
_OP_SUB = int(Opcode.SUB)
_OP_MUL = int(Opcode.MUL)
_OP_AND = int(Opcode.AND)
_OP_OR = int(Opcode.OR)
_OP_XOR = int(Opcode.XOR)
_OP_SLL = int(Opcode.SLL)
_OP_SRL = int(Opcode.SRL)
_OP_SLT = int(Opcode.SLT)
_OP_ANDI = int(Opcode.ANDI)
_OP_ORI = int(Opcode.ORI)
_OP_XORI = int(Opcode.XORI)
_OP_SLTI = int(Opcode.SLTI)
_OP_SLLI = int(Opcode.SLLI)
_OP_SRLI = int(Opcode.SRLI)
_OP_DIV = int(Opcode.DIV)
_OP_NOP = int(Opcode.NOP)
_OP_LOAD = int(Opcode.LOAD)
_OP_STORE = int(Opcode.STORE)
_OP_BEQ = int(Opcode.BEQ)
_OP_BNE = int(Opcode.BNE)
_OP_BLT = int(Opcode.BLT)
_OP_BGE = int(Opcode.BGE)
_OP_JMP = int(Opcode.JMP)
_OP_JR = int(Opcode.JR)
_OP_CALL = int(Opcode.CALL)
_OP_CALLR = int(Opcode.CALLR)
_OP_RET = int(Opcode.RET)


def _divide_signed(dividend: int, divisor: int) -> int:
    """Truncating signed 64-bit division over unsigned register fields.

    Both operands are interpreted as two's complement; the quotient
    truncates toward zero (C/RISC semantics, not Python floor) and wraps
    into the unsigned field, so INT64_MIN / −1 yields INT64_MIN.
    Division by zero returns 0 (the ISA's defined result).
    """
    a = to_signed(dividend)
    b = to_signed(divisor)
    if b == 0:
        return 0
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1  # floor -> truncation for mixed-sign inexact results
    return quotient & _MASK64


@dataclass
class StepResult:
    """Everything the timing simulator needs to know about one instruction.

    A single instance is reused across steps to avoid per-instruction
    allocation; consumers must copy any field they want to keep.
    """

    index: int = 0          # instruction index executed
    next_index: int = 0     # architecturally correct next instruction index
    taken: bool = False     # for control instructions: was it taken?
    mem_address: int = -1   # effective byte address for LOAD/STORE, else -1
    halted: bool = False


@dataclass
class Checkpoint:
    """A full architectural snapshot (registers, PC, memory, counters).

    `halted` is part of the architectural state: a checkpoint taken
    after HALT must restore to a machine that stays halted instead of
    silently resuming execution past program end.
    """

    pc: int
    registers: list[int]
    memory: Memory
    instructions_retired: int = 0
    halted: bool = False
    extra: dict = field(default_factory=dict)


class FunctionalMachine:
    """Architectural-state interpreter for one :class:`Program`.

    Parameters
    ----------
    program:
        The workload image to execute.
    memory:
        Optional pre-initialised memory (workload generators seed arrays).
    batched:
        Bulk-execution engine for :meth:`run`: True selects the batched
        span interpreter (:meth:`run_batch`), False the per-step scalar
        reference loop (:meth:`run_scalar`).  None (the default) resolves
        ``REPRO_BATCH_CORE`` at construction, so the choice propagates
        into shard workers through their environment.  Both engines are
        bit-identical (tests/test_machine_batched.py).
    """

    def __init__(self, program: Program, memory: Memory | None = None,
                 batched: bool | None = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.batched = batch_core_enabled() if batched is None else bool(batched)
        self.registers: list[int] = [0] * NUM_REGISTERS
        self.registers[STACK_POINTER] = program.stack_base
        self.pc = program.entry
        self.halted = False
        self.instructions_retired = 0
        self._step_result = StepResult()
        #: Ifetch-continuity marker: ``(per_block, block)`` of the last
        #: instruction block fetched by an *observed* :meth:`run` (one
        #: with an ``ifetch_hook``).  Carried across calls so a phase
        #: boundary (warm-up prefix -> skip, skip -> skip) does not
        #: re-report a block the previous phase already fetched; see
        #: :meth:`invalidate_fetch_block` for when it resets.
        self._last_fetch: tuple[int, int] = (0, -1)

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Capture the full architectural state."""
        return Checkpoint(
            pc=self.pc,
            registers=list(self.registers),
            memory=self.memory.copy(),
            instructions_retired=self.instructions_retired,
            halted=self.halted,
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Restore state captured by :meth:`checkpoint`."""
        self.pc = checkpoint.pc
        self.registers = list(checkpoint.registers)
        self.memory = checkpoint.memory.copy()
        self.instructions_retired = checkpoint.instructions_retired
        self.halted = checkpoint.halted
        self.invalidate_fetch_block()

    def invalidate_fetch_block(self) -> None:
        """Forget the ifetch-continuity marker.

        Called whenever execution discontinuously moves (checkpoint
        restore) or when instructions were fetched without an observer
        (a hook-less :meth:`run`), so the next observed run re-reports
        its first block instead of wrongly deduplicating it.
        """
        self._last_fetch = (0, -1)

    # -- single stepping ------------------------------------------------------

    def step(self) -> StepResult:
        """Execute exactly one instruction; return its :class:`StepResult`.

        The returned object is reused by subsequent calls.
        """
        result = self._step_result
        if self.halted:
            result.halted = True
            return result

        program = self.program
        regs = self.registers
        inst = program.instructions[self.pc]
        op = inst.opcode
        pc = self.pc
        next_pc = pc + 1
        taken = False
        mem_address = -1

        if op is Opcode.ADD:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] + regs[inst.rs2]) & _MASK64
        elif op is Opcode.ADDI:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] + inst.imm) & _MASK64
        elif op is Opcode.LOAD:
            mem_address = (regs[inst.rs1] + inst.imm) & _MASK64
            if inst.rd:
                regs[inst.rd] = self.memory.load(mem_address)
        elif op is Opcode.STORE:
            mem_address = (regs[inst.rs1] + inst.imm) & _MASK64
            self.memory.store(mem_address, regs[inst.rs2])
        elif op is Opcode.BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is Opcode.BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is Opcode.BLT:
            taken = to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is Opcode.BGE:
            taken = to_signed(regs[inst.rs1]) >= to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is Opcode.SUB:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] - regs[inst.rs2]) & _MASK64
        elif op is Opcode.MUL:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] * regs[inst.rs2]) & _MASK64
        elif op is Opcode.DIV:
            if inst.rd:
                regs[inst.rd] = _divide_signed(regs[inst.rs1], regs[inst.rs2])
        elif op is Opcode.AND:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2]
        elif op is Opcode.OR:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2]
        elif op is Opcode.XOR:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2]
        elif op is Opcode.SLL:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & _MASK64
        elif op is Opcode.SRL:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] >> (regs[inst.rs2] & 63)
        elif op is Opcode.SLT:
            if inst.rd:
                regs[inst.rd] = int(
                    to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
                )
        elif op is Opcode.ANDI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] & (inst.imm & _MASK64)
        elif op is Opcode.ORI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] | (inst.imm & _MASK64)
        elif op is Opcode.XORI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] ^ (inst.imm & _MASK64)
        elif op is Opcode.SLTI:
            if inst.rd:
                regs[inst.rd] = int(to_signed(regs[inst.rs1]) < inst.imm)
        elif op is Opcode.SLLI:
            if inst.rd:
                regs[inst.rd] = (regs[inst.rs1] << (inst.imm & 63)) & _MASK64
        elif op is Opcode.SRLI:
            if inst.rd:
                regs[inst.rd] = regs[inst.rs1] >> (inst.imm & 63)
        elif op is Opcode.LI:
            if inst.rd:
                regs[inst.rd] = inst.imm & _MASK64
        elif op is Opcode.JMP:
            taken = True
            next_pc = inst.target
        elif op is Opcode.CALL:
            taken = True
            regs[LINK_REGISTER] = next_pc
            next_pc = inst.target
        elif op is Opcode.CALLR:
            taken = True
            regs[LINK_REGISTER] = next_pc
            next_pc = regs[inst.rs1]
        elif op is Opcode.RET:
            taken = True
            next_pc = regs[LINK_REGISTER]
        elif op is Opcode.JR:
            taken = True
            next_pc = regs[inst.rs1]
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
            result.index = pc
            result.next_index = pc
            result.taken = False
            result.mem_address = -1
            result.halted = True
            self.instructions_retired += 1
            return result
        else:  # pragma: no cover - all opcodes handled above
            raise RuntimeError(f"unimplemented opcode {op!r}")

        self.pc = next_pc
        self.instructions_retired += 1
        result.index = pc
        result.next_index = next_pc
        result.taken = taken
        result.mem_address = mem_address
        result.halted = False
        return result

    # -- bulk execution -------------------------------------------------------

    def run(
        self,
        count: int,
        mem_hook=None,
        branch_hook=None,
        ifetch_hook=None,
        ifetch_block_bytes: int = 64,
    ) -> int:
        """Execute up to `count` instructions; return how many retired.

        Dispatches to :meth:`run_batch` or :meth:`run_scalar` according
        to :attr:`batched`; the two engines produce bit-identical
        architectural state, hook-call sequences, and ifetch continuity.

        Parameters
        ----------
        count:
            Maximum number of instructions to execute.
        mem_hook:
            Called as ``mem_hook(pc_index, next_pc_index, address, is_store)``
            for every LOAD/STORE.
        branch_hook:
            Called as ``branch_hook(pc_index, next_pc_index, inst, taken)``
            for every control-transfer instruction (conditional or not).
        ifetch_hook:
            Called as ``ifetch_hook(byte_address)`` whenever execution moves
            to a different `ifetch_block_bytes`-sized code block.  Repeated
            fetches within one block are filtered because they cannot change
            cache state; see DESIGN.md §2.  The filter carries across
            calls: a new call continuing in the block the previous
            observed call ended in does not re-report it (the controller
            invokes :meth:`run` once per phase, and a phase boundary is
            not a fetch).
        """
        if self.batched:
            return self.run_batch(count, mem_hook, branch_hook, ifetch_hook,
                                  ifetch_block_bytes)
        return self.run_scalar(count, mem_hook, branch_hook, ifetch_hook,
                               ifetch_block_bytes)

    def run_scalar(
        self,
        count: int,
        mem_hook=None,
        branch_hook=None,
        ifetch_hook=None,
        ifetch_block_bytes: int = 64,
    ) -> int:
        """The per-step reference engine (see :meth:`run` for the contract).

        Every instruction goes through :meth:`step`; hooks fire inline.
        Kept verbatim as the semantic baseline the batched engine is
        differentially fuzzed against.
        """
        executed = 0
        step = self.step
        program = self.program
        instruction_bytes = program.instruction_bytes
        code_base = program.code_base
        per_block = max(1, ifetch_block_bytes // instruction_bytes)
        stored_per_block, stored_block = self._last_fetch
        last_fetch_block = stored_block if stored_per_block == per_block else -1
        pc_before = -1

        while executed < count and not self.halted:
            pc_before = self.pc
            if ifetch_hook is not None:
                fetch_block = pc_before // per_block
                if fetch_block != last_fetch_block:
                    last_fetch_block = fetch_block
                    ifetch_hook(code_base + pc_before * instruction_bytes)
            result = step()
            executed += 1
            if result.halted:
                break
            if result.mem_address >= 0 and mem_hook is not None:
                mem_hook(
                    result.index, result.next_index,
                    result.mem_address,
                    program.instructions[result.index].is_store,
                )
            if branch_hook is not None:
                inst = program.instructions[result.index]
                if inst.is_control:
                    branch_hook(
                        result.index, result.next_index, inst, result.taken
                    )
        if executed:
            if ifetch_hook is not None:
                # The last executed instruction's block is, by induction,
                # the last one reported; remember it for the next phase.
                self._last_fetch = (per_block, pc_before // per_block)
            else:
                # Blocks were fetched unobserved; continuity is broken.
                self.invalidate_fetch_block()
        return executed

    def run_batch(
        self,
        count: int,
        mem_hook=None,
        branch_hook=None,
        ifetch_hook=None,
        ifetch_block_bytes: int = 64,
    ) -> int:
        """Batched span engine (see :meth:`run` for the contract).

        Executes the predecoded program (:mod:`repro.functional.
        predecode`) in straight-line ALU/NOP spans: operand columns are
        indexed directly, no :class:`StepResult` is written, and ifetch
        block crossings within a span are computed arithmetically instead
        of being checked per instruction.  Execution falls back to
        :meth:`step` at every *boundary* instruction — memory references
        and control transfers, whose observation hooks must interleave
        with execution order, plus HALT — so all non-trivial semantics
        live in exactly one place.

        Hook-call sequences are identical to the scalar engine's: a span
        contains no memory or branch hooks by construction, so firing its
        block crossings in ascending pc order reproduces the interleaved
        scalar order exactly.
        """
        if count <= 0 or self.halted:
            return 0
        program = self.program
        decoded = predecode_program(program)
        step = self.step
        instructions = program.instructions
        instruction_bytes = program.instruction_bytes
        code_base = program.code_base
        per_block = max(1, ifetch_block_bytes // instruction_bytes)
        stored_per_block, stored_block = self._last_fetch
        last_fetch_block = stored_block if stored_per_block == per_block else -1
        regs = self.registers
        memory_load = self.memory.load
        memory_store = self.memory.store
        link_register = LINK_REGISTER
        ops = decoded.op_list
        rds = decoded.rd_list
        rs1s = decoded.rs1_list
        rs2s = decoded.rs2_list
        imms = decoded.imm_list
        targets = decoded.target_list
        span_end = decoded.span_end_list
        is_store_col = decoded.is_store
        is_control_col = decoded.is_control

        executed = 0
        last_pc = -1
        pc = self.pc
        while executed < count and not self.halted:
            end = span_end[pc]
            if end > pc:
                # ---- straight-line ALU/NOP span ---------------------------
                remaining = count - executed
                if end - pc > remaining:
                    end = pc + remaining
                if ifetch_hook is not None:
                    block = pc // per_block
                    if block != last_fetch_block:
                        ifetch_hook(code_base + pc * instruction_bytes)
                    crossing = (block + 1) * per_block
                    while crossing < end:
                        ifetch_hook(code_base + crossing * instruction_bytes)
                        crossing += per_block
                    last_fetch_block = (end - 1) // per_block
                i = pc
                while i < end:
                    op = ops[i]
                    if op == _OP_ADDI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (regs[rs1s[i]] + imms[i]) & _MASK64
                    elif op == _OP_ADD:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (regs[rs1s[i]] + regs[rs2s[i]]) & _MASK64
                    elif op == _OP_LI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = imms[i] & _MASK64
                    elif op == _OP_SUB:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (regs[rs1s[i]] - regs[rs2s[i]]) & _MASK64
                    elif op == _OP_MUL:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (regs[rs1s[i]] * regs[rs2s[i]]) & _MASK64
                    elif op == _OP_AND:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] & regs[rs2s[i]]
                    elif op == _OP_OR:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] | regs[rs2s[i]]
                    elif op == _OP_XOR:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] ^ regs[rs2s[i]]
                    elif op == _OP_SLLI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (regs[rs1s[i]] << (imms[i] & 63)) & _MASK64
                    elif op == _OP_SRLI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] >> (imms[i] & 63)
                    elif op == _OP_ANDI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] & (imms[i] & _MASK64)
                    elif op == _OP_ORI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] | (imms[i] & _MASK64)
                    elif op == _OP_XORI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] ^ (imms[i] & _MASK64)
                    elif op == _OP_SLT:
                        rd = rds[i]
                        if rd:
                            regs[rd] = int(
                                to_signed(regs[rs1s[i]])
                                < to_signed(regs[rs2s[i]])
                            )
                    elif op == _OP_SLTI:
                        rd = rds[i]
                        if rd:
                            regs[rd] = int(to_signed(regs[rs1s[i]]) < imms[i])
                    elif op == _OP_SLL:
                        rd = rds[i]
                        if rd:
                            regs[rd] = (
                                regs[rs1s[i]] << (regs[rs2s[i]] & 63)
                            ) & _MASK64
                    elif op == _OP_SRL:
                        rd = rds[i]
                        if rd:
                            regs[rd] = regs[rs1s[i]] >> (regs[rs2s[i]] & 63)
                    elif op == _OP_DIV:
                        rd = rds[i]
                        if rd:
                            regs[rd] = _divide_signed(
                                regs[rs1s[i]], regs[rs2s[i]]
                            )
                    elif op == _OP_NOP:
                        pass
                    else:  # pragma: no cover - spans hold only ALU/NOP ops
                        raise RuntimeError(
                            f"unimplemented opcode {Opcode(op)!r}"
                        )
                    i += 1
                executed += end - pc
                self.instructions_retired += end - pc
                last_pc = end - 1
                pc = end
                self.pc = pc
                continue

            # ---- boundary instruction -------------------------------------
            # Memory references and control transfers are inlined with
            # their hook calls in scalar order; HALT (and any instruction
            # whose operands overflowed the predecode columns) falls back
            # to step(), keeping its bookkeeping in one place.
            if ifetch_hook is not None:
                block = pc // per_block
                if block != last_fetch_block:
                    last_fetch_block = block
                    ifetch_hook(code_base + pc * instruction_bytes)
            op = ops[pc]
            if op == _OP_LOAD:
                address = (regs[rs1s[pc]] + imms[pc]) & _MASK64
                rd = rds[pc]
                if rd:
                    regs[rd] = memory_load(address)
                next_pc = pc + 1
                self.pc = next_pc
                self.instructions_retired += 1
                executed += 1
                last_pc = pc
                if mem_hook is not None:
                    mem_hook(pc, next_pc, address, False)
                pc = next_pc
                continue
            if op == _OP_STORE:
                address = (regs[rs1s[pc]] + imms[pc]) & _MASK64
                memory_store(address, regs[rs2s[pc]])
                next_pc = pc + 1
                self.pc = next_pc
                self.instructions_retired += 1
                executed += 1
                last_pc = pc
                if mem_hook is not None:
                    mem_hook(pc, next_pc, address, True)
                pc = next_pc
                continue
            if op == _OP_BEQ:
                taken = regs[rs1s[pc]] == regs[rs2s[pc]]
                next_pc = targets[pc] if taken else pc + 1
            elif op == _OP_BNE:
                taken = regs[rs1s[pc]] != regs[rs2s[pc]]
                next_pc = targets[pc] if taken else pc + 1
            elif op == _OP_BLT:
                taken = to_signed(regs[rs1s[pc]]) < to_signed(regs[rs2s[pc]])
                next_pc = targets[pc] if taken else pc + 1
            elif op == _OP_BGE:
                taken = to_signed(regs[rs1s[pc]]) >= to_signed(regs[rs2s[pc]])
                next_pc = targets[pc] if taken else pc + 1
            elif op == _OP_JMP:
                taken = True
                next_pc = targets[pc]
            elif op == _OP_CALL:
                taken = True
                regs[link_register] = pc + 1
                next_pc = targets[pc]
            elif op == _OP_CALLR:
                taken = True
                regs[link_register] = pc + 1
                next_pc = regs[rs1s[pc]]
            elif op == _OP_RET:
                taken = True
                next_pc = regs[link_register]
            elif op == _OP_JR:
                taken = True
                next_pc = regs[rs1s[pc]]
            else:
                # HALT, or an overflow-poisoned column: step() fallback.
                result = step()
                executed += 1
                last_pc = pc
                if result.halted:
                    break
                if result.mem_address >= 0 and mem_hook is not None:
                    mem_hook(
                        result.index, result.next_index,
                        result.mem_address,
                        is_store_col[result.index],
                    )
                if branch_hook is not None and is_control_col[result.index]:
                    branch_hook(
                        result.index, result.next_index,
                        instructions[result.index], result.taken,
                    )
                pc = self.pc
                continue
            self.pc = next_pc
            self.instructions_retired += 1
            executed += 1
            last_pc = pc
            if branch_hook is not None:
                branch_hook(pc, next_pc, instructions[pc], taken)
            pc = next_pc

        if executed:
            if ifetch_hook is not None:
                self._last_fetch = (per_block, last_pc // per_block)
            else:
                self.invalidate_fetch_block()
        return executed
