"""Functional (architectural-state) simulation."""

from .memory import Memory, WORD_BYTES
from .machine import FunctionalMachine, StepResult, Checkpoint, to_signed

__all__ = [
    "Memory",
    "WORD_BYTES",
    "FunctionalMachine",
    "StepResult",
    "Checkpoint",
    "to_signed",
]
