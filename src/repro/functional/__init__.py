"""Functional (architectural-state) simulation."""

from .memory import Memory, WORD_BYTES
from .machine import FunctionalMachine, StepResult, Checkpoint, to_signed
from .checkpoint import FunctionalCheckpoint

__all__ = [
    "Memory",
    "WORD_BYTES",
    "FunctionalMachine",
    "StepResult",
    "Checkpoint",
    "FunctionalCheckpoint",
    "to_signed",
]
