"""Classical cache-sampling techniques (paper §2 related work)."""

from .trace import ReferenceTrace, capture_trace
from .estimators import (
    MissRatioEstimate,
    full_trace_miss_ratio,
    time_sampling_estimate,
    set_sampling_estimate,
)

__all__ = [
    "ReferenceTrace",
    "capture_trace",
    "MissRatioEstimate",
    "full_trace_miss_ratio",
    "time_sampling_estimate",
    "set_sampling_estimate",
]
