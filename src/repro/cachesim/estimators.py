"""Classical cache-sampling estimators (paper §2 related work).

Three families the paper builds on:

- **Time sampling** (Laha/Patel/Iyer 1988; Fu/Patel 1994): extract
  time-contiguous reference windows; the cold-start bias inside each
  window is handled by either counting everything (`cold`), or by the
  *primed-set* rule — "a set in the cache is considered primed after it
  has been filled with unique references.  Only information gathered
  from primed sets are used to record measurements."
- **Set sampling** (Kessler/Hill/Wood 1994; Liu/Peir 1993): a stratified
  design — simulate only a subset of cache sets over the whole trace;
  references to other sets are ignored.
- **Full-trace simulation** as ground truth.

These estimators operate on :class:`~repro.cachesim.trace.ReferenceTrace`
objects and a single :class:`~repro.cache.Cache`, independent of the
processor model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache import Cache, CacheConfig
from ..sampling.statistics import SampleEstimate, cluster_estimate
from .trace import ReferenceTrace


def full_trace_miss_ratio(trace: ReferenceTrace,
                          config: CacheConfig) -> float:
    """Ground truth: simulate every reference."""
    cache = Cache(config)
    for address, is_write in trace:
        cache.access(address, is_write)
    return cache.stats.miss_rate()


@dataclass
class MissRatioEstimate:
    """A sampled miss-ratio estimate with per-sample detail."""

    method: str
    estimate: SampleEstimate
    samples: list[float] = field(default_factory=list)
    references_simulated: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.estimate.mean

    def relative_error(self, true_ratio: float) -> float:
        if true_ratio == 0:
            raise ValueError("true ratio must be non-zero")
        return abs(true_ratio - self.miss_ratio) / true_ratio


def time_sampling_estimate(
    trace: ReferenceTrace,
    config: CacheConfig,
    num_samples: int,
    sample_length: int,
    seed: int = 0,
    primed_sets: bool = False,
) -> MissRatioEstimate:
    """Estimate the miss ratio from randomly placed reference windows.

    With `primed_sets=False` every access in a window is measured from a
    cold cache — the classical cold-start overestimate.  With
    `primed_sets=True`, Laha's rule applies: a set only contributes
    measurements once `associativity` distinct lines have mapped to it
    within the window.
    """
    if num_samples * sample_length > len(trace):
        raise ValueError("sample design larger than the trace")
    rng = np.random.default_rng(seed)
    max_start = len(trace) - sample_length
    starts = sorted(
        int(s) for s in rng.choice(max_start + 1, size=num_samples,
                                   replace=False)
    )

    samples: list[float] = []
    simulated = 0
    for start in starts:
        window = trace.slice(start, sample_length)
        cache = Cache(config)
        fill_count = [0] * cache.num_sets
        measured = 0
        misses = 0
        for address, is_write in window:
            set_index, _tag = cache.split_address(address)
            was_present = cache.probe(address)
            result = cache.access(address, is_write)
            simulated += 1
            if primed_sets:
                if not was_present:
                    fill_count[set_index] += 1
                if fill_count[set_index] < cache.associativity:
                    continue  # set not yet primed: discard measurement
            measured += 1
            if not result.hit:
                misses += 1
        if measured:
            samples.append(misses / measured)
    if not samples:
        raise RuntimeError(
            "no primed measurements: windows too short for this geometry"
        )
    return MissRatioEstimate(
        method="time-primed" if primed_sets else "time-cold",
        estimate=cluster_estimate(samples),
        samples=samples,
        references_simulated=simulated,
    )


def set_sampling_estimate(
    trace: ReferenceTrace,
    config: CacheConfig,
    num_sets_sampled: int,
    seed: int = 0,
) -> MissRatioEstimate:
    """Estimate the miss ratio by simulating a random subset of sets.

    A form of stratified sampling (paper §2): the chosen sets see every
    reference that maps to them across the *whole* trace, so there is no
    cold-start problem beyond the compulsory misses the full simulation
    would also pay; the error is purely sampling error across sets.
    """
    cache = Cache(config)
    if not 0 < num_sets_sampled <= cache.num_sets:
        raise ValueError("num_sets_sampled out of range")
    rng = np.random.default_rng(seed)
    chosen = set(
        int(s) for s in rng.choice(cache.num_sets, size=num_sets_sampled,
                                   replace=False)
    )

    accesses = {index: 0 for index in chosen}
    misses = {index: 0 for index in chosen}
    simulated = 0
    for address, is_write in trace:
        set_index, _tag = cache.split_address(address)
        if set_index not in chosen:
            continue
        result = cache.access(address, is_write)
        simulated += 1
        accesses[set_index] += 1
        if not result.hit:
            misses[set_index] += 1

    samples = [
        misses[index] / accesses[index]
        for index in chosen if accesses[index]
    ]
    if not samples:
        raise RuntimeError("no references mapped to the sampled sets")
    return MissRatioEstimate(
        method="set-sampling",
        estimate=cluster_estimate(samples),
        samples=samples,
        references_simulated=simulated,
    )
