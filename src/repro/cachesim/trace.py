"""Memory-reference traces for standalone cache-sampling studies.

The paper's §2 grounds sampled processor simulation in the older
cache-sampling literature (Laha, Fu, Kessler, Wood).  Those techniques
operate on address traces rather than live execution; this module
captures such traces from the synthetic workloads so the classical
estimators in :mod:`repro.cachesim.estimators` can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import Workload


@dataclass
class ReferenceTrace:
    """A flat data-reference trace: parallel (address, is_write) lists."""

    workload_name: str
    addresses: list[int]
    writes: list[bool]

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return zip(self.addresses, self.writes)

    def slice(self, start: int, length: int) -> "ReferenceTrace":
        """A contiguous sub-trace (used by time sampling)."""
        return ReferenceTrace(
            workload_name=self.workload_name,
            addresses=self.addresses[start:start + length],
            writes=self.writes[start:start + length],
        )


def capture_trace(workload: Workload, num_references: int,
                  skip_instructions: int = 0) -> ReferenceTrace:
    """Record `num_references` data references from a workload.

    `skip_instructions` fast-forwards past initialisation first.
    """
    machine = workload.make_machine()
    if skip_instructions:
        machine.run(skip_instructions)
    addresses: list[int] = []
    writes: list[bool] = []

    def mem_hook(pc, next_pc, address, is_store):
        addresses.append(address)
        writes.append(is_store)

    # Data references arrive at a bounded rate (>5% of instructions for
    # every built-in workload), so cap the instruction budget generously.
    budget = num_references * 64
    while len(addresses) < num_references and budget > 0:
        chunk = min(budget, 65_536)
        executed = machine.run(chunk, mem_hook=mem_hook)
        budget -= executed
        if executed < chunk:
            break
    del addresses[num_references:]
    del writes[num_references:]
    if len(addresses) < num_references:
        raise RuntimeError(
            f"workload produced only {len(addresses)} references"
        )
    return ReferenceTrace(
        workload_name=workload.name, addresses=addresses, writes=writes,
    )
