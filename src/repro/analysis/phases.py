"""Per-position IPC profiles: the phase behaviour behind sampling error.

Cluster sampling's variance — and SimPoint's entire premise — comes from
IPC varying along the instruction stream.  This module measures that
variation directly: one continuous detailed simulation, reported as a
series of per-window IPCs.  (Windows share all microarchitectural state;
only the cycle accounting is segmented, which the controller tests show
perturbs IPC by under 2%.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..sampling.controller import SimulatorConfigs, steady_state_prefix
from ..workloads import Workload
from ..timing import TimingSimulator


@dataclass
class IPCProfile:
    """IPC per consecutive window of one workload's execution."""

    workload_name: str
    window_size: int
    ipcs: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.ipcs) / len(self.ipcs) if self.ipcs else 0.0

    @property
    def coefficient_of_variation(self) -> float:
        """Relative spread of per-window IPC (phase-variability score)."""
        if len(self.ipcs) < 2 or self.mean == 0:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.ipcs) / (
            len(self.ipcs) - 1
        )
        return (variance ** 0.5) / mean

    def extremes(self) -> tuple[int, int]:
        """(index of slowest window, index of fastest window)."""
        if not self.ipcs:
            raise ValueError("empty profile")
        slowest = min(range(len(self.ipcs)), key=self.ipcs.__getitem__)
        fastest = max(range(len(self.ipcs)), key=self.ipcs.__getitem__)
        return slowest, fastest

    def sparkline(self, width: int = 60) -> str:
        """A terminal-friendly rendering of the profile (no plotting
        dependency; eight block glyphs scaled to the IPC range)."""
        if not self.ipcs:
            return ""
        glyphs = "▁▂▃▄▅▆▇█"
        stride = max(1, len(self.ipcs) // width)
        values = [
            sum(self.ipcs[i:i + stride]) / len(self.ipcs[i:i + stride])
            for i in range(0, len(self.ipcs), stride)
        ]
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        return "".join(
            glyphs[min(7, int((value - low) / span * 8))]
            for value in values
        )


def measure_ipc_profile(
    workload: Workload,
    total_instructions: int,
    window_size: int,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
) -> IPCProfile:
    """Profile `total_instructions` of `workload` in `window_size` chunks."""
    if window_size <= 0 or total_instructions < window_size:
        raise ValueError("need at least one full window")
    configs = configs if configs is not None else SimulatorConfigs()
    machine = workload.make_machine()
    hierarchy = MemoryHierarchy(configs.hierarchy)
    predictor = BranchPredictor(configs.predictor)
    timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
    steady_state_prefix(machine, hierarchy, predictor, warmup_prefix)

    profile = IPCProfile(workload_name=workload.name,
                         window_size=window_size)
    for _window in range(total_instructions // window_size):
        result = timing.run(window_size)
        profile.ipcs.append(result.ipc)
        if result.instructions < window_size:
            break
    return profile
