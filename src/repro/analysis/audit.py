"""Accuracy audit: per-cluster bias attribution against a warmed reference.

The paper's argument decomposes a sampled estimate's error into two
independent components (§2): *sampling* bias — the clusters chosen do
not perfectly represent the population, shared by every warm-up method —
and *non-sampling (cold-start)* bias — the reconstructed
microarchitectural state at each cluster entry differs from the state a
perfectly warmed run would carry.  PR 2's telemetry observes only cost;
this module makes the accuracy side continuously observable:

- :func:`reference_trajectory_for` runs the workload once under the
  SMARTS reference (full functional warming, the paper's "perfect
  warm-up" proxy) through a loop that mirrors
  :meth:`~repro.sampling.controller.SampledSimulator.run` exactly, and
  captures the complete microarchitectural state at every cluster entry
  plus each cluster's reference IPC and the population's true IPC.  The
  trajectory is deterministic, picklable, and cached — in-process and,
  via :mod:`repro.harness.cache`, on disk — so auditing a whole method
  matrix pays for the reference once.
- :class:`AuditProbe` hangs off the controller loop behind
  ``REPRO_AUDIT``: at each cluster boundary it diffs the live
  reconstructed state against the reference state (cache tag and
  LRU-rank agreement per level, PHT counter/prediction agreement and
  the §3.2 inference-table ambiguity census, BTB and RAS agreement) and
  attributes the cluster's IPC error into
  ``cold_start_error = ipc - ref_ipc`` (what reconstruction cost us) and
  ``sampling_error = ref_ipc - true_ipc`` (what cluster placement cost
  us); the two telescope to the cluster's total error against truth.
  Records ride the normal telemetry session (``"type": "audit"``), so
  they merge deterministically across the parallel engine and contain
  no timing or source-representation fields — the audit JSON is
  bit-for-bit identical between raw and compacted log sources and
  between serial and parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..harness.cache import cache_key, resolve_cache
from ..sampling.controller import (
    SimulatorConfigs,
    build_simulation,
    measure_true_ipc,
)
from ..sampling.pipeline import cluster_geometry
from ..sampling.regimen import SamplingRegimen
from ..telemetry import PHASE_AUDIT, RECORD_AUDIT
from ..warmup.base import SimulationContext
from ..warmup.fixed_period import SmartsWarmup
from ..workloads import Workload
from .fidelity import _jaccard, _ratio

#: Cache levels audited, in report order.
CACHE_LEVELS = ("l1i", "l1d", "l2")

#: Census keys produced by ``ReverseBranchReconstructor.inference_census``;
#: audited methods without an on-demand PHT engine report them as None.
CENSUS_KEYS = (
    "pht_entries_mentioned",
    "pht_exact",
    "pht_ambiguous_two",
    "pht_ambiguous_three",
    "pht_stale",
    "pht_ambiguity_mass",
)


@dataclass(frozen=True)
class ReferenceState:
    """Perfectly warmed microarchitectural state at one cluster entry.

    Captured after the reference has skipped the gap (with full warming)
    but before the detailed ramp + cluster execute — the same boundary
    at which the controller's probe diffs the audited method.  All
    fields are plain tuples/ints so the trajectory pickles unchanged
    through the result cache and across worker processes.
    """

    cluster_index: int
    start: int
    #: level name -> Cache.state_fingerprint() (per-set MRU->LRU tags).
    cache_fingerprints: dict[str, tuple]
    pht_counters: tuple[int, ...]
    ghr: int
    btb_tags: tuple
    btb_targets: tuple
    ras_from_top: tuple[int, ...]
    #: The reference's measured IPC for this cluster (same ramp/measure
    #: window as the audited run).
    ipc: float


@dataclass(frozen=True)
class ReferenceTrajectory:
    """One workload's reference states, reference IPCs, and true IPC."""

    workload_name: str
    true_ipc: float
    states: tuple[ReferenceState, ...]


def compute_reference_trajectory(
    workload: Workload,
    regimen: SamplingRegimen,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
    detail_ramp: int = 0,
) -> ReferenceTrajectory:
    """Run the SMARTS reference and capture state at every cluster entry.

    The loop replicates the controller's ramp-borrowing arithmetic
    exactly (`ramp` borrows from the end of the gap, `measure_after`
    excludes it from the IPC), so a SMARTS run audited against this
    trajectory scores perfect agreement and zero cold-start error —
    the self-consistency test the audit suite asserts.
    """
    configs = configs if configs is not None else SimulatorConfigs()
    stack = build_simulation(workload, configs, warmup_prefix=warmup_prefix)
    hierarchy = stack.hierarchy
    predictor = stack.predictor
    reference = SmartsWarmup()
    reference.bind(SimulationContext(
        machine=stack.machine, hierarchy=hierarchy, predictor=predictor,
        regimen=regimen,
    ))

    states = []
    cluster_size = regimen.cluster_size
    position = 0
    for index, cluster_start in enumerate(regimen.cluster_starts()):
        ramp, gap = cluster_geometry(position, cluster_start, detail_ramp)
        if gap > 0:
            reference.skip(gap)
        position = cluster_start - ramp
        reference.pre_cluster()
        captured = _capture_state(index, cluster_start, hierarchy, predictor)
        result = stack.timing.run(cluster_size + ramp, measure_after=ramp)
        reference.post_cluster()
        # Mirror the controller loop: the hot cluster fetched blocks
        # outside machine.run, so the ifetch-continuity marker is stale.
        stack.machine.invalidate_fetch_block()
        position += result.instructions
        states.append(ReferenceState(ipc=result.ipc, **captured))

    true_run = measure_true_ipc(
        workload, regimen.total_instructions, configs,
        warmup_prefix=warmup_prefix,
    )
    return ReferenceTrajectory(
        workload_name=workload.name,
        true_ipc=true_run.ipc,
        states=tuple(states),
    )


def _capture_state(index: int, start: int, hierarchy: MemoryHierarchy,
                   predictor: BranchPredictor) -> dict:
    return {
        "cluster_index": index,
        "start": start,
        "cache_fingerprints": {
            level: getattr(hierarchy, level).state_fingerprint()
            for level in CACHE_LEVELS
        },
        "pht_counters": tuple(predictor.pht.counters),
        "ghr": predictor.pht.history,
        "btb_tags": tuple(predictor.btb.tags),
        "btb_targets": tuple(predictor.btb.targets),
        "ras_from_top": tuple(predictor.ras.contents_from_top()),
    }


#: In-process memo: trajectory computation is the audit's only expensive
#: step, and one matrix audits many methods against the same reference.
_TRAJECTORY_MEMO: dict[str, ReferenceTrajectory] = {}


def reference_trajectory_for(
    workload: Workload,
    regimen: SamplingRegimen,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
    detail_ramp: int = 0,
    cache=None,
) -> ReferenceTrajectory:
    """Memoised/cached :func:`compute_reference_trajectory`.

    `cache` follows :func:`repro.harness.cache.resolve_cache` semantics:
    None consults ``REPRO_RESULT_CACHE``.  The key covers the full run
    identity (workload, regimen, prefix, ramp, configs, code digest), so
    worker processes and later sessions share one reference run.
    """
    configs = configs if configs is not None else SimulatorConfigs()
    key = cache_key(
        "audit-ref", workload.name,
        {"regimen": regimen, "warmup_prefix": warmup_prefix,
         "detail_ramp": detail_ramp},
        configs,
    )
    trajectory = _TRAJECTORY_MEMO.get(key)
    if trajectory is not None:
        return trajectory
    store = cache if cache is not None else resolve_cache()
    if store is not None:
        trajectory = store.get(key)
        if trajectory is not None:
            _TRAJECTORY_MEMO[key] = trajectory
            return trajectory
    trajectory = compute_reference_trajectory(
        workload, regimen, configs,
        warmup_prefix=warmup_prefix, detail_ramp=detail_ramp,
    )
    _TRAJECTORY_MEMO[key] = trajectory
    if store is not None:
        store.put(key, trajectory)
    return trajectory


def _diff_cache(cache, reference_fingerprint: tuple) -> tuple[float, float]:
    """(tag agreement, LRU-rank agreement) of one cache vs the reference.

    Tag agreement is the Jaccard overlap of resident (set, tag) pairs —
    position within the set does not matter.  LRU-rank agreement is the
    stricter positional score: the fraction of occupied (set, rank)
    slots holding the same tag on both sides, so replacement-order
    divergence is visible even when the resident lines agree.
    """
    fingerprint = cache.state_fingerprint()
    lines = {
        (set_index, tag)
        for set_index, row in enumerate(fingerprint)
        for tag in row if tag is not None
    }
    reference_lines = {
        (set_index, tag)
        for set_index, row in enumerate(reference_fingerprint)
        for tag in row if tag is not None
    }
    matches = 0
    occupied = 0
    for row, reference_row in zip(fingerprint, reference_fingerprint):
        for tag, reference_tag in zip(row, reference_row):
            if tag is None and reference_tag is None:
                continue
            occupied += 1
            if tag == reference_tag:
                matches += 1
    return _jaccard(lines, reference_lines), _ratio(matches, occupied)


def diff_against_reference(hierarchy: MemoryHierarchy,
                           predictor: BranchPredictor,
                           reference: ReferenceState) -> dict:
    """Score the live state against one reference cluster-entry state."""
    metrics: dict = {}
    for level in CACHE_LEVELS:
        tag_agreement, lru_agreement = _diff_cache(
            getattr(hierarchy, level), reference.cache_fingerprints[level]
        )
        metrics[f"{level}_tag_agreement"] = tag_agreement
        metrics[f"{level}_lru_agreement"] = lru_agreement

    counters = predictor.pht.counters
    reference_counters = reference.pht_counters
    total = len(reference_counters)
    equal = sum(
        1 for value, truth in zip(counters, reference_counters)
        if value == truth
    )
    same_prediction = sum(
        1 for value, truth in zip(counters, reference_counters)
        if (value >= 2) == (truth >= 2)
    )
    metrics["pht_counter_agreement"] = _ratio(equal, total)
    metrics["pht_prediction_agreement"] = _ratio(same_prediction, total)
    metrics["ghr_match"] = predictor.pht.history == reference.ghr

    btb = predictor.btb
    btb_equal = sum(
        1 for entry in range(btb.entries)
        if btb.tags[entry] == reference.btb_tags[entry]
        and btb.targets[entry] == reference.btb_targets[entry]
    )
    metrics["btb_agreement"] = _ratio(btb_equal, btb.entries)

    ras = tuple(predictor.ras.contents_from_top())
    reference_ras = reference.ras_from_top
    if not ras and not reference_ras:
        metrics["ras_agreement"] = 1.0
    else:
        ras_matches = sum(
            1 for mine, truth in zip(ras, reference_ras) if mine == truth
        )
        metrics["ras_agreement"] = _ratio(
            ras_matches, max(len(ras), len(reference_ras))
        )
    top = ras[0] if ras else None
    reference_top = reference_ras[0] if reference_ras else None
    metrics["ras_top_match"] = top == reference_top
    return metrics


class AuditProbe:
    """Cluster-boundary divergence probe driven by the controller loop.

    Built once per audited run; :meth:`before_cluster` captures the
    state diff and the PHT inference census at cluster entry (after the
    method's eager reconstruction, with pending on-demand work finalised
    first — finalisation is behaviour-neutral: drained values are
    identical to what in-cluster probes would reconstruct), and
    :meth:`after_cluster` completes the record with the error
    attribution once the cluster's IPC is known.  All probe work is
    charged to the ``audit`` phase timer, keeping the paper's three-
    phase cost split clean.
    """

    def __init__(self, trajectory: ReferenceTrajectory, hierarchy,
                 predictor, telemetry) -> None:
        self.trajectory = trajectory
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.telemetry = telemetry
        #: Reference states keyed by cluster index rather than position:
        #: a shard worker receives a single-state trajectory carrying
        #: only its own cluster, and probes it under the true index.
        self._states = {
            state.cluster_index: state for state in trajectory.states
        }
        self._partial: dict[int, dict] = {}

    @classmethod
    def for_run(cls, simulator, hierarchy, predictor,
                telemetry) -> "AuditProbe":
        """Build a probe for one controller run (reference is cached)."""
        trajectory = reference_trajectory_for(
            simulator.workload, simulator.regimen, simulator.configs,
            warmup_prefix=simulator.warmup_prefix,
            detail_ramp=simulator.detail_ramp,
        )
        return cls(trajectory, hierarchy, predictor, telemetry)

    def before_cluster(self, index: int, method) -> None:
        """Diff reconstructed state at cluster entry (post pre_cluster)."""
        with self.telemetry.phase(PHASE_AUDIT):
            census = None
            take_census = getattr(method, "audit_census", None)
            if take_census is not None:
                # The census must precede finalisation: it reads the armed
                # on-demand engine, which a drain consumes.
                census = take_census()
            method.finalize_pending()
            reference = self._states[index]
            metrics = diff_against_reference(
                self.hierarchy, self.predictor, reference
            )
            for key in CENSUS_KEYS:
                metrics[key] = None if census is None else census[key]
            self._partial[index] = metrics

    def after_cluster(self, index: int, method, ipc: float) -> None:
        """Complete and emit the audit record once the IPC is known."""
        with self.telemetry.phase(PHASE_AUDIT):
            metrics = self._partial.pop(index)
            reference = self._states[index]
            record = {
                "type": RECORD_AUDIT,
                "workload": self.trajectory.workload_name,
                "method": method.name,
                "cluster": index,
                "start": reference.start,
                **metrics,
                "ipc": ipc,
                "ref_ipc": reference.ipc,
                "true_ipc": self.trajectory.true_ipc,
                "cold_start_error": ipc - reference.ipc,
                "sampling_error": reference.ipc - self.trajectory.true_ipc,
            }
            telemetry = self.telemetry
            telemetry.emit(record)
            telemetry.count("audit.clusters_probed")
            for name in ("l1d_tag_agreement", "l2_tag_agreement",
                         "pht_counter_agreement", "btb_agreement",
                         "ras_agreement"):
                telemetry.observe(f"audit.{name}", record[name])
            telemetry.observe("audit.cold_start_error",
                              record["cold_start_error"])
            telemetry.observe("audit.sampling_error",
                              record["sampling_error"])
            if record["pht_ambiguity_mass"] is not None:
                telemetry.count("audit.pht_exact", record["pht_exact"])
                telemetry.count(
                    "audit.pht_ambiguous",
                    record["pht_ambiguous_two"]
                    + record["pht_ambiguous_three"],
                )
                telemetry.count("audit.pht_stale", record["pht_stale"])
                telemetry.observe("audit.pht_ambiguity_mass",
                                  record["pht_ambiguity_mass"])
