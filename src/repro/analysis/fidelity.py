"""State-level warm-up fidelity analysis.

IPC error is the paper's end metric, but the mechanism is state: how much
of the cache and branch-predictor contents does a warm-up method get
right at each cluster entry?  This module runs a method side by side
with a SMARTS reference over identical instruction streams and scores
the microarchitectural state at every cluster boundary:

- per-cache Jaccard overlap of resident line addresses,
- fraction of PHT counters that agree exactly,
- fraction of agreeing counters among entries whose *prediction*
  (taken/not-taken boundary) matters,
- GHR equality, BTB entry agreement, RAS top-of-stack equality.

The diagnosis behind Figures 5-7: cache overlap tracks IPC accuracy far
more tightly than predictor agreement does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..sampling.controller import SimulatorConfigs, steady_state_prefix
from ..sampling.regimen import SamplingRegimen
from ..timing import TimingSimulator
from ..warmup.base import SimulationContext, WarmupMethod
from ..warmup.fixed_period import SmartsWarmup
from ..workloads import Workload


@dataclass
class StateFidelity:
    """State agreement between a method and the SMARTS reference at one
    cluster boundary."""

    cluster_index: int
    start_instruction: int
    l1i_overlap: float
    l1d_overlap: float
    l2_overlap: float
    counter_agreement: float
    prediction_agreement: float
    ghr_match: bool
    btb_agreement: float
    ras_top_match: bool


@dataclass
class FidelityReport:
    """Per-cluster fidelity records plus aggregate means."""

    workload_name: str
    method_name: str
    records: list[StateFidelity] = field(default_factory=list)

    def mean(self, attribute: str) -> float:
        if not self.records:
            return 0.0
        values = [getattr(record, attribute) for record in self.records]
        return sum(float(v) for v in values) / len(values)

    def summary(self) -> dict:
        return {
            attribute: self.mean(attribute)
            for attribute in (
                "l1i_overlap", "l1d_overlap", "l2_overlap",
                "counter_agreement", "prediction_agreement",
                "ghr_match", "btb_agreement", "ras_top_match",
            )
        }


def _jaccard(a: set, b: set) -> float:
    """Jaccard similarity, with two empty sets defined as identical (1.0).

    An empty cache compared against an empty cache has no disagreement
    to report — the vacuous case scores perfect agreement, consistently
    with :func:`_ratio` below.
    """
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def _ratio(numerator: float, denominator: float) -> float:
    """Agreement ratio with the vacuous case (nothing to compare) as 1.0."""
    if denominator == 0:
        return 1.0
    return numerator / denominator


def _compare_states(
    cluster_index: int,
    start: int,
    hierarchy: MemoryHierarchy,
    predictor: BranchPredictor,
    reference_hierarchy: MemoryHierarchy,
    reference_predictor: BranchPredictor,
) -> StateFidelity:
    counters = predictor.pht.counters
    reference_counters = reference_predictor.pht.counters
    total = len(counters)
    equal = sum(
        1 for value, truth in zip(counters, reference_counters)
        if value == truth
    )
    same_prediction = sum(
        1 for value, truth in zip(counters, reference_counters)
        if (value >= 2) == (truth >= 2)
    )
    btb_total = predictor.btb.entries
    btb_equal = sum(
        1 for entry in range(btb_total)
        if predictor.btb.tags[entry] == reference_predictor.btb.tags[entry]
        and predictor.btb.targets[entry]
        == reference_predictor.btb.targets[entry]
    )
    return StateFidelity(
        cluster_index=cluster_index,
        start_instruction=start,
        l1i_overlap=_jaccard(hierarchy.l1i.contents(),
                             reference_hierarchy.l1i.contents()),
        l1d_overlap=_jaccard(hierarchy.l1d.contents(),
                             reference_hierarchy.l1d.contents()),
        l2_overlap=_jaccard(hierarchy.l2.contents(),
                            reference_hierarchy.l2.contents()),
        counter_agreement=_ratio(equal, total),
        prediction_agreement=_ratio(same_prediction, total),
        ghr_match=predictor.pht.history == reference_predictor.pht.history,
        btb_agreement=_ratio(btb_equal, btb_total),
        ras_top_match=predictor.ras.peek() == reference_predictor.ras.peek(),
    )


def measure_state_fidelity(
    workload: Workload,
    regimen: SamplingRegimen,
    method: WarmupMethod,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
) -> FidelityReport:
    """Score `method`'s warmed state against SMARTS at every cluster.

    Both pipelines execute the identical instruction stream (same
    program, same seeds), so any state difference is purely the warm-up
    policy's doing.  The comparison happens *after* the method's eager
    reconstruction (pre_cluster) and, for on-demand methods, after the
    cluster has run — so lazily reconstructed entries are also scored.
    """
    configs = configs if configs is not None else SimulatorConfigs()

    def make_stack(warmup_method):
        machine = workload.make_machine()
        hierarchy = MemoryHierarchy(configs.hierarchy)
        predictor = BranchPredictor(configs.predictor)
        timing = TimingSimulator(machine, hierarchy, predictor,
                                 configs.core)
        steady_state_prefix(machine, hierarchy, predictor, warmup_prefix)
        warmup_method.bind(SimulationContext(
            machine=machine, hierarchy=hierarchy, predictor=predictor,
            regimen=regimen,
        ))
        return machine, hierarchy, predictor, timing

    machine, hierarchy, predictor, timing = make_stack(method)
    reference = SmartsWarmup()
    (ref_machine, ref_hierarchy, ref_predictor,
     ref_timing) = make_stack(reference)

    report = FidelityReport(
        workload_name=workload.name, method_name=method.name,
    )
    position = 0
    for cluster_index, cluster_start in enumerate(regimen.cluster_starts()):
        gap = cluster_start - position
        if gap > 0:
            method.skip(gap)
            reference.skip(gap)
        position = cluster_start
        hook = method.pre_cluster()
        reference.pre_cluster()
        # Score at cluster *entry*: the state hot execution will consume.
        # On-demand repairs are finalised first so they are visible.
        method.finalize_pending()
        report.records.append(_compare_states(
            cluster_index, cluster_start,
            hierarchy, predictor, ref_hierarchy, ref_predictor,
        ))
        timing.run(regimen.cluster_size, pre_branch_hook=hook)
        ref_timing.run(regimen.cluster_size)
        method.post_cluster()
        reference.post_cluster()
        position += regimen.cluster_size
    return report
