"""Analysis tools: warm-up fidelity scoring and IPC phase profiles."""

from .fidelity import (
    StateFidelity,
    FidelityReport,
    measure_state_fidelity,
)
from .phases import (
    IPCProfile,
    measure_ipc_profile,
)

__all__ = [
    "StateFidelity",
    "FidelityReport",
    "measure_state_fidelity",
    "IPCProfile",
    "measure_ipc_profile",
]
