"""Analysis tools: fidelity scoring, IPC profiles, and accuracy audits."""

from .audit import (
    AuditProbe,
    ReferenceState,
    ReferenceTrajectory,
    compute_reference_trajectory,
    diff_against_reference,
    reference_trajectory_for,
)
from .fidelity import (
    StateFidelity,
    FidelityReport,
    measure_state_fidelity,
)
from .phases import (
    IPCProfile,
    measure_ipc_profile,
)

__all__ = [
    "StateFidelity",
    "FidelityReport",
    "measure_state_fidelity",
    "IPCProfile",
    "measure_ipc_profile",
    "AuditProbe",
    "ReferenceState",
    "ReferenceTrajectory",
    "compute_reference_trajectory",
    "diff_against_reference",
    "reference_trajectory_for",
]
