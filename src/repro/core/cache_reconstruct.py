"""Reverse cache reconstruction (paper §3.1, Figure 2).

"Immediately before the next cluster, the reference stream is scanned in
reverse order and the cache state is updated.  Temporal locality is
exploited by applying updates to the cache for only those references that
would have affected the final state."

The per-set mechanics (reconstructed bits, LRU ranking of reconstructed
blocks, stale-LRU victim selection) live in
:meth:`repro.cache.Cache.reconstruct_reference`; this module drives the
reverse scan across the hierarchy: data references update L1D and L2,
instruction references update L1I and L2, and — per the paper — "for
caches with WTNA policies, the block is allocated even if the access is a
write", so every logged reference allocates during reconstruction.

Vectorized scan
---------------

When the batch core is enabled (``REPRO_BATCH_CORE``, same switch as the
batched functional interpreter) and the source can materialize its tail
as arrays, the reverse scan runs as a numpy pre-filter instead of a
per-reference Python loop.  This rests on a property of the §3.1 rules:
whether a reverse scan *applies* a reference at a cache level depends
only on the reference stream, never on the cache's current contents.  A
reference wins exactly when it is (a) the first (newest) occurrence of
its line and (b) among the first `associativity` distinct lines of its
set — a set keeps applying lines until it holds `associativity`
reconstructed blocks, and a repeated line always finds its block already
reconstructed (on a hit the stale resident is promoted; on a miss the
line is inserted; either way the block carries the reconstructed bit
afterwards).  The winner set is therefore computable up front with
``np.unique`` plus a per-set rank cutoff, and the winners are applied,
newest first, through the same scalar per-set primitive — identical
state transitions, identical statistics, a fraction of the interpreted
work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache import MemoryHierarchy
from ..functional.machine import batch_core_enabled
from .logging import REF_INSTRUCTION, REF_STORE
from .source import ReconstructionSource


def _reverse_scan_winners(set_indices: np.ndarray, lines: np.ndarray,
                          associativity: int) -> np.ndarray:
    """Positions (ascending == newest-first) a reverse scan would apply.

    `lines` and `set_indices` are parallel newest-first columns; a
    position survives when it is the first occurrence of its line and its
    line is among the first `associativity` distinct lines of its set.
    """
    _, first = np.unique(lines, return_index=True)
    first.sort()
    # Stable-sort the first occurrences by set: inside each set group the
    # newest-first scan order is preserved, so the element's rank within
    # its group is the number of distinct lines the set saw before it.
    order = np.argsort(set_indices[first], kind="stable")
    grouped = set_indices[first][order]
    changed = np.empty(len(grouped), dtype=bool)
    if len(grouped):
        changed[0] = True
        np.not_equal(grouped[1:], grouped[:-1], out=changed[1:])
    starts = np.flatnonzero(changed)
    group_of = np.cumsum(changed) - 1
    rank = np.arange(len(grouped)) - starts[group_of]
    winners = first[order[rank < associativity]]
    winners.sort()
    return winners


def _apply_level(cache, addresses: np.ndarray,
                 stores: np.ndarray) -> np.ndarray:
    """Reconstruct one cache level from its newest-first reference columns.

    Splits the addresses with array arithmetic, pre-filters to the
    reverse-scan winners, bulk-inserts them through the cache's scalar
    per-set primitive (identical state transitions and `applied`/`updates`
    accounting), and charges the skipped remainder arithmetically —
    exactly the count the scalar scan would have accumulated one
    reference at a time.  Returns the winner positions.
    """
    num_sets = cache.num_sets
    lines = addresses >> (cache.config.line_bytes.bit_length() - 1)
    if num_sets & (num_sets - 1) == 0:
        set_indices = lines & (num_sets - 1)
    else:
        set_indices = lines % num_sets
    winners = _reverse_scan_winners(set_indices, lines, cache.associativity)
    if num_sets & (num_sets - 1) == 0:
        tags = lines[winners] >> (num_sets.bit_length() - 1)
    else:
        tags = lines[winners] // num_sets
    applied = cache.reconstruct_winners(
        set_indices[winners].tolist(), tags.tolist(),
        stores[winners].tolist(),
    )
    cache.stats.reconstruction_skipped += len(addresses) - len(winners)
    assert applied == len(winners), \
        "reverse-scan winner filter disagreed with the per-set primitive"
    return winners


@dataclass
class CacheReconstructionStats:
    """Outcome of one reverse cache-reconstruction pass."""

    scanned: int = 0
    applied: int = 0
    skipped: int = 0

    @property
    def skip_fraction(self) -> float:
        return self.skipped / self.scanned if self.scanned else 0.0


class ReverseCacheReconstructor:
    """Reverse-scans a skip-region memory log into a hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy, telemetry=None,
                 batched: bool | None = None) -> None:
        self.hierarchy = hierarchy
        #: Optional telemetry session; each pass reports how many logged
        #: references it scanned, applied (blocks actually reconstructed),
        #: and skipped by the temporal-locality filter.
        self.telemetry = telemetry
        #: Vectorized-scan switch; None resolves ``REPRO_BATCH_CORE``
        #: (the same default as the batched functional interpreter).
        self.batched = batch_core_enabled() if batched is None else bool(batched)

    def reconstruct(self, source: ReconstructionSource,
                    fraction: float = 1.0) -> CacheReconstructionStats:
        """Rebuild L1I/L1D/L2 state from the most recent `fraction` of the
        logged reference stream.

        `source` supplies the newest-first reference iterator; a compacted
        source yields only each block's winning reference, so `scanned`
        then counts unique blocks rather than raw log length (the cache's
        reconstructed bits make the extra raw references no-ops either
        way, which is why both sources rebuild identical state).

        Returns statistics on how many scanned references actually changed
        state — the savings relative to SMARTS, which applies them all.
        """
        hierarchy = self.hierarchy
        l1i = hierarchy.l1i
        l1d = hierarchy.l1d
        l2 = hierarchy.l2
        l1i.begin_reconstruction()
        l1d.begin_reconstruction()
        l2.begin_reconstruction()

        stats = CacheReconstructionStats()
        scanned = 0
        applied = 0

        arrays = source.memory_reverse_arrays(fraction) if self.batched \
            else None
        if arrays is not None:
            addresses, kinds = arrays
            scanned = len(addresses)
            if scanned:
                is_inst = kinds == REF_INSTRUCTION
                is_store = kinds == REF_STORE
                touched = np.zeros(scanned, dtype=bool)
                inst_idx = np.flatnonzero(is_inst)
                data_idx = np.flatnonzero(~is_inst)
                for cache, idx in ((l1i, inst_idx), (l1d, data_idx),
                                   (l2, None)):
                    if idx is None:
                        level_addresses = addresses
                        level_stores = is_store
                    elif len(idx):
                        level_addresses = addresses[idx]
                        level_stores = is_store[idx]
                    else:
                        continue
                    winners = _apply_level(cache, level_addresses,
                                           level_stores)
                    touched[winners if idx is None else idx[winners]] = True
                applied = int(touched.sum())
        else:
            l1i_reconstruct = l1i.reconstruct_reference
            l1d_reconstruct = l1d.reconstruct_reference
            l2_reconstruct = l2.reconstruct_reference

            # "the reference stream is scanned in reverse order"
            for address, kind in source.iter_memory_reverse(fraction):
                scanned += 1
                if kind == REF_INSTRUCTION:
                    touched = l1i_reconstruct(address, False)
                    touched |= l2_reconstruct(address, False)
                else:
                    is_store = kind == REF_STORE
                    touched = l1d_reconstruct(address, is_store)
                    touched |= l2_reconstruct(address, is_store)
                if touched:
                    applied += 1

        stats.scanned = scanned
        stats.applied = applied
        stats.skipped = scanned - applied
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count("reconstruct.refs_scanned", stats.scanned)
            telemetry.count("reconstruct.blocks_applied", stats.applied)
            telemetry.count("reconstruct.refs_skipped", stats.skipped)
        return stats
