"""Reverse cache reconstruction (paper §3.1, Figure 2).

"Immediately before the next cluster, the reference stream is scanned in
reverse order and the cache state is updated.  Temporal locality is
exploited by applying updates to the cache for only those references that
would have affected the final state."

The per-set mechanics (reconstructed bits, LRU ranking of reconstructed
blocks, stale-LRU victim selection) live in
:meth:`repro.cache.Cache.reconstruct_reference`; this module drives the
reverse scan across the hierarchy: data references update L1D and L2,
instruction references update L1I and L2, and — per the paper — "for
caches with WTNA policies, the block is allocated even if the access is a
write", so every logged reference allocates during reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache import MemoryHierarchy
from .logging import REF_INSTRUCTION, REF_STORE
from .source import ReconstructionSource


@dataclass
class CacheReconstructionStats:
    """Outcome of one reverse cache-reconstruction pass."""

    scanned: int = 0
    applied: int = 0
    skipped: int = 0

    @property
    def skip_fraction(self) -> float:
        return self.skipped / self.scanned if self.scanned else 0.0


class ReverseCacheReconstructor:
    """Reverse-scans a skip-region memory log into a hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy, telemetry=None) -> None:
        self.hierarchy = hierarchy
        #: Optional telemetry session; each pass reports how many logged
        #: references it scanned, applied (blocks actually reconstructed),
        #: and skipped by the temporal-locality filter.
        self.telemetry = telemetry

    def reconstruct(self, source: ReconstructionSource,
                    fraction: float = 1.0) -> CacheReconstructionStats:
        """Rebuild L1I/L1D/L2 state from the most recent `fraction` of the
        logged reference stream.

        `source` supplies the newest-first reference iterator; a compacted
        source yields only each block's winning reference, so `scanned`
        then counts unique blocks rather than raw log length (the cache's
        reconstructed bits make the extra raw references no-ops either
        way, which is why both sources rebuild identical state).

        Returns statistics on how many scanned references actually changed
        state — the savings relative to SMARTS, which applies them all.
        """
        hierarchy = self.hierarchy
        l1i = hierarchy.l1i
        l1d = hierarchy.l1d
        l2 = hierarchy.l2
        l1i.begin_reconstruction()
        l1d.begin_reconstruction()
        l2.begin_reconstruction()

        stats = CacheReconstructionStats()
        scanned = 0
        applied = 0
        l1i_reconstruct = l1i.reconstruct_reference
        l1d_reconstruct = l1d.reconstruct_reference
        l2_reconstruct = l2.reconstruct_reference

        # "the reference stream is scanned in reverse order"
        for address, kind in source.iter_memory_reverse(fraction):
            scanned += 1
            if kind == REF_INSTRUCTION:
                touched = l1i_reconstruct(address, False)
                touched |= l2_reconstruct(address, False)
            else:
                is_store = kind == REF_STORE
                touched = l1d_reconstruct(address, is_store)
                touched |= l2_reconstruct(address, is_store)
            if touched:
                applied += 1

        stats.scanned = scanned
        stats.applied = applied
        stats.skipped = scanned - applied
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count("reconstruct.refs_scanned", stats.scanned)
            telemetry.count("reconstruct.blocks_applied", stats.applied)
            telemetry.count("reconstruct.refs_skipped", stats.skipped)
        return stats
