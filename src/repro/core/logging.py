"""Skip-region logging (paper §3) — the raw tuple-list source.

"While skipping between clusters, the data necessary for reconstruction
are recorded."  During cold simulation the Reverse State Reconstruction
method buffers two streams:

- **memory references** — one record per data load/store and per fetched
  instruction block, carrying the address and two booleans (entry type:
  instruction/data; reference type: load/store), exactly the fields the
  cache reconstruction consumes;
- **branch records** — one record per control transfer, carrying the PC,
  next PC, outcome, and the classification needed to replay effects on
  the PHT, BTB, and RAS.

Records are plain tuples appended to lists: logging must be cheap because
it happens for *every* skipped instruction, while reconstruction — the
expensive part — touches only the log tail.  "To minimize the storage
requirements of the algorithm, data are kept only for the current cluster
of execution" — :meth:`SkipRegionLog.clear` is called after every cluster.

:class:`SkipRegionLog` is the *raw* implementation of the
:class:`~repro.core.source.ReconstructionSource` protocol: it retains the
full reference streams and answers every reverse-scan query by walking
them.  The online-compacted sibling lives in
:mod:`repro.core.compaction`.
"""

from __future__ import annotations

import numpy as np

from .source import ReconstructionSource, tail_cutoff

#: Memory-record reference kinds.
REF_LOAD = 0
REF_STORE = 1
REF_INSTRUCTION = 2

#: Branch-record kinds.
BR_COND = 0
BR_CALL = 1
BR_RET = 2
BR_JUMP = 3

#: Deterministic per-record byte model for :meth:`SkipRegionLog.
#: stored_bytes` (CPython-flavoured estimates — tuple header plus element
#: references plus small-int overhead amortised).  Chosen constants, not
#: ``sys.getsizeof`` probes, so storage telemetry is stable across
#: platforms and runs.
RAW_MEMORY_RECORD_BYTES = 88
RAW_BRANCH_RECORD_BYTES = 112


class SkipRegionLog(ReconstructionSource):
    """Buffered raw skip-region reference streams for one gap.

    Memory records are ``(address, kind)`` with kind one of REF_LOAD,
    REF_STORE, REF_INSTRUCTION.  Branch records are
    ``(pc, next_pc, taken, kind)`` with kind one of BR_COND, BR_CALL,
    BR_RET, BR_JUMP.  Both lists are in program order (oldest first);
    reconstruction iterates them in reverse.
    """

    __slots__ = ("memory_records", "branch_records", "telemetry",
                 "peak_stored_records", "peak_stored_bytes")

    def __init__(self, telemetry=None) -> None:
        self.memory_records: list[tuple[int, int]] = []
        self.branch_records: list[tuple[int, int, bool, int]] = []
        #: Optional telemetry session.  Counts are reported in bulk at
        #: :meth:`clear` — never per record, since the append hooks run
        #: for every skipped instruction and must stay allocation-free.
        self.telemetry = telemetry
        #: Largest per-gap retention seen over the source's lifetime
        #: (updated at :meth:`clear`; for the raw log, retention equals
        #: the raw stream length).
        self.peak_stored_records = 0
        self.peak_stored_bytes = 0

    # -- hook factories (installed on FunctionalMachine.run) ---------------

    def make_mem_hook(self):
        """Hook recording data references."""
        append = self.memory_records.append

        def mem_hook(pc, next_pc, address, is_store):
            append((address, REF_STORE if is_store else REF_LOAD))

        return mem_hook

    def make_ifetch_hook(self):
        """Hook recording instruction-block fetches."""
        append = self.memory_records.append

        def ifetch_hook(address):
            append((address, REF_INSTRUCTION))

        return ifetch_hook

    def make_branch_hook(self):
        """Hook recording control transfers."""
        append = self.branch_records.append

        def branch_hook(pc, next_pc, inst, taken):
            if inst.is_cond_branch:
                kind = BR_COND
            elif inst.is_call:
                kind = BR_CALL
            elif inst.is_ret:
                kind = BR_RET
            else:
                kind = BR_JUMP
            append((pc, next_pc, taken, kind))

        return branch_hook

    # -- raw-stream access (kept for tests, benches, and analysis code) -----

    def memory_tail(self, fraction: float) -> list[tuple[int, int]]:
        """The most recent `fraction` of memory records (program order)."""
        return self._tail(self.memory_records, fraction)

    def branch_tail(self, fraction: float) -> list[tuple[int, int, bool, int]]:
        """The most recent `fraction` of branch records (program order)."""
        return self._tail(self.branch_records, fraction)

    @staticmethod
    def _tail(records: list, fraction: float) -> list:
        cutoff = tail_cutoff(len(records), fraction)
        if cutoff <= 0:
            # A copy, never the live list: a consumer holding the tail
            # across clear() must not see it mutate underfoot.
            return records[:]
        return records[cutoff:]

    # -- ReconstructionSource: accounting -----------------------------------

    def memory_record_count(self) -> int:
        return len(self.memory_records)

    def branch_record_count(self) -> int:
        return len(self.branch_records)

    def record_count(self) -> int:
        return len(self.memory_records) + len(self.branch_records)

    def stored_records(self) -> int:
        """The raw log retains every record it observed."""
        return self.record_count()

    def stored_bytes(self) -> int:
        return (len(self.memory_records) * RAW_MEMORY_RECORD_BYTES
                + len(self.branch_records) * RAW_BRANCH_RECORD_BYTES)

    # -- ReconstructionSource: reverse-scan queries --------------------------

    def iter_memory_reverse(self, fraction: float):
        records = self.memory_records
        cutoff = tail_cutoff(len(records), fraction)
        for position in range(len(records) - 1, cutoff - 1, -1):
            yield records[position]

    def memory_reverse_arrays(self, fraction: float):
        """Materialize the reverse memory tail as (addresses, kinds)."""
        records = self.memory_records
        cutoff = tail_cutoff(len(records), fraction)
        tail = records[cutoff:] if cutoff > 0 else records
        if not tail:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        columns = np.array(tail, dtype=np.int64)
        return columns[::-1, 0], columns[::-1, 1]

    def recent_conditional_outcomes(self, fraction: float,
                                    limit: int) -> list:
        records = self.branch_records
        cutoff = tail_cutoff(len(records), fraction)
        outcomes: list[int] = []
        for position in range(len(records) - 1, cutoff - 1, -1):
            record = records[position]
            if record[3] == BR_COND:
                outcomes.append(int(record[2]))
                if len(outcomes) >= limit:
                    break
        return outcomes

    def iter_btb_claims_reverse(self, fraction: float):
        records = self.branch_records
        cutoff = tail_cutoff(len(records), fraction)
        for position in range(len(records) - 1, cutoff - 1, -1):
            pc, next_pc, taken, kind = records[position]
            if kind == BR_RET or not taken:
                continue
            yield pc, next_pc

    def btb_claims_arrays(self, fraction: float):
        """Materialize the reverse BTB-claim tail as (pcs, targets)."""
        records = self.branch_records
        cutoff = tail_cutoff(len(records), fraction)
        tail = records[cutoff:] if cutoff > 0 else records
        if not tail:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        columns = np.array(tail, dtype=np.int64)
        keep = (columns[:, 3] != BR_RET) & (columns[:, 2] != 0)
        claims = columns[keep]
        return claims[::-1, 0], claims[::-1, 1]

    def ras_tail_contents(self, fraction: float, capacity: int) -> list:
        from .ras_reconstruct import reconstruct_ras_contents

        return reconstruct_ras_contents(self.branch_tail(fraction), capacity)

    def pht_entry_windows(self, fraction: float, mask: int,
                          history_bits: int, max_history: int):
        """The raw log keeps no per-entry index; consumers replay the
        conditional stream instead."""
        return None

    def conditional_history(self, fraction: float,
                            history_bits: int) -> list:
        records = self.branch_records
        cutoff = tail_cutoff(len(records), fraction)
        ghr_mask = (1 << history_bits) - 1
        conditionals: list[tuple[int, int, int]] = []
        running = 0
        for position in range(cutoff, len(records)):
            pc, _next_pc, taken, kind = records[position]
            if kind != BR_COND:
                continue
            conditionals.append((pc, int(taken), running))
            running = ((running << 1) | int(taken)) & ghr_mask
        return conditionals

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Discard the gap's data (called after every cluster)."""
        memory = len(self.memory_records)
        branch = len(self.branch_records)
        stored = memory + branch
        stored_bytes = self.stored_bytes()
        if stored > self.peak_stored_records:
            self.peak_stored_records = stored
        if stored_bytes > self.peak_stored_bytes:
            self.peak_stored_bytes = stored_bytes
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count("log.memory_records", memory)
            telemetry.count("log.branch_records", branch)
            telemetry.count("log.stored_records", stored)
            telemetry.count("log.stored_bytes", stored_bytes)
            telemetry.observe("log.gap_stored_records", stored)
            telemetry.observe("log.gap_stored_bytes", stored_bytes)
        self.memory_records.clear()
        self.branch_records.clear()
