"""Skip-region logging (paper §3).

"While skipping between clusters, the data necessary for reconstruction
are recorded."  During cold simulation the Reverse State Reconstruction
method buffers two streams:

- **memory references** — one record per data load/store and per fetched
  instruction block, carrying the address and two booleans (entry type:
  instruction/data; reference type: load/store), exactly the fields the
  cache reconstruction consumes;
- **branch records** — one record per control transfer, carrying the PC,
  next PC, outcome, and the classification needed to replay effects on
  the PHT, BTB, and RAS.

Records are plain tuples appended to lists: logging must be cheap because
it happens for *every* skipped instruction, while reconstruction — the
expensive part — touches only the log tail.  "To minimize the storage
requirements of the algorithm, data are kept only for the current cluster
of execution" — :meth:`SkipRegionLog.clear` is called after every cluster.
"""

from __future__ import annotations

#: Memory-record reference kinds.
REF_LOAD = 0
REF_STORE = 1
REF_INSTRUCTION = 2

#: Branch-record kinds.
BR_COND = 0
BR_CALL = 1
BR_RET = 2
BR_JUMP = 3


class SkipRegionLog:
    """Buffered skip-region reference streams for one inter-cluster gap.

    Memory records are ``(address, kind)`` with kind one of REF_LOAD,
    REF_STORE, REF_INSTRUCTION.  Branch records are
    ``(pc, next_pc, taken, kind)`` with kind one of BR_COND, BR_CALL,
    BR_RET, BR_JUMP.  Both lists are in program order (oldest first);
    reconstruction iterates them in reverse.
    """

    __slots__ = ("memory_records", "branch_records", "telemetry")

    def __init__(self, telemetry=None) -> None:
        self.memory_records: list[tuple[int, int]] = []
        self.branch_records: list[tuple[int, int, bool, int]] = []
        #: Optional telemetry session.  Counts are reported in bulk at
        #: :meth:`clear` — never per record, since the append hooks run
        #: for every skipped instruction and must stay allocation-free.
        self.telemetry = telemetry

    # -- hook factories (installed on FunctionalMachine.run) ---------------

    def make_mem_hook(self):
        """Hook recording data references."""
        append = self.memory_records.append

        def mem_hook(pc, next_pc, address, is_store):
            append((address, REF_STORE if is_store else REF_LOAD))

        return mem_hook

    def make_ifetch_hook(self):
        """Hook recording instruction-block fetches."""
        append = self.memory_records.append

        def ifetch_hook(address):
            append((address, REF_INSTRUCTION))

        return ifetch_hook

    def make_branch_hook(self):
        """Hook recording control transfers."""
        append = self.branch_records.append

        def branch_hook(pc, next_pc, inst, taken):
            if inst.is_cond_branch:
                kind = BR_COND
            elif inst.is_call:
                kind = BR_CALL
            elif inst.is_ret:
                kind = BR_RET
            else:
                kind = BR_JUMP
            append((pc, next_pc, taken, kind))

        return branch_hook

    # -- consumption --------------------------------------------------------

    def memory_tail(self, fraction: float) -> list[tuple[int, int]]:
        """The most recent `fraction` of memory records (program order)."""
        return self._tail(self.memory_records, fraction)

    def branch_tail(self, fraction: float) -> list[tuple[int, int, bool, int]]:
        """The most recent `fraction` of branch records (program order)."""
        return self._tail(self.branch_records, fraction)

    @staticmethod
    def _tail(records: list, fraction: float) -> list:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if fraction >= 1.0:
            # A copy, never the live list: a consumer holding the tail
            # across clear() must not see it mutate underfoot.
            return records[:]
        keep = int(round(len(records) * fraction))
        if keep <= 0:
            return []
        return records[len(records) - keep:]

    def record_count(self) -> int:
        return len(self.memory_records) + len(self.branch_records)

    def clear(self) -> None:
        """Discard the gap's data (called after every cluster)."""
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count("log.memory_records", len(self.memory_records))
            telemetry.count("log.branch_records", len(self.branch_records))
        self.memory_records.clear()
        self.branch_records.clear()
