"""The Reverse State Reconstruction warm-up method (paper §3).

Skip-region behaviour: cold functional simulation with logging hooks —
"no analysis is performed between clusters except for logging the needed
information for reconstruction."  Immediately before each cluster the
cache hierarchy is rebuilt by a reverse scan of the memory log and the
branch predictor's GHR/BTB/RAS are rebuilt from the branch log; PHT
counters are reconstructed on demand as the cluster executes.

The `fraction` parameter matches the paper's R$ / R$BP percentages: the
*entire* skip region is always logged ("all accounting information
necessary for reconstruction is logged in the skip region, regardless of
the warm-up percentage"), but only the most recent `fraction` of the log
is consumed by reconstruction.
"""

from __future__ import annotations

from ..warmup.base import WarmupMethod, SimulationContext
from .branch_reconstruct import ReverseBranchReconstructor
from .cache_reconstruct import CacheReconstructionStats, ReverseCacheReconstructor
from .counter_table import CounterInferenceTable, default_table
from .logging import SkipRegionLog
from .source import make_source, resolved_source_kind


class ReverseStateReconstruction(WarmupMethod):
    """Paper Table 2 entries R$ (x%), RBP, and R$BP (x%)."""

    #: RSR's pre_cluster needs nothing but the current gap's log, so its
    #: clusters can run as independent shards (two-phase pipeline).
    shardable = True

    def __init__(
        self,
        fraction: float = 1.0,
        warm_cache: bool = True,
        warm_predictor: bool = True,
        table: CounterInferenceTable | None = None,
        on_demand: bool = True,
        infer_counters: bool = True,
        source: str = "auto",
    ) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"reconstruction fraction must be in (0, 1], got {fraction!r}"
            )
        if not (warm_cache or warm_predictor):
            raise ValueError("at least one structure must be warmed")
        self.fraction = fraction
        self.warm_cache = warm_cache
        self.warm_predictor = warm_predictor
        #: Ablation switches (DESIGN.md §5): `on_demand=False` drains the
        #: whole branch log eagerly before the cluster; `infer_counters=
        #: False` skips counter inference (GHR/BTB/RAS repair only).
        self.on_demand = on_demand
        self.infer_counters = infer_counters
        #: Skip-log source kind: "auto" (the REPRO_LOG_COMPACTION env var,
        #: default compacted), "compacted", "raw", or a zero-argument
        #: factory returning a ready ReconstructionSource.
        self.source = source
        self.warms_cache = warm_cache
        self.warms_predictor = warm_predictor
        percent = int(round(fraction * 100))
        if warm_cache and warm_predictor:
            self.name = f"R$BP ({percent}%)"
        elif warm_cache:
            self.name = f"R$ ({percent}%)"
        else:
            self.name = "RBP"

        #: Placeholder until bind(); a compacted source needs the context's
        #: geometry, so the real source is built per run.
        self.log = SkipRegionLog()
        self._cache_reconstructor: ReverseCacheReconstructor | None = None
        self._branch_reconstructor: ReverseBranchReconstructor | None = None
        self._table = table
        #: Per-cluster cache-reconstruction statistics (diagnostics).
        self.cache_stats_history: list[CacheReconstructionStats] = []

    def bind(self, context: SimulationContext) -> None:
        super().bind(context)
        # The telemetry session is per run, so the log and reconstructors
        # (which cache instruments from it) are rebuilt on every bind.
        self.log = make_source(
            self.source,
            context=context,
            fraction=self.fraction,
            warm_cache=self.warm_cache,
            warm_predictor=self.warm_predictor,
            table=self._table,
            telemetry=self.telemetry,
        )
        self.cache_stats_history = []
        # The bound machine's batch-core switch governs the reconstructors
        # too, so one knob selects scalar or vectorized kernels run-wide.
        batched = getattr(context.machine, "batched", None)
        self._cache_reconstructor = ReverseCacheReconstructor(
            context.hierarchy, telemetry=self.telemetry, batched=batched
        )
        self._branch_reconstructor = ReverseBranchReconstructor(
            context.predictor, table=self._table,
            infer_counters=self.infer_counters,
            telemetry=self.telemetry,
            batched=batched,
        )

    # -- skip region: cold execution + logging -------------------------------

    def skip(self, count: int) -> None:
        context = self.context
        log = self.log
        records_before = log.record_count()

        mem_hook = log.make_mem_hook() if self.warm_cache else None
        ifetch_hook = log.make_ifetch_hook() if self.warm_cache else None
        branch_hook = log.make_branch_hook() if self.warm_predictor else None

        executed = context.machine.run(
            count,
            mem_hook=mem_hook,
            branch_hook=branch_hook,
            ifetch_hook=ifetch_hook,
            ifetch_block_bytes=context.hierarchy.l1i.config.line_bytes,
        )
        self.cost.functional_instructions += executed
        self.cost.log_records += log.record_count() - records_before

    # -- cluster sharding ------------------------------------------------------

    def clone_unbound(self):
        """Unbound clone for shard workers (configuration only).

        `bind` rebuilds the log and both reconstructors, so the clone
        ships placeholders instead of the (potentially filled, context-
        entangled) live instances.
        """
        clone = super().clone_unbound()
        clone.log = SkipRegionLog()
        clone._cache_reconstructor = None
        clone._branch_reconstructor = None
        clone.cache_stats_history = []
        return clone

    def detach_source(self):
        """Hand over the filled gap log; start a fresh one for the next gap.

        The surrendered source is prepared for pickling (telemetry
        stripped — see :meth:`ReconstructionSource.handoff`); the
        replacement is built with the same kind and geometry, so the cold
        scan keeps logging seamlessly.
        """
        filled = self.log.handoff()
        self.log = make_source(
            self.source,
            context=self.context,
            fraction=self.fraction,
            warm_cache=self.warm_cache,
            warm_predictor=self.warm_predictor,
            table=self._table,
            telemetry=self.telemetry,
        )
        return filled

    def adopt_source(self, source) -> None:
        """Consume a handed-off gap log in place of this bind's own."""
        source.adopt_telemetry(self.telemetry)
        self.log = source

    def store_identity(self) -> "dict | None":
        """Checkpoint-store identity: every knob shaping the cold scan.

        None for callable source factories — a third-party source has no
        stable identity the store could key on, so those runs are simply
        not persisted.  The resolved source kind (raw vs compacted) is
        part of the identity because the two log representations produce
        different shard payloads; `max_history` matters because the
        compacted engine sizes its PHT windows to it.
        """
        source_kind = resolved_source_kind(self.source)
        if source_kind is None:
            return None
        table = self._table if self._table is not None else default_table()
        return {
            "method": type(self).__name__,
            "name": self.name,
            "fraction": self.fraction,
            "warm_cache": self.warm_cache,
            "warm_predictor": self.warm_predictor,
            "on_demand": self.on_demand,
            "infer_counters": self.infer_counters,
            "source": source_kind,
            "max_history": table.max_history,
        }

    # -- cluster boundary ------------------------------------------------------

    def pre_cluster(self):
        before = self._updates_now()
        hook = None
        if self.warm_cache:
            stats = self._cache_reconstructor.reconstruct(
                self.log, self.fraction
            )
            self.cache_stats_history.append(stats)
        if self.warm_predictor:
            self._branch_reconstructor.prepare(self.log, self.fraction)
            self.cost.predictor_updates += (
                self._branch_reconstructor.ras_entries_recovered
            )
            if self.on_demand:
                hook = self._branch_reconstructor.make_hook()
            else:
                self._branch_reconstructor.drain()
        self._charge_updates(before)
        return hook

    def finalize_pending(self) -> None:
        """Drain the on-demand PHT walker (analysis support).

        Finalised values are identical to what in-cluster probes would
        reconstruct; only entries no probe would have touched gain
        (equally inferred) values early.
        """
        if self.warm_predictor and self._branch_reconstructor is not None:
            self._branch_reconstructor.drain()

    def audit_census(self) -> dict | None:
        """PHT inference census for the accuracy audit, or None.

        Must be taken at the cluster boundary *before*
        :meth:`finalize_pending` — the census reads the armed on-demand
        engine non-destructively, while a drain consumes it.
        """
        if not self.warm_predictor or self._branch_reconstructor is None:
            return None
        return self._branch_reconstructor.inference_census()

    def post_cluster(self) -> None:
        if self.warm_predictor:
            # Residual finalisation: entries the cluster never probed are
            # resolved now, so the counter state carried into later
            # clusters is independent of the probe order and of the log
            # representation (raw walker vs compacted windows).  Entries
            # the cluster trained stay authoritative.
            self._branch_reconstructor.drain()
            # On-demand counter writes happened during the hot cluster.
            self.cost.predictor_updates += (
                self._branch_reconstructor.counter_writes
            )
            self._branch_reconstructor.counter_writes = 0
        self.log.clear()
