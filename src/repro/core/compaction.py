"""Online skip-log compaction (the tentpole of the log API redesign).

The raw :class:`~repro.core.logging.SkipRegionLog` buffers one tuple per
skipped reference and lets the reconstructors rediscover, by reverse
scan, that almost all of them are redundant: in reverse order "the first
reference to a block wins" (paper §3.1), the BTB keeps one target per
entry, the GHR needs only the newest ``history_bits`` outcomes, the RAS
only the unmatched call tail, and the counter-inference table can consume
at most ``max_history`` outcomes per PHT entry.

:class:`CompactedSkipRegionLog` performs that dedup *while logging*, so
both retention and reconstruction work become O(unique entries) instead
of O(gap length):

- **memory**: a last-touch index keyed by (cache block, instruction/data
  domain).  Re-touching a block moves it to the end of the insertion
  order, so iterating the index backwards replays exactly the surviving
  (winning) references of a raw reverse scan, newest first.  Keying at
  the finest line granularity in the hierarchy keeps the win exact for
  every cache level; coarser-grained duplicates are absorbed by the
  caches' own reconstructed bits, same as in the raw scan.
- **BTB**: a last-touch index pc -> newest taken target.  Older claims by
  the same pc lose to the newer one in a raw reverse scan anyway (the
  entry is already reconstructed when they arrive), so dropping them
  changes nothing.
- **GHR**: a bounded deque of the newest ``history_bits`` conditional
  outcomes, sequence-tagged so partial-fraction tails filter exactly.
- **RAS**: the online unmatched-call stack.  A return pops the newest
  outstanding call — the same pairing the reverse push/pop counter
  discovers — so the surviving stack, filtered to the tail and read top
  first, equals the counter algorithm's answer for every cutoff.
- **PHT** (full-fraction tails only): per-entry packed reverse outcome
  windows ``code = (length << max_history) | bits`` with bit 0 the
  newest outcome, indexed by ``(pc ^ GHR) & mask`` with the same
  zero-initialised online GHR the raw walker reconstructs.  The
  counter-inference table resolves a window to the identical value the
  raw newest-to-oldest walk produces, because an exact inference is
  insensitive to outcomes older than its pin point.  Partial fractions
  re-zero the walker's GHR at the tail start, which no online index can
  anticipate, so those geometries keep a packed typed-array conditional
  stream (8-byte pcs/positions plus 1-byte outcomes — ~6x denser than
  raw tuples) and replay it through the fallback walker.

Every query is bit-identical to the raw reverse scan; the equivalence is
enforced by tests/test_properties_compaction.py and re-proved in
docs/rsr-algorithm.md ("Online log compaction").
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import deque

import numpy as np

from .logging import REF_INSTRUCTION, REF_LOAD, REF_STORE
from .source import ReconstructionSource, tail_cutoff

#: Deterministic per-slot byte model for :meth:`CompactedSkipRegionLog.
#: stored_bytes` — fixed documented constants (dict slot + payload tuple
#: for the last-touch indexes, deque/list slot + pair for outcome and RAS
#: tails, dict slot + packed int for PHT windows, raw element widths for
#: the typed-array conditional stream).  Like the raw log's model these
#: are chosen, not measured, so storage telemetry is platform-stable.
COMPACT_MEMORY_SLOT_BYTES = 120
COMPACT_BTB_SLOT_BYTES = 120
COMPACT_OUTCOME_BYTES = 72
COMPACT_RAS_SLOT_BYTES = 72
COMPACT_PHT_WINDOW_BYTES = 88
COMPACT_CONDITIONAL_BYTES = 17


class CompactedSkipRegionLog(ReconstructionSource):
    """Skip-region log that dedups during cold simulation.

    Geometry parameters size the last-touch indexes to the bound
    simulation context (see :func:`repro.core.source.make_source`):
    `line_bytes` is the finest cache-line granularity in the hierarchy,
    `pht_entries`/`history_bits` mirror the gshare PHT, and `max_history`
    is the counter-inference window depth.  `index_pht` enables the
    per-entry outcome windows (exact only for full-fraction tails);
    `store_conditionals` keeps the packed conditional stream needed to
    replay partial-fraction tails.
    """

    __slots__ = (
        "telemetry", "peak_stored_records", "peak_stored_bytes",
        "_line_shift", "_pht_mask", "_history_bits", "_ghr_mask",
        "_max_history", "_window_mask", "_index_pht", "_store_conditionals",
        "_mem_index", "_mem_count", "_branch_count", "_btb_index",
        "_outcomes", "_ras_stack", "_pht_windows", "_ghr",
        "_cond_pcs", "_cond_taken", "_cond_positions",
    )

    def __init__(self, *, line_bytes: int = 64, pht_entries: int = 0,
                 history_bits: int = 0, max_history: int = 0,
                 index_pht: bool = False, store_conditionals: bool = False,
                 telemetry=None) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if index_pht:
            if pht_entries <= 0 or pht_entries & (pht_entries - 1):
                raise ValueError(
                    "PHT indexing needs a positive power-of-two entry count")
            if max_history <= 0:
                raise ValueError("PHT indexing needs a positive window depth")
        self._line_shift = line_bytes.bit_length() - 1
        self._pht_mask = pht_entries - 1 if pht_entries else 0
        self._history_bits = history_bits
        self._ghr_mask = (1 << history_bits) - 1
        self._max_history = max_history
        self._window_mask = (1 << max_history) - 1
        self._index_pht = index_pht
        self._store_conditionals = store_conditionals
        self.telemetry = telemetry
        # Last-touch memory index: (block, domain) -> (seq, address, kind).
        # del+reinsert on every touch keeps insertion order == last-touch
        # order, so reversed() iteration is newest-first and sequence
        # numbers decrease monotonically (tail cutoffs can early-break).
        self._mem_index: dict[int, tuple[int, int, int]] = {}
        self._mem_count = 0
        self._branch_count = 0
        self._btb_index: dict[int, tuple[int, int]] = {}
        self._outcomes: deque = deque(maxlen=history_bits)
        self._ras_stack: list[tuple[int, int]] = []
        self._pht_windows: dict[int, int] = {}
        self._ghr = 0
        self._cond_pcs = array("q")
        self._cond_taken = bytearray()
        self._cond_positions = array("q")
        self.peak_stored_records = 0
        self.peak_stored_bytes = 0

    # -- hook factories (the compaction hot path) ---------------------------

    def make_mem_hook(self):
        index = self._mem_index
        shift = self._line_shift

        def mem_hook(pc, next_pc, address, is_store):
            # Data domain: even keys.  The newest reference's address and
            # load/store kind are exactly what a raw reverse scan would
            # apply for this block; older touches would be skipped.
            key = (address >> shift) << 1
            if key in index:
                del index[key]
            index[key] = (self._mem_count, address,
                          REF_STORE if is_store else REF_LOAD)
            self._mem_count += 1

        return mem_hook

    def make_ifetch_hook(self):
        index = self._mem_index
        shift = self._line_shift

        def ifetch_hook(address):
            # Instruction domain: odd keys.  Kept separate from data so a
            # line fetched and loaded warms both L1I and L1D; the shared
            # L2 dedups the pair through its reconstructed bits.
            key = ((address >> shift) << 1) | 1
            if key in index:
                del index[key]
            index[key] = (self._mem_count, address, REF_INSTRUCTION)
            self._mem_count += 1

        return ifetch_hook

    def make_branch_hook(self):
        outcomes = self._outcomes
        btb_index = self._btb_index
        ras_stack = self._ras_stack
        windows = self._pht_windows
        cond_pcs = self._cond_pcs
        cond_taken = self._cond_taken
        cond_positions = self._cond_positions
        index_pht = self._index_pht
        store_conditionals = self._store_conditionals
        pht_mask = self._pht_mask
        ghr_mask = self._ghr_mask
        max_history = self._max_history
        window_mask = self._window_mask

        def branch_hook(pc, next_pc, inst, taken):
            seq = self._branch_count
            self._branch_count = seq + 1
            if inst.is_cond_branch:
                bit = 1 if taken else 0
                outcomes.append((seq, bit))
                if index_pht:
                    # Same index the on-demand walker computes: pc XOR the
                    # GHR in effect before this branch, zero at gap start.
                    entry = (pc ^ self._ghr) & pht_mask
                    code = windows.get(entry, 0)
                    length = code >> max_history
                    if length < max_history:
                        length += 1
                    # Shift older outcomes up; the newest lands at bit 0.
                    windows[entry] = ((length << max_history)
                                      | (((code << 1) | bit) & window_mask))
                    self._ghr = ((self._ghr << 1) | bit) & ghr_mask
                if store_conditionals:
                    cond_pcs.append(pc)
                    cond_taken.append(bit)
                    cond_positions.append(seq)
            elif inst.is_call:
                ras_stack.append((seq, pc + 1))
            elif inst.is_ret:
                # A return consumes the newest outstanding call — the same
                # pairing the reverse push/pop counter cancels — and never
                # claims a BTB entry.
                if ras_stack:
                    ras_stack.pop()
                return
            if taken:
                if pc in btb_index:
                    del btb_index[pc]
                btb_index[pc] = (seq, next_pc)

        return branch_hook

    # -- record accounting ---------------------------------------------------

    def memory_record_count(self) -> int:
        return self._mem_count

    def branch_record_count(self) -> int:
        return self._branch_count

    def stored_records(self) -> int:
        return (len(self._mem_index) + len(self._btb_index)
                + len(self._outcomes) + len(self._ras_stack)
                + len(self._pht_windows) + len(self._cond_positions))

    def stored_bytes(self) -> int:
        return (len(self._mem_index) * COMPACT_MEMORY_SLOT_BYTES
                + len(self._btb_index) * COMPACT_BTB_SLOT_BYTES
                + len(self._outcomes) * COMPACT_OUTCOME_BYTES
                + len(self._ras_stack) * COMPACT_RAS_SLOT_BYTES
                + len(self._pht_windows) * COMPACT_PHT_WINDOW_BYTES
                + len(self._cond_positions) * COMPACT_CONDITIONAL_BYTES)

    # -- consumer queries (each bit-identical to the raw reverse scan) ------

    def iter_memory_reverse(self, fraction: float):
        cutoff = tail_cutoff(self._mem_count, fraction)
        for seq, address, kind in reversed(self._mem_index.values()):
            if seq < cutoff:
                break
            yield address, kind

    def memory_reverse_arrays(self, fraction: float):
        """Materialize the surviving-reference tail as (addresses, kinds).

        The last-touch index keeps insertion order == last-touch order,
        so its value sequence is ascending; the tail cutoff becomes one
        binary search instead of a per-record early-break test.
        """
        cutoff = tail_cutoff(self._mem_count, fraction)
        if not self._mem_index:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        columns = np.array(list(self._mem_index.values()), dtype=np.int64)
        if cutoff > 0:
            start = int(np.searchsorted(columns[:, 0], cutoff, side="left"))
            columns = columns[start:]
        return columns[::-1, 1], columns[::-1, 2]

    def recent_conditional_outcomes(self, fraction: float,
                                    limit: int) -> list:
        if limit > self._history_bits:
            raise ValueError(
                f"this compacted log keeps the newest {self._history_bits} "
                f"conditional outcomes; {limit} were requested")
        cutoff = tail_cutoff(self._branch_count, fraction)
        recent: list[int] = []
        for seq, bit in reversed(self._outcomes):
            if seq < cutoff or len(recent) >= limit:
                break
            recent.append(bit)
        return recent

    def iter_btb_claims_reverse(self, fraction: float):
        cutoff = tail_cutoff(self._branch_count, fraction)
        for pc, (seq, target) in reversed(self._btb_index.items()):
            if seq < cutoff:
                break
            yield pc, target

    def btb_claims_arrays(self, fraction: float):
        """Materialize the surviving BTB-claim tail as (pcs, targets)."""
        cutoff = tail_cutoff(self._branch_count, fraction)
        if not self._btb_index:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        pcs = np.fromiter(self._btb_index.keys(), np.int64,
                          len(self._btb_index))
        values = np.array(list(self._btb_index.values()), dtype=np.int64)
        if cutoff > 0:
            start = int(np.searchsorted(values[:, 0], cutoff, side="left"))
            pcs = pcs[start:]
            values = values[start:]
        return pcs[::-1], values[::-1, 1]

    def ras_tail_contents(self, fraction: float, capacity: int) -> list:
        cutoff = tail_cutoff(self._branch_count, fraction)
        contents: list[int] = []
        for seq, return_pc in reversed(self._ras_stack):
            if seq < cutoff or len(contents) >= capacity:
                break
            contents.append(return_pc)
        return contents

    def pht_entry_windows(self, fraction: float, mask: int,
                          history_bits: int, max_history: int):
        if (not self._index_pht or fraction < 1.0
                or mask != self._pht_mask
                or history_bits != self._history_bits
                or max_history > self._max_history):
            return None
        shift = self._max_history
        window_mask = self._window_mask
        return {entry: (code >> shift, code & window_mask)
                for entry, code in self._pht_windows.items()}

    def conditional_history(self, fraction: float,
                            history_bits: int) -> list:
        if not self._store_conditionals:
            raise RuntimeError(
                "this compacted log was built without the conditional-stream"
                " fallback; construct it with store_conditionals=True to"
                " replay partial-fraction tails")
        cutoff = tail_cutoff(self._branch_count, fraction)
        positions = self._cond_positions
        start = bisect_left(positions, cutoff)
        pcs = self._cond_pcs
        taken = self._cond_taken
        ghr_mask = (1 << history_bits) - 1
        conditionals: list[tuple[int, int, int]] = []
        running = 0
        for position in range(start, len(positions)):
            bit = taken[position]
            conditionals.append((pcs[position], bit, running))
            running = ((running << 1) | bit) & ghr_mask
        return conditionals

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        stored = self.stored_records()
        stored_bytes = self.stored_bytes()
        if stored > self.peak_stored_records:
            self.peak_stored_records = stored
        if stored_bytes > self.peak_stored_bytes:
            self.peak_stored_bytes = stored_bytes
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count("log.memory_records", self._mem_count)
            telemetry.count("log.branch_records", self._branch_count)
            telemetry.count("log.stored_records", stored)
            telemetry.count("log.stored_bytes", stored_bytes)
            telemetry.observe("log.gap_stored_records", stored)
            telemetry.observe("log.gap_stored_bytes", stored_bytes)
        # The hook closures captured these containers, so they must be
        # emptied in place — rebinding would silently orphan the hooks.
        self._mem_index.clear()
        self._btb_index.clear()
        self._outcomes.clear()
        self._ras_stack.clear()
        self._pht_windows.clear()
        del self._cond_pcs[:]
        self._cond_taken.clear()
        del self._cond_positions[:]
        self._mem_count = 0
        self._branch_count = 0
        self._ghr = 0
