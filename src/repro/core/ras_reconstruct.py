"""Reverse return-address-stack reconstruction (paper §3.2, Figure 4).

"Whenever a pop is encountered in the reverse history, a single counter is
incremented.  If a push is encountered, and the counter is equal to zero,
the next PC is placed at the end of the RAS.  Otherwise, whenever a push
is seen, the counter is decremented.  Once the return address stack has
been filled, reconstruction is complete."

Intuition: walking backwards, a pop cancels the most recent not-yet-seen
push (that pushed address was consumed before the cluster started), so
pushes only survive onto the final stack when no outstanding pop shadows
them.  Surviving pushes are discovered newest-first, i.e. top of stack
first.
"""

from __future__ import annotations

from ..branch import ReturnAddressStack
from .logging import BR_CALL, BR_RET


def reconstruct_ras_contents(
    branch_records: list[tuple[int, int, bool, int]],
    capacity: int,
) -> list[int]:
    """Compute the final RAS contents (top first) from a branch log.

    `branch_records` is in program order; the reverse counter algorithm
    walks it backwards.  Returns at most `capacity` return addresses.
    """
    contents: list[int] = []
    outstanding_pops = 0
    for position in range(len(branch_records) - 1, -1, -1):
        pc, _next_pc, _taken, kind = branch_records[position]
        if kind == BR_RET:
            outstanding_pops += 1
        elif kind == BR_CALL:
            if outstanding_pops == 0:
                # The return address of a call is the instruction after it.
                contents.append(pc + 1)
                if len(contents) >= capacity:
                    break
            else:
                outstanding_pops -= 1
    return contents


def reconstruct_ras(ras: ReturnAddressStack,
                    branch_records: list[tuple[int, int, bool, int]]) -> int:
    """Rebuild `ras` in place; returns the number of entries recovered.

    Note: entries that were live *before* the skip region and survive it
    (calls still outstanding from earlier execution) are not recoverable
    from the skip log alone; like the paper, reconstruction fills only
    what the log proves, and deeper slots keep whatever the algorithm
    recovered (a finite RAS loses deep history anyway).
    """
    contents = reconstruct_ras_contents(branch_records, ras.size)
    ras.set_contents(contents)
    return len(contents)


def reconstruct_ras_from_source(ras: ReturnAddressStack, source,
                                fraction: float = 1.0) -> int:
    """Rebuild `ras` from a :class:`~repro.core.source.ReconstructionSource`.

    The source answers the push/pop counter question directly: a raw log
    replays its branch tail through :func:`reconstruct_ras_contents`, a
    compacted log reads its online unmatched-call stack.  Returns the
    number of entries recovered.
    """
    contents = source.ras_tail_contents(fraction, ras.size)
    ras.set_contents(contents)
    return len(contents)
