"""A-priori counter-inference table (paper §3.2, Figure 3).

During branch-predictor reconstruction "a series of possible states are
tracked for each prediction table entry.  Initially, the set of possible
states includes all possible counter values: 0, 1, 2, or 3."  Each older
outcome discovered in the reverse history narrows the set (three equal
consecutive outcomes anywhere in the forward history pin the counter
exactly).  "Rather than performing this computation at execution time, a
table was built a priori so that reconstruction can be implemented through
a table lookup."

This module builds that table.  A reverse history is encoded as
``(length, bits)`` where bit i of `bits` is the outcome of the (i+1)-th
most recent execution of the entry (bit 0 = most recent).  The table maps
each encoding to an :class:`Inference`:

- ``exact`` — the history pins the counter to a single value;
- otherwise, the paper's ambiguity rules produce the stored value:
  three possible states -> the middle one; two states on one side of the
  taken/not-taken boundary -> the weak form of that side; two straddling
  states -> the weak form of the branch's observed bias; no history ->
  leave the counter stale (`value` is None).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..branch.counters import WEAK_NOT_TAKEN, WEAK_TAKEN, update_counter

#: Reverse histories longer than this are truncated: alternating patterns
#: never pin a 2-bit counter, so unbounded search is pointless.
MAX_HISTORY = 12

#: The identity transition map over counter states.
_IDENTITY = (0, 1, 2, 3)


@dataclass(frozen=True)
class Inference:
    """Result of looking up one reverse history."""

    #: Inferred counter value; None means "leave the stale value".
    value: int | None
    #: True when the history pins the counter to exactly one state.
    exact: bool
    #: The possible-state set the history implies (diagnostics/tests).
    possible: tuple[int, ...]


def prepend_outcome(transition: tuple[int, int, int, int],
                    taken: bool) -> tuple[int, int, int, int]:
    """Extend a transition map with one *older* outcome.

    `transition[s]` is the final counter value reached from pre-history
    state `s` after applying all already-known outcomes in forward order.
    Discovering an older outcome `taken` composes it *before* the existing
    map.
    """
    return (
        transition[update_counter(0, taken)],
        transition[update_counter(1, taken)],
        transition[update_counter(2, taken)],
        transition[update_counter(3, taken)],
    )


def resolve(possible: frozenset[int], taken_count: int,
            length: int) -> Inference:
    """Apply the paper's Figure 3 rules to a possible-state set."""
    states = tuple(sorted(possible))
    if len(states) == 1:
        return Inference(value=states[0], exact=True, possible=states)
    if length == 0:
        # "If no history for a branch is produced, then the counter value
        # is left stale."
        return Inference(value=None, exact=False, possible=states)
    if len(states) == 3:
        # "If three states exist, the middle state is predicted."
        return Inference(value=states[1], exact=False, possible=states)
    # Two states remain.
    taken_side = all(s >= WEAK_TAKEN for s in states)
    not_taken_side = all(s <= WEAK_NOT_TAKEN for s in states)
    if taken_side:
        value = WEAK_TAKEN
    elif not_taken_side:
        value = WEAK_NOT_TAKEN
    else:
        # Straddling pair: fall back to the branch's observed bias,
        # choosing the weak form of the majority direction.
        value = WEAK_TAKEN if 2 * taken_count > length else WEAK_NOT_TAKEN
    return Inference(value=value, exact=False, possible=states)


def _infer(length: int, bits: int) -> Inference:
    """Direct (non-tabulated) inference for one reverse history."""
    transition = _IDENTITY
    taken_count = 0
    for position in range(length):
        taken = bool((bits >> position) & 1)
        taken_count += int(taken)
        transition = prepend_outcome(transition, taken)
        possible = frozenset(transition)
        if len(possible) == 1:
            return Inference(
                value=transition[0], exact=True,
                possible=tuple(sorted(possible)),
            )
    return resolve(frozenset(transition), taken_count, length)


class CounterInferenceTable:
    """Precomputed reverse-history -> counter inference table.

    Histories are truncated to :data:`MAX_HISTORY` outcomes.  The table
    has ``2**(MAX_HISTORY+1)`` entries and is shared process-wide via
    :func:`default_table`.
    """

    def __init__(self, max_history: int = MAX_HISTORY) -> None:
        if max_history < 1:
            raise ValueError("max_history must be >= 1")
        self.max_history = max_history
        self._table: list[list[Inference]] = [
            [_infer(length, bits) for bits in range(1 << length)]
            for length in range(max_history + 1)
        ]

    def lookup(self, length: int, bits: int) -> Inference:
        """Inference for a reverse history of `length` outcomes in `bits`.

        Histories longer than `max_history` are truncated to their most
        recent `max_history` outcomes (older outcomes cannot widen the
        possible-state set, and by then only non-pinning patterns remain).
        """
        if length > self.max_history:
            length = self.max_history
            bits &= (1 << length) - 1
        return self._table[length][bits]

    def __len__(self) -> int:
        return sum(len(row) for row in self._table)


@lru_cache(maxsize=1)
def default_table() -> CounterInferenceTable:
    """The shared a-priori table (built on first use)."""
    return CounterInferenceTable()
