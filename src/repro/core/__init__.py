"""Reverse State Reconstruction — the paper's primary contribution."""

from .logging import (
    SkipRegionLog,
    REF_LOAD,
    REF_STORE,
    REF_INSTRUCTION,
    BR_COND,
    BR_CALL,
    BR_RET,
    BR_JUMP,
)
from .counter_table import (
    CounterInferenceTable,
    Inference,
    default_table,
    prepend_outcome,
    resolve,
    MAX_HISTORY,
)
from .cache_reconstruct import (
    ReverseCacheReconstructor,
    CacheReconstructionStats,
)
from .ras_reconstruct import reconstruct_ras, reconstruct_ras_contents
from .branch_reconstruct import ReverseBranchReconstructor
from .method import ReverseStateReconstruction

__all__ = [
    "SkipRegionLog",
    "REF_LOAD",
    "REF_STORE",
    "REF_INSTRUCTION",
    "BR_COND",
    "BR_CALL",
    "BR_RET",
    "BR_JUMP",
    "CounterInferenceTable",
    "Inference",
    "default_table",
    "prepend_outcome",
    "resolve",
    "MAX_HISTORY",
    "ReverseCacheReconstructor",
    "CacheReconstructionStats",
    "reconstruct_ras",
    "reconstruct_ras_contents",
    "ReverseBranchReconstructor",
    "ReverseStateReconstruction",
]
