"""Reverse State Reconstruction — the paper's primary contribution."""

from .source import (
    ReconstructionSource,
    make_source,
    tail_cutoff,
    COMPACTION_ENV_VAR,
)
from .compaction import CompactedSkipRegionLog
from .logging import (
    SkipRegionLog,
    REF_LOAD,
    REF_STORE,
    REF_INSTRUCTION,
    BR_COND,
    BR_CALL,
    BR_RET,
    BR_JUMP,
)
from .counter_table import (
    CounterInferenceTable,
    Inference,
    default_table,
    prepend_outcome,
    resolve,
    MAX_HISTORY,
)
from .cache_reconstruct import (
    ReverseCacheReconstructor,
    CacheReconstructionStats,
)
from .ras_reconstruct import (
    reconstruct_ras,
    reconstruct_ras_contents,
    reconstruct_ras_from_source,
)
from .branch_reconstruct import ReverseBranchReconstructor
from .method import ReverseStateReconstruction

__all__ = [
    "ReconstructionSource",
    "make_source",
    "tail_cutoff",
    "COMPACTION_ENV_VAR",
    "CompactedSkipRegionLog",
    "SkipRegionLog",
    "REF_LOAD",
    "REF_STORE",
    "REF_INSTRUCTION",
    "BR_COND",
    "BR_CALL",
    "BR_RET",
    "BR_JUMP",
    "CounterInferenceTable",
    "Inference",
    "default_table",
    "prepend_outcome",
    "resolve",
    "MAX_HISTORY",
    "ReverseCacheReconstructor",
    "CacheReconstructionStats",
    "reconstruct_ras",
    "reconstruct_ras_contents",
    "reconstruct_ras_from_source",
    "ReverseBranchReconstructor",
    "ReverseStateReconstruction",
]
