"""Reverse branch-predictor reconstruction (paper §3.2).

Responsibilities, in the order they run:

1. **Global history register** — "the global history register must first
   be reconstructed using the last n branches of the skip-region trace";
   only then can PHT entries be indexed correctly.
2. **BTB** — rebuilt eagerly by a reverse pass, "similar to the cache
   reconstruction since the BTB can be viewed as a direct mapped cache":
   the most recent taken transfer to claim an entry wins.
3. **RAS** — rebuilt by the reverse push/pop counter algorithm
   (:mod:`repro.core.ras_reconstruct`).
4. **PHT counters** — reconstructed *on demand* during the next cluster:
   "as branches are encountered in the next cluster, the branch predictor
   is probed to determine if the entry has been reconstructed.  If not,
   the entry is first reconstructed before hot execution continues.
   During the traversal, branches that reference entries that are not
   relevant to the current entry also are reconstructed" — implemented as
   a cursor that walks the reverse log once, accumulating per-entry
   reverse histories and finalising each entry through the a-priori
   counter-inference table as soon as its history pins the counter.
"""

from __future__ import annotations

from ..branch import BranchPredictor
from ..telemetry import NULL_TELEMETRY
from .counter_table import CounterInferenceTable, default_table
from .logging import BR_COND, BR_RET, SkipRegionLog
from .ras_reconstruct import reconstruct_ras


class ReverseBranchReconstructor:
    """On-demand reverse reconstruction of one branch predictor."""

    def __init__(self, predictor: BranchPredictor,
                 table: CounterInferenceTable | None = None,
                 infer_counters: bool = True,
                 telemetry=None) -> None:
        self.predictor = predictor
        self.table = table if table is not None else default_table()
        #: Ablation switch: when False, PHT entries are marked reconstructed
        #: without writing inferred counter values (stale counters remain).
        self.infer_counters = infer_counters
        self._conditionals: list[tuple[int, bool, int]] = []
        self._cursor = -1
        #: entry index -> (history length, history bits, reverse-order).
        self._pending: dict[int, tuple[int, int]] = {}
        self.counter_writes = 0
        self.ras_entries_recovered = 0
        self.log_walk_steps = 0
        # Instruments resolved once; the null registry hands back shared
        # no-op singletons, so the on-demand walker stays cheap untraced.
        registry = (telemetry if telemetry is not None
                    else NULL_TELEMETRY).registry
        self._pht_counter = registry.counter("reconstruct.pht_entries")
        self._btb_counter = registry.counter("reconstruct.btb_entries")
        self._ras_counter = registry.counter("reconstruct.ras_entries")
        self._walk_counter = registry.counter("reconstruct.log_walk_steps")

    # -- eager phase (immediately before the cluster) -----------------------

    def prepare(self, log: SkipRegionLog, fraction: float = 1.0) -> None:
        """Run the eager reconstruction steps and arm the on-demand cursor."""
        predictor = self.predictor
        predictor.clear_reconstructed()
        self._pending = {}
        self.counter_writes = 0
        self.log_walk_steps = 0

        tail = log.branch_tail(fraction)

        # --- step 1: global history register -----------------------------
        pht = predictor.pht
        history_bits = pht.history_bits
        ghr = 0
        age = 0
        for position in range(len(tail) - 1, -1, -1):
            pc, next_pc, taken, kind = tail[position]
            if kind == BR_COND:
                ghr |= int(taken) << age
                age += 1
                if age >= history_bits:
                    break
        if age:
            pht.set_history(ghr)

        # --- step 2: BTB, newest claimant wins ----------------------------
        btb = predictor.btb
        btb_writes = 0
        for position in range(len(tail) - 1, -1, -1):
            pc, next_pc, taken, kind = tail[position]
            if kind == BR_RET or not taken:
                continue
            btb.reconstruct(pc, next_pc)
            btb_writes += 1
        self._btb_counter.inc(btb_writes)

        # --- step 3: RAS ---------------------------------------------------
        self.ras_entries_recovered = reconstruct_ras(predictor.ras, tail)
        self._ras_counter.inc(self.ras_entries_recovered)

        # --- step 4: arm the on-demand PHT walker --------------------------
        # Precompute the GHR in effect *before* each conditional branch in
        # the tail (one forward pass; the GHR preceding the tail is
        # unobservable and approximated as zero, which only affects the
        # oldest `history_bits` conditionals of the tail).
        conditionals = []
        running = 0
        mask = (1 << history_bits) - 1
        for pc, next_pc, taken, kind in tail:
            if kind != BR_COND:
                continue
            conditionals.append((pc, taken, running))
            running = ((running << 1) | int(taken)) & mask
        self._conditionals = conditionals
        self._cursor = len(conditionals) - 1

    # -- on-demand phase (during the cluster) ------------------------------

    def demand(self, entry: int) -> None:
        """Reconstruct PHT `entry`, walking the reverse log as far as needed.

        Every other entry met along the way has its reverse history
        extended and is finalised the moment the history pins its counter,
        so the log is consumed exactly once per cluster.
        """
        pht = self.predictor.pht
        reconstructed = pht.reconstructed
        if reconstructed[entry]:
            return
        conditionals = self._conditionals
        pending = self._pending
        table = self.table
        mask = pht.entries - 1
        cursor = self._cursor
        cursor_at_entry = cursor

        while cursor >= 0 and not reconstructed[entry]:
            pc, taken, ghr_before = conditionals[cursor]
            cursor -= 1
            self.log_walk_steps += 1
            index = (pc ^ ghr_before) & mask
            if reconstructed[index]:
                continue
            length, bits = pending.get(index, (0, 0))
            # Walking newest -> oldest: this outcome is the next-older bit.
            bits |= int(taken) << length
            length += 1
            inference = table.lookup(length, bits)
            if inference.exact:
                self._finalize(index, inference.value)
                pending.pop(index, None)
            else:
                pending[index] = (length, bits)
        self._cursor = cursor
        self._walk_counter.inc(cursor_at_entry - cursor)

        if not reconstructed[entry]:
            # Log exhausted: resolve with whatever history accumulated.
            length, bits = pending.pop(entry, (0, 0))
            inference = table.lookup(length, bits)
            self._finalize(entry, inference.value)

    def _finalize(self, entry: int, value: int | None) -> None:
        pht = self.predictor.pht
        if value is not None and self.infer_counters:
            pht.counters[entry] = value
            self.counter_writes += 1
            self._pht_counter.inc()
        pht.reconstructed[entry] = True

    def drain(self) -> None:
        """Eager variant (ablation): consume the whole log immediately,
        finalising every entry it mentions, instead of reconstructing on
        demand during the cluster."""
        pht = self.predictor.pht
        reconstructed = pht.reconstructed
        pending = self._pending
        table = self.table
        mask = pht.entries - 1
        cursor = self._cursor
        cursor_at_entry = cursor
        while cursor >= 0:
            pc, taken, ghr_before = self._conditionals[cursor]
            cursor -= 1
            self.log_walk_steps += 1
            index = (pc ^ ghr_before) & mask
            if reconstructed[index]:
                continue
            length, bits = pending.get(index, (0, 0))
            bits |= int(taken) << length
            length += 1
            inference = table.lookup(length, bits)
            if inference.exact:
                self._finalize(index, inference.value)
                pending.pop(index, None)
            else:
                pending[index] = (length, bits)
        self._cursor = cursor
        self._walk_counter.inc(cursor_at_entry - cursor)
        for entry, (length, bits) in list(pending.items()):
            self._finalize(entry, table.lookup(length, bits).value)
        pending.clear()

    # -- hot-loop hook --------------------------------------------------------

    def make_hook(self):
        """Hook for :meth:`TimingSimulator.run`: reconstruct the probed
        PHT entry on demand before each conditional branch predicts."""
        predictor = self.predictor
        pht = predictor.pht
        reconstructed = pht.reconstructed
        demand = self.demand
        index = pht.index

        def pre_branch_hook(pc, inst):
            if not inst.is_cond_branch:
                return
            entry = index(pc)
            if not reconstructed[entry]:
                demand(entry)
                # The hot update that follows trains this entry, so it is
                # authoritative from now on.
                reconstructed[entry] = True

        return pre_branch_hook
