"""Reverse branch-predictor reconstruction (paper §3.2).

Responsibilities, in the order they run:

1. **Global history register** — "the global history register must first
   be reconstructed using the last n branches of the skip-region trace";
   only then can PHT entries be indexed correctly.
2. **BTB** — rebuilt eagerly by a reverse pass, "similar to the cache
   reconstruction since the BTB can be viewed as a direct mapped cache":
   the most recent taken transfer to claim an entry wins.
3. **RAS** — rebuilt by the reverse push/pop counter algorithm
   (:mod:`repro.core.ras_reconstruct`).
4. **PHT counters** — reconstructed *on demand* during the next cluster:
   "as branches are encountered in the next cluster, the branch predictor
   is probed to determine if the entry has been reconstructed.  If not,
   the entry is first reconstructed before hot execution continues."

Every input arrives through the :class:`~repro.core.source.
ReconstructionSource` protocol.  For step 4 there are two engines:

- **window mode** — a compacted source that indexed the PHT during
  logging serves each entry's bounded reverse outcome window in O(1);
  the counter-inference table resolves it to the same value the raw walk
  would produce (an exact inference is insensitive to outcomes older
  than its pin point, and the table truncates longer histories to its
  window anyway).
- **walker mode** — the raw fallback: a cursor walks the conditional
  stream newest-to-oldest once per cluster, accumulating per-entry
  reverse histories and finalising each entry as soon as its history
  pins the counter.

After the cluster, :meth:`drain` finalises the residue in both engines,
so the counter state carried into later clusters is independent of the
probe order and of the log representation.
"""

from __future__ import annotations

import numpy as np

from ..branch import BranchPredictor
from ..functional.machine import batch_core_enabled
from ..telemetry import NULL_TELEMETRY
from .counter_table import CounterInferenceTable, default_table
from .ras_reconstruct import reconstruct_ras_from_source
from .source import ReconstructionSource


class ReverseBranchReconstructor:
    """On-demand reverse reconstruction of one branch predictor."""

    def __init__(self, predictor: BranchPredictor,
                 table: CounterInferenceTable | None = None,
                 infer_counters: bool = True,
                 telemetry=None,
                 batched: bool | None = None) -> None:
        self.predictor = predictor
        #: Vectorized BTB-rebuild switch; None resolves ``REPRO_BATCH_CORE``
        #: (the same default as the batched functional interpreter).
        self.batched = batch_core_enabled() if batched is None else bool(batched)
        self.table = table if table is not None else default_table()
        #: Ablation switch: when False, PHT entries are marked reconstructed
        #: without writing inferred counter values (stale counters remain).
        self.infer_counters = infer_counters
        self._conditionals: list[tuple[int, bool, int]] = []
        self._cursor = -1
        #: Window mode: entry index -> (length, reverse-order bits), served
        #: by a compacted source; None selects the walker fallback.
        self._windows: dict[int, tuple[int, int]] | None = None
        #: Walker mode: entry index -> (history length, bits, reverse-order).
        self._pending: dict[int, tuple[int, int]] = {}
        self.counter_writes = 0
        self.ras_entries_recovered = 0
        self.log_walk_steps = 0
        # Instruments resolved once; the null registry hands back shared
        # no-op singletons, so the on-demand walker stays cheap untraced.
        registry = (telemetry if telemetry is not None
                    else NULL_TELEMETRY).registry
        self._pht_counter = registry.counter("reconstruct.pht_entries")
        self._btb_counter = registry.counter("reconstruct.btb_entries")
        self._ras_counter = registry.counter("reconstruct.ras_entries")
        self._walk_counter = registry.counter("reconstruct.log_walk_steps")

    # -- eager phase (immediately before the cluster) -----------------------

    def prepare(self, source: ReconstructionSource,
                fraction: float = 1.0) -> None:
        """Run the eager reconstruction steps and arm the on-demand engine."""
        predictor = self.predictor
        predictor.clear_reconstructed()
        self._pending = {}
        self.counter_writes = 0
        self.log_walk_steps = 0

        # --- step 1: global history register -----------------------------
        pht = predictor.pht
        history_bits = pht.history_bits
        outcomes = source.recent_conditional_outcomes(fraction, history_bits)
        if outcomes:
            ghr = 0
            for age, taken in enumerate(outcomes):
                ghr |= taken << age
            pht.set_history(ghr)

        # --- step 2: BTB, newest claimant wins ----------------------------
        btb = predictor.btb
        arrays = source.btb_claims_arrays(fraction) if self.batched else None
        if arrays is not None:
            # Vectorized: in a direct-mapped structure only each entry's
            # newest claim writes — older claimants find the entry already
            # reconstructed — so the winner set is the first occurrence of
            # each entry index in the newest-first claim columns.  Winners
            # go through the scalar primitive (identical state and
            # `updates` accounting); losers never needed a call.  The
            # telemetry counter keeps counting every scanned claim, as the
            # scalar loop does.
            pcs, targets = arrays
            btb_writes = len(pcs)
            if btb_writes:
                entries = pcs & (btb.entries - 1)
                _, first = np.unique(entries, return_index=True)
                first.sort()
                reconstruct = btb.reconstruct
                for pc, target in zip(pcs[first].tolist(),
                                      targets[first].tolist()):
                    reconstruct(pc, target)
        else:
            btb_writes = 0
            for pc, target in source.iter_btb_claims_reverse(fraction):
                btb.reconstruct(pc, target)
                btb_writes += 1
        self._btb_counter.inc(btb_writes)

        # --- step 3: RAS ---------------------------------------------------
        self.ras_entries_recovered = reconstruct_ras_from_source(
            predictor.ras, source, fraction)
        self._ras_counter.inc(self.ras_entries_recovered)

        # --- step 4: arm the on-demand PHT engine --------------------------
        windows = source.pht_entry_windows(
            fraction, pht.entries - 1, history_bits, self.table.max_history)
        if windows is not None:
            self._windows = windows
            self._conditionals = []
            self._cursor = -1
            return
        self._windows = None
        # Walker fallback: the GHR in effect *before* each conditional of
        # the tail (the GHR preceding the tail is unobservable and
        # approximated as zero, which only affects the oldest
        # `history_bits` conditionals of the tail).
        self._conditionals = source.conditional_history(fraction,
                                                        history_bits)
        self._cursor = len(self._conditionals) - 1

    # -- on-demand phase (during the cluster) ------------------------------

    def demand(self, entry: int) -> None:
        """Reconstruct PHT `entry`.

        Window mode pops the entry's precompacted reverse window and
        resolves it in one table lookup.  Walker mode walks the reverse
        log as far as needed; every other entry met along the way has its
        reverse history extended and is finalised the moment the history
        pins its counter, so the log is consumed exactly once per cluster.
        """
        pht = self.predictor.pht
        reconstructed = pht.reconstructed
        if reconstructed[entry]:
            return
        windows = self._windows
        if windows is not None:
            length, bits = windows.pop(entry, (0, 0))
            self.log_walk_steps += length
            self._walk_counter.inc(length)
            self._finalize(entry, self.table.lookup(length, bits).value)
            return
        conditionals = self._conditionals
        pending = self._pending
        table = self.table
        mask = pht.entries - 1
        cursor = self._cursor
        cursor_at_entry = cursor

        while cursor >= 0 and not reconstructed[entry]:
            pc, taken, ghr_before = conditionals[cursor]
            cursor -= 1
            self.log_walk_steps += 1
            index = (pc ^ ghr_before) & mask
            if reconstructed[index]:
                continue
            length, bits = pending.get(index, (0, 0))
            # Walking newest -> oldest: this outcome is the next-older bit.
            bits |= int(taken) << length
            length += 1
            inference = table.lookup(length, bits)
            if inference.exact:
                self._finalize(index, inference.value)
                pending.pop(index, None)
            else:
                pending[index] = (length, bits)
        self._cursor = cursor
        self._walk_counter.inc(cursor_at_entry - cursor)

        if not reconstructed[entry]:
            # Log exhausted: resolve with whatever history accumulated.
            length, bits = pending.pop(entry, (0, 0))
            inference = table.lookup(length, bits)
            self._finalize(entry, inference.value)

    def _finalize(self, entry: int, value: int | None) -> None:
        pht = self.predictor.pht
        if value is not None and self.infer_counters:
            pht.counters[entry] = value
            self.counter_writes += 1
            self._pht_counter.inc()
        pht.reconstructed[entry] = True

    def drain(self) -> None:
        """Finalise every log-mentioned entry not yet reconstructed.

        Used eagerly (the on_demand=False ablation) and as the residual
        pass after every cluster, so the counters carried into the next
        cluster do not depend on which entries the cluster happened to
        probe.  Entries already reconstructed — by a probe or by hot
        training, which is authoritative — are left untouched.
        """
        pht = self.predictor.pht
        reconstructed = pht.reconstructed
        table = self.table
        windows = self._windows
        if windows is not None:
            steps = 0
            for entry, (length, bits) in windows.items():
                steps += length
                if not reconstructed[entry]:
                    self._finalize(entry, table.lookup(length, bits).value)
            windows.clear()
            self.log_walk_steps += steps
            self._walk_counter.inc(steps)
            return
        pending = self._pending
        mask = pht.entries - 1
        cursor = self._cursor
        cursor_at_entry = cursor
        while cursor >= 0:
            pc, taken, ghr_before = self._conditionals[cursor]
            cursor -= 1
            self.log_walk_steps += 1
            index = (pc ^ ghr_before) & mask
            if reconstructed[index]:
                continue
            length, bits = pending.get(index, (0, 0))
            bits |= int(taken) << length
            length += 1
            inference = table.lookup(length, bits)
            if inference.exact:
                self._finalize(index, inference.value)
                pending.pop(index, None)
            else:
                pending[index] = (length, bits)
        self._cursor = cursor
        self._walk_counter.inc(cursor_at_entry - cursor)
        for entry, (length, bits) in list(pending.items()):
            if not reconstructed[entry]:
                self._finalize(entry, table.lookup(length, bits).value)
        pending.clear()

    # -- diagnostics ----------------------------------------------------------

    def inference_census(self) -> dict:
        """Classify every log-mentioned PHT entry's pending inference.

        Non-destructive: reads the armed on-demand engine (windows or
        the conditional tail from the current cursor) without consuming
        it.  Both engines yield identical censuses for the same log —
        an exact inference is insensitive to outcomes older than its pin
        point, and the table truncates longer histories — which is what
        lets the audit assert the raw/compacted equivalence claim on
        every run.

        Returns counts keyed for the audit record: entries mentioned in
        the log, how many resolve exactly, the two/three-wide ambiguous
        sets, entries left stale (never mentioned), and the total
        ambiguity mass ``sum(len(possible) - 1)`` over mentioned entries.
        """
        pht = self.predictor.pht
        table = self.table
        exact = ambiguous_two = ambiguous_three = 0
        ambiguity_mass = 0

        def tally(inference) -> None:
            nonlocal exact, ambiguous_two, ambiguous_three, ambiguity_mass
            width = len(inference.possible)
            if inference.exact:
                exact += 1
            elif width == 2:
                ambiguous_two += 1
            elif width == 3:
                ambiguous_three += 1
            ambiguity_mass += width - 1

        windows = self._windows
        if windows is not None:
            mentioned = len(windows)
            for length, bits in windows.values():
                tally(table.lookup(length, bits))
        else:
            # Replay the remaining tail with drain's accumulation rules,
            # without touching cursor/pending/reconstructed state.
            reconstructed = self.predictor.pht.reconstructed
            mask = pht.entries - 1
            histories = dict(self._pending)
            resolved: dict[int, object] = {}
            for cursor in range(self._cursor, -1, -1):
                pc, taken, ghr_before = self._conditionals[cursor]
                index = (pc ^ ghr_before) & mask
                if index in resolved or reconstructed[index]:
                    continue
                length, bits = histories.get(index, (0, 0))
                bits |= int(taken) << length
                length += 1
                inference = table.lookup(length, bits)
                if inference.exact:
                    resolved[index] = inference
                    histories.pop(index, None)
                else:
                    histories[index] = (length, bits)
            for index, (length, bits) in histories.items():
                resolved[index] = table.lookup(length, bits)
            mentioned = len(resolved)
            for inference in resolved.values():
                tally(inference)

        return {
            "pht_entries_mentioned": mentioned,
            "pht_exact": exact,
            "pht_ambiguous_two": ambiguous_two,
            "pht_ambiguous_three": ambiguous_three,
            "pht_stale": pht.entries - mentioned,
            "pht_ambiguity_mass": ambiguity_mass,
        }

    # -- hot-loop hook --------------------------------------------------------

    def make_hook(self):
        """Hook for :meth:`TimingSimulator.run`: reconstruct the probed
        PHT entry on demand before each conditional branch predicts."""
        predictor = self.predictor
        pht = predictor.pht
        reconstructed = pht.reconstructed
        demand = self.demand
        index = pht.index

        def pre_branch_hook(pc, inst):
            if not inst.is_cond_branch:
                return
            entry = index(pc)
            if not reconstructed[entry]:
                demand(entry)
                # The hot update that follows trains this entry, so it is
                # authoritative from now on.
                reconstructed[entry] = True

        return pre_branch_hook
