"""The reconstruction-source protocol (log API redesign).

Reverse State Reconstruction separates two roles that the original
`SkipRegionLog` fused together:

- **producing** a skip-region log: the hook factories installed on the
  functional machine while the gap executes cold;
- **consuming** it: the reverse-scan queries the cache, branch, and RAS
  reconstructors run immediately before (and during) the next cluster.

:class:`ReconstructionSource` names that contract.  Two implementations
ship with the package — the raw tuple-list :class:`~repro.core.logging.
SkipRegionLog` (a faithful rendering of the paper's "log of all
references") and the online-compacted
:class:`~repro.core.compaction.CompactedSkipRegionLog`, which performs
the reverse-scan dedup *while logging* so that reconstruction work is
O(unique entries) instead of O(gap length).  Both are drop-in
interchangeable: every consumer query is defined so that the compacted
answers are bit-identical to a reverse scan of the raw stream
(docs/rsr-algorithm.md, "Online log compaction").

Third-party warm-up methods can supply their own source by implementing
this interface and passing a factory to
:class:`~repro.core.method.ReverseStateReconstruction`.
"""

from __future__ import annotations

import os

#: Environment variable selecting the default source kind for
#: ``kind="auto"``: any of ``off``/``0``/``raw``/``false`` selects the
#: raw tuple-list log, everything else (including unset) the compacted
#: engine.
COMPACTION_ENV_VAR = "REPRO_LOG_COMPACTION"

_RAW_SENTINELS = frozenset({"off", "0", "raw", "false", "no"})


def tail_cutoff(count: int, fraction: float) -> int:
    """First record position inside the most recent `fraction` of a log.

    The shared rounding rule for every tail query: of `count` records the
    newest ``int(round(count * fraction))`` are kept, i.e. positions
    ``>= count - keep`` survive.  Raising on out-of-range fractions keeps
    the raw and compacted paths failing identically.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(
            f"reconstruction fraction must be in (0, 1], got {fraction!r}"
        )
    keep = int(round(count * fraction))
    return count - keep


class ReconstructionSource:
    """Abstract skip-region log: producer hooks plus reverse-scan queries.

    Positions: memory and branch records occupy independent program-order
    streams, numbered from 0.  Every tail query takes the same `fraction`
    in (0, 1] and covers the records at positions ``>= tail_cutoff(count,
    fraction)`` of its stream.
    """

    __slots__ = ()

    # -- producer side (hooks installed on FunctionalMachine.run) ----------

    def make_mem_hook(self):
        """``hook(pc, next_pc, address, is_store)`` recording one data
        reference per call."""
        raise NotImplementedError

    def make_ifetch_hook(self):
        """``hook(address)`` recording one instruction-block fetch."""
        raise NotImplementedError

    def make_branch_hook(self):
        """``hook(pc, next_pc, inst, taken)`` recording one control
        transfer, classified by the instruction's flags."""
        raise NotImplementedError

    # -- record accounting ---------------------------------------------------

    def memory_record_count(self) -> int:
        """Memory references observed since the last :meth:`clear`."""
        raise NotImplementedError

    def branch_record_count(self) -> int:
        """Control transfers observed since the last :meth:`clear`."""
        raise NotImplementedError

    def record_count(self) -> int:
        """Total references observed (the WarmupCost ``log_records``
        metric — always the *raw* stream length, independent of how much
        the source actually retains)."""
        return self.memory_record_count() + self.branch_record_count()

    def stored_records(self) -> int:
        """Record slots currently retained in memory (compaction metric)."""
        raise NotImplementedError

    def stored_bytes(self) -> int:
        """Deterministic estimate of the bytes retained (see the byte
        model constants in :mod:`repro.core.logging` /
        :mod:`repro.core.compaction`)."""
        raise NotImplementedError

    # -- consumer side (reverse-scan queries) --------------------------------

    def iter_memory_reverse(self, fraction: float):
        """Yield ``(address, kind)`` memory references newest-first.

        A compacted source may omit references that a reverse scan would
        skip as redundant (older touches of an already-claimed block);
        the surviving sequence must preserve reverse order.
        """
        raise NotImplementedError

    def memory_reverse_arrays(self, fraction: float):
        """Bulk form of :meth:`iter_memory_reverse`, or None.

        Returns ``(addresses, kinds)`` — two parallel numpy arrays
        (int64/uint8) holding exactly the sequence
        :meth:`iter_memory_reverse` would yield, newest first — so the
        vectorized reverse reconstructor can filter whole reference
        columns at once.  The default returns None, which tells consumers
        to fall back to the scalar iterator; sources that can materialize
        their tail cheaply override this.
        """
        return None

    def recent_conditional_outcomes(self, fraction: float,
                                    limit: int) -> list:
        """The newest ``<= limit`` conditional-branch outcomes in the
        tail, newest first (0/1 ints) — the GHR reconstruction input."""
        raise NotImplementedError

    def iter_btb_claims_reverse(self, fraction: float):
        """Yield ``(pc, target)`` BTB claims (taken, non-return transfers)
        newest-first; compacted sources may keep only each pc's newest."""
        raise NotImplementedError

    def btb_claims_arrays(self, fraction: float):
        """Bulk form of :meth:`iter_btb_claims_reverse`, or None.

        Returns ``(pcs, targets)`` — parallel int64 numpy arrays holding
        exactly the claims :meth:`iter_btb_claims_reverse` would yield,
        newest first.  None (the default) selects the scalar iterator.
        """
        return None

    def ras_tail_contents(self, fraction: float, capacity: int) -> list:
        """Final RAS contents (top first, at most `capacity`) implied by
        the tail — the reverse push/pop counter algorithm's answer."""
        raise NotImplementedError

    def pht_entry_windows(self, fraction: float, mask: int,
                          history_bits: int, max_history: int):
        """Per-PHT-entry reverse outcome windows, or None.

        When the source maintained an incremental last-touch PHT index
        compatible with the requested geometry (same index mask and GHR
        width, windows at least `max_history` outcomes deep), returns
        ``{entry: (length, bits)}`` where bit i of `bits` is the entry's
        (i+1)-th most recent outcome.  Returns None when the query must
        fall back to :meth:`conditional_history` (raw sources always;
        compacted sources for partial-fraction tails, whose reverse scan
        re-zeroes the GHR at the tail start).
        """
        raise NotImplementedError

    def conditional_history(self, fraction: float,
                            history_bits: int) -> list:
        """``(pc, taken, ghr_before)`` for each conditional in the tail,
        program order, with the GHR zeroed at the tail start — the raw
        on-demand walker's input."""
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Discard the gap's data (paper: "data are kept only for the
        current cluster of execution").  Implementations report their
        telemetry totals here, in bulk, never per record."""
        raise NotImplementedError

    # -- cross-process hand-off ----------------------------------------------

    def handoff(self) -> "ReconstructionSource":
        """Prepare this source for transport into another process.

        The two-phase pipeline logs a gap in the cold-scan process and
        consumes it in a shard worker, so the filled source must pickle.
        The only process-bound piece of the bundled implementations is
        the telemetry session, which is dropped here (sessions are
        per-process; the worker re-attaches its own with
        :meth:`adopt_telemetry`).  Third-party sources holding other
        unpicklable state override this.  Returns ``self``.
        """
        self.telemetry = None
        return self

    def adopt_telemetry(self, telemetry) -> None:
        """Attach the consuming process's telemetry session (post
        hand-off); ``None`` leaves the source silent."""
        self.telemetry = telemetry


def resolved_source_kind(kind: str = "auto") -> "str | None":
    """The concrete source kind `kind` resolves to, without building one.

    ``"auto"`` consults ``REPRO_LOG_COMPACTION`` exactly as
    :func:`make_source` does; concrete kinds pass through unchanged.  A
    callable factory resolves to None — its output has no stable
    identity, which tells content-addressed stores (checkpoint-store
    keys) the run is not storable.
    """
    if callable(kind):
        return None
    if kind == "auto":
        setting = os.environ.get(COMPACTION_ENV_VAR, "").strip().lower()
        return "raw" if setting in _RAW_SENTINELS else "compacted"
    return kind


def make_source(kind: str = "auto", *, context=None, fraction: float = 1.0,
                warm_cache: bool = True, warm_predictor: bool = True,
                table=None, telemetry=None) -> ReconstructionSource:
    """Build a reconstruction source for one bound warm-up method.

    `kind` is ``"compacted"``, ``"raw"``, ``"auto"`` (the
    ``REPRO_LOG_COMPACTION`` environment variable, default compacted), or
    a zero-argument factory returning a ready :class:`ReconstructionSource`
    (the third-party extension point).  For the compacted engine,
    `context` supplies the geometry the last-touch indexes are sized to:
    the finest cache line granularity, the PHT index mask and GHR width,
    and the counter-inference window depth from `table`.
    """
    if callable(kind):
        return kind()
    kind = resolved_source_kind(kind)
    if kind == "raw":
        from .logging import SkipRegionLog

        return SkipRegionLog(telemetry=telemetry)
    if kind != "compacted":
        raise ValueError(
            f"unknown reconstruction source kind {kind!r}; "
            "known: auto, compacted, raw"
        )

    from .compaction import CompactedSkipRegionLog
    from .counter_table import default_table

    if context is None:
        raise ValueError("a compacted source needs a simulation context "
                         "to size its last-touch indexes")
    line_bytes = 64
    if warm_cache:
        hierarchy = context.hierarchy
        line_bytes = min(
            level.config.line_bytes
            for level in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2)
        )
    pht_entries = 0
    history_bits = 0
    max_history = 0
    index_pht = False
    store_conditionals = False
    if warm_predictor:
        pht = context.predictor.pht
        pht_entries = pht.entries
        history_bits = pht.history_bits
        max_history = (table if table is not None
                       else default_table()).max_history
        # A full-fraction tail starts where the gap starts, so the online
        # GHR-indexed windows are exact; partial fractions re-zero the
        # GHR at the tail start and must replay the conditional stream.
        index_pht = fraction >= 1.0
        store_conditionals = fraction < 1.0
    return CompactedSkipRegionLog(
        line_bytes=line_bytes,
        pht_entries=pht_entries,
        history_bits=history_bits,
        max_history=max_history,
        index_pht=index_pht,
        store_conditionals=store_conditionals,
        telemetry=telemetry,
    )
