"""Basic-block-vector profiling (SimPoint's program-behaviour signature).

SimPoint "analyzes the frequency at which basic blocks are executed
within a workload" (paper §2): execution is divided into fixed-size
instruction intervals and each interval is summarised by a vector of
per-basic-block execution weights (block executions x block size).
Similar vectors mean similar behaviour; k-means over the vectors finds
representative intervals.

Profiling is functional-only and hardware independent, exactly as in
SimPoint: no cache or predictor state is consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads import Workload


@dataclass
class BBVProfile:
    """Per-interval basic-block vectors for one workload."""

    workload_name: str
    interval_size: int
    #: Dense matrix: vectors[i, b] = instructions interval i spent in block b.
    vectors: np.ndarray
    #: Instructions actually profiled (last partial interval dropped).
    instructions: int

    @property
    def num_intervals(self) -> int:
        return self.vectors.shape[0]

    def normalized(self) -> np.ndarray:
        """Row-normalised (L1) vectors, as SimPoint clusters them."""
        totals = self.vectors.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return self.vectors / totals


def profile_bbv(workload: Workload, total_instructions: int,
                interval_size: int) -> BBVProfile:
    """Profile `total_instructions` of `workload` into BBVs.

    Block attribution happens at control-transfer granularity: the
    straight-line run between two transfers always covers whole basic
    blocks, so each run's instruction count is credited to the blocks it
    spans.  A run crossing an interval boundary is credited to the
    interval it started in (boundary smear of at most one run, which is a
    few instructions).
    """
    if interval_size <= 0:
        raise ValueError("interval_size must be positive")
    num_intervals = total_instructions // interval_size
    if num_intervals == 0:
        raise ValueError("total_instructions smaller than one interval")

    program = workload.program
    blocks = program.basic_blocks()
    block_of = np.empty(len(program), dtype=np.int64)
    for block_id, block in enumerate(blocks):
        block_of[block.start:block.end] = block_id

    vectors = np.zeros((num_intervals, len(blocks)), dtype=np.float64)
    machine = workload.make_machine()

    state = {"run_start": machine.pc, "interval": 0, "boundary": interval_size}

    def credit_run(first: int, last: int, retired: int) -> None:
        interval = state["interval"]
        row = vectors[interval]
        first_block = block_of[first]
        last_block = block_of[last]
        if first_block == last_block:
            row[first_block] += last - first + 1
        else:
            for block_id in range(first_block, last_block + 1):
                block = blocks[block_id]
                lo = max(block.start, first)
                hi = min(block.end - 1, last)
                row[block_id] += hi - lo + 1
        if retired >= state["boundary"]:
            state["interval"] += 1
            state["boundary"] += interval_size

    def branch_hook(pc, next_pc, inst, taken):
        if state["interval"] >= num_intervals:
            return
        credit_run(state["run_start"], pc, machine.instructions_retired)
        state["run_start"] = next_pc

    executed = machine.run(
        num_intervals * interval_size, branch_hook=branch_hook
    )
    # Credit the trailing straight-line run, if any interval is still open.
    if state["interval"] < num_intervals and machine.pc != state["run_start"]:
        last = max(state["run_start"], machine.pc - 1)
        credit_run(state["run_start"], last, executed)

    return BBVProfile(
        workload_name=workload.name,
        interval_size=interval_size,
        vectors=vectors,
        instructions=num_intervals * interval_size,
    )
