"""Variance SimPoint: statistically valid simulation points.

The paper (§2) notes that classic SimPoint's systematic selection defeats
confidence-interval tests, and cites Variance SimPoint [Perelman et al.,
PACT 2003] as the fix: "Such error bounds can be calculated if SimPoint
selects clusters of execution at random."

This module implements that variant: simulation points are intervals
drawn uniformly at random (optionally stratified across k-means clusters
so coverage of program phases is retained), each point carries equal
weight, and the resulting per-point IPCs admit the same standard-error /
confidence-interval machinery as cluster sampling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..sampling.controller import SimulatorConfigs
from ..sampling.statistics import SampleEstimate, cluster_estimate
from ..timing import TimingSimulator
from ..warmup.base import SimulationContext, WarmupCost, WarmupMethod
from ..warmup.none import NoWarmup
from ..workloads import Workload
from .bbv import profile_bbv
from .kmeans import kmeans, random_projection


@dataclass
class VarianceSimPointSelection:
    """Randomly drawn (optionally phase-stratified) simulation points."""

    workload_name: str
    interval_size: int
    interval_indices: list[int]
    stratified: bool

    def starts(self) -> list[int]:
        return sorted(
            index * self.interval_size for index in self.interval_indices
        )


def select_variance_simpoints(
    workload: Workload,
    total_instructions: int,
    interval_size: int,
    num_points: int,
    seed: int = 0,
    stratify: bool = True,
) -> VarianceSimPointSelection:
    """Draw `num_points` interval indices at random.

    With `stratify=True`, intervals are first clustered on their basic-
    block vectors and points are drawn per cluster proportionally to
    cluster size (at least one each), preserving SimPoint's phase
    coverage while keeping the draw random within each stratum.
    """
    num_intervals = total_instructions // interval_size
    if num_intervals <= 0:
        raise ValueError("total smaller than one interval")
    num_points = min(num_points, num_intervals)
    rng = np.random.default_rng(seed)

    if not stratify:
        indices = rng.choice(num_intervals, size=num_points, replace=False)
        return VarianceSimPointSelection(
            workload_name=workload.name,
            interval_size=interval_size,
            interval_indices=[int(i) for i in indices],
            stratified=False,
        )

    profile = profile_bbv(workload, total_instructions, interval_size)
    projected = random_projection(profile.normalized(), seed=seed)
    k = max(1, min(num_points // 2, num_intervals // 2))
    clustering = kmeans(projected, k, seed=seed)

    chosen: list[int] = []
    clusters = [
        np.flatnonzero(clustering.assignments == cluster)
        for cluster in range(clustering.k)
    ]
    clusters = [members for members in clusters if len(members)]
    # Proportional allocation, at least one draw per non-empty cluster.
    allocations = []
    for members in clusters:
        share = max(1, round(num_points * len(members) / num_intervals))
        allocations.append(share)
    while sum(allocations) > num_points:
        allocations[int(np.argmax(allocations))] -= 1
    for members, allocation in zip(clusters, allocations):
        allocation = min(allocation, len(members))
        draw = rng.choice(members, size=allocation, replace=False)
        chosen.extend(int(index) for index in draw)
    return VarianceSimPointSelection(
        workload_name=workload.name,
        interval_size=interval_size,
        interval_indices=chosen,
        stratified=True,
    )


@dataclass
class VarianceSimPointResult:
    """IPC estimate with error bounds (unlike classic SimPoint)."""

    workload_name: str
    interval_size: int
    point_ipcs: list[float]
    estimate: SampleEstimate
    cost: WarmupCost
    wall_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.estimate.mean

    def relative_error(self, true_ipc: float) -> float:
        return abs(true_ipc - self.ipc) / abs(true_ipc)

    def passes_confidence_test(self, true_ipc: float) -> bool:
        return self.estimate.contains(true_ipc)


def run_variance_simpoints(
    workload: Workload,
    selection: VarianceSimPointSelection,
    warmup: WarmupMethod | None = None,
    configs: SimulatorConfigs | None = None,
) -> VarianceSimPointResult:
    """Simulate the randomly drawn points; estimate IPC with a 95% CI."""
    configs = configs if configs is not None else SimulatorConfigs()
    method = warmup if warmup is not None else NoWarmup()
    machine = workload.make_machine()
    hierarchy = MemoryHierarchy(configs.hierarchy)
    predictor = BranchPredictor(configs.predictor)
    timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
    method.bind(SimulationContext(
        machine=machine, hierarchy=hierarchy, predictor=predictor,
    ))

    point_ipcs: list[float] = []
    position = 0
    start_time = time.perf_counter()
    for start in selection.starts():
        gap = start - position
        if gap > 0:
            method.skip(gap)
        position = start
        hook = method.pre_cluster()
        result = timing.run(selection.interval_size, pre_branch_hook=hook)
        method.post_cluster()
        position += result.instructions
        method.cost.hot_instructions += result.instructions
        point_ipcs.append(result.ipc)
    wall_seconds = time.perf_counter() - start_time

    return VarianceSimPointResult(
        workload_name=workload.name,
        interval_size=selection.interval_size,
        point_ipcs=point_ipcs,
        estimate=cluster_estimate(point_ipcs),
        cost=method.cost,
        wall_seconds=wall_seconds,
        extra={"stratified": selection.stratified},
    )
