"""SimPoint: representative-interval selection and simulation.

Implements the SimPoint methodology the paper compares against (§2, §5
and Figure 9): profile basic-block vectors per fixed-size interval,
cluster them with k-means, pick the interval closest to each centroid as
a *simulation point*, and estimate whole-program IPC as the cluster-size-
weighted mean of the points' detailed IPCs.

Because points are chosen systematically (not randomly), "statistical
tests such as the confidence interval cannot be used" — the result
carries no confidence interval, unlike cluster sampling.

The paper also evaluates SimPoint with and without SMARTS warm-up while
skipping to each point; `warmup` selects that behaviour here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..sampling.controller import SimulatorConfigs
from ..timing import TimingSimulator
from ..warmup.base import SimulationContext, WarmupCost, WarmupMethod
from ..warmup.none import NoWarmup
from ..workloads import Workload
from .bbv import BBVProfile, profile_bbv
from .kmeans import KMeansResult, kmeans, random_projection


@dataclass
class SimPoint:
    """One chosen simulation point."""

    interval_index: int
    weight: float
    cluster: int

    @property
    def start_instruction(self) -> int:
        raise AttributeError(
            "start depends on the interval size; use SimPointSelection"
        )


@dataclass
class SimPointSelection:
    """The outcome of SimPoint analysis for one workload."""

    workload_name: str
    interval_size: int
    points: list[SimPoint]
    clustering: KMeansResult
    profile: BBVProfile

    def starts(self) -> list[tuple[int, float]]:
        """(start instruction, weight) pairs sorted by position."""
        pairs = [
            (point.interval_index * self.interval_size, point.weight)
            for point in self.points
        ]
        return sorted(pairs)


def select_simpoints(
    workload: Workload,
    total_instructions: int,
    interval_size: int,
    max_points: int = 30,
    seed: int = 0,
) -> SimPointSelection:
    """Run the full SimPoint analysis pipeline.

    The paper's experiments use 30 simulation points at varying interval
    sizes; `max_points` is capped by the number of intervals available.
    """
    profile = profile_bbv(workload, total_instructions, interval_size)
    vectors = profile.normalized()
    projected = random_projection(vectors, seed=seed)
    clustering = kmeans(projected, k=min(max_points, len(vectors)), seed=seed)

    points: list[SimPoint] = []
    total = len(vectors)
    for cluster in range(clustering.k):
        members = np.flatnonzero(clustering.assignments == cluster)
        if len(members) == 0:
            continue
        centroid = clustering.centroids[cluster]
        distances = np.sum(
            (projected[members] - centroid) ** 2, axis=1
        )
        representative = int(members[int(np.argmin(distances))])
        points.append(
            SimPoint(
                interval_index=representative,
                weight=len(members) / total,
                cluster=cluster,
            )
        )
    return SimPointSelection(
        workload_name=workload.name,
        interval_size=interval_size,
        points=points,
        clustering=clustering,
        profile=profile,
    )


@dataclass
class SimPointRunResult:
    """IPC estimate produced by simulating the chosen points."""

    workload_name: str
    method_name: str
    interval_size: int
    point_ipcs: list[float]
    weights: list[float]
    cost: WarmupCost
    wall_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Cluster-weighted IPC estimate."""
        total_weight = sum(self.weights)
        if total_weight == 0:
            return 0.0
        return (
            sum(w * ipc for w, ipc in zip(self.weights, self.point_ipcs))
            / total_weight
        )

    def relative_error(self, true_ipc: float) -> float:
        return abs(true_ipc - self.ipc) / abs(true_ipc)


def run_simpoints(
    workload: Workload,
    selection: SimPointSelection,
    warmup: WarmupMethod | None = None,
    configs: SimulatorConfigs | None = None,
) -> SimPointRunResult:
    """Simulate each chosen point in detail and combine the IPCs.

    `warmup` controls what happens while skipping to each point: None
    reproduces plain SimPoint (state left stale — the paper's "50K"/"10M"
    rows); a :class:`SmartsWarmup` instance reproduces the
    "50K-SMARTS"/"10M-SMARTS" rows.
    """
    configs = configs if configs is not None else SimulatorConfigs()
    method = warmup if warmup is not None else NoWarmup()
    machine = workload.make_machine()
    hierarchy = MemoryHierarchy(configs.hierarchy)
    predictor = BranchPredictor(configs.predictor)
    timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
    method.bind(SimulationContext(
        machine=machine, hierarchy=hierarchy, predictor=predictor,
    ))

    point_ipcs: list[float] = []
    weights: list[float] = []
    position = 0
    start_time = time.perf_counter()
    for start, weight in selection.starts():
        gap = start - position
        if gap > 0:
            method.skip(gap)
        position = start
        hook = method.pre_cluster()
        result = timing.run(selection.interval_size, pre_branch_hook=hook)
        method.post_cluster()
        position += result.instructions
        method.cost.hot_instructions += result.instructions
        point_ipcs.append(result.ipc)
        weights.append(weight)
    wall_seconds = time.perf_counter() - start_time

    return SimPointRunResult(
        workload_name=workload.name,
        method_name=f"SimPoint+{method.name}",
        interval_size=selection.interval_size,
        point_ipcs=point_ipcs,
        weights=weights,
        cost=method.cost,
        wall_seconds=wall_seconds,
    )
