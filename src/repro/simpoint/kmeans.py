"""K-means clustering with random projection, as used by SimPoint.

SimPoint reduces each basic-block vector to ~15 dimensions by random
projection (clustering quality is preserved while distance computations
get cheap), seeds k-means with the k-means++ heuristic, runs Lloyd
iterations to convergence, and can score alternative k values with the
Bayesian Information Criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: SimPoint's default projected dimensionality.
DEFAULT_PROJECTED_DIMS = 15


@dataclass
class KMeansResult:
    """One clustering of the interval vectors."""

    assignments: np.ndarray     # interval -> cluster id
    centroids: np.ndarray       # cluster id -> projected centroid
    inertia: float              # sum of squared distances to centroids
    k: int

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.assignments, minlength=self.k)


def random_projection(vectors: np.ndarray, dims: int = DEFAULT_PROJECTED_DIMS,
                      seed: int = 0) -> np.ndarray:
    """Project row vectors to `dims` dimensions with a Gaussian matrix."""
    rng = np.random.default_rng(seed)
    if vectors.shape[1] <= dims:
        return vectors.astype(np.float64)
    matrix = rng.standard_normal((vectors.shape[1], dims))
    matrix /= np.sqrt(dims)
    return vectors @ matrix


def _kmeans_plus_plus(points: np.ndarray, k: int,
                      rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    distances = np.sum((points - centroids[0]) ** 2, axis=1)
    for index in range(1, k):
        total = distances.sum()
        if total <= 0:
            centroids[index:] = points[int(rng.integers(0, n))]
            break
        probabilities = distances / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[index] = points[choice]
        distances = np.minimum(
            distances, np.sum((points - centroids[index]) ** 2, axis=1)
        )
    return centroids


def kmeans(points: np.ndarray, k: int, seed: int = 0,
           max_iterations: int = 100, restarts: int = 3) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding and multiple restarts."""
    n = points.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, n)
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None

    for _restart in range(max(1, restarts)):
        centroids = _kmeans_plus_plus(points, k, rng)
        assignments = np.zeros(n, dtype=np.int64)
        for _iteration in range(max_iterations):
            # Assign.
            distances = (
                np.sum(points ** 2, axis=1, keepdims=True)
                - 2.0 * points @ centroids.T
                + np.sum(centroids ** 2, axis=1)
            )
            new_assignments = np.argmin(distances, axis=1)
            if np.array_equal(new_assignments, assignments) and _iteration:
                break
            assignments = new_assignments
            # Update; an emptied cluster keeps its old centroid.
            for cluster in range(k):
                members = points[assignments == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        inertia = float(
            np.sum(
                (points - centroids[assignments]) ** 2
            )
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                assignments=assignments.copy(),
                centroids=centroids.copy(),
                inertia=inertia,
                k=k,
            )
    return best


def bic_score(points: np.ndarray, result: KMeansResult) -> float:
    """Bayesian Information Criterion of a clustering (higher is better).

    The x-means formulation SimPoint uses to pick k: log-likelihood of a
    spherical-Gaussian mixture minus a complexity penalty.
    """
    n, dims = points.shape
    k = result.k
    if n <= k:
        return float("-inf")
    variance = result.inertia / max(1e-12, (n - k) * dims)
    variance = max(variance, 1e-12)
    sizes = result.cluster_sizes()
    log_likelihood = 0.0
    for cluster in range(k):
        size = sizes[cluster]
        if size <= 0:
            continue
        log_likelihood += (
            size * np.log(size / n)
            - 0.5 * size * dims * np.log(2.0 * np.pi * variance)
            - 0.5 * (size - 1) * dims
        )
    num_parameters = k * (dims + 1)
    return float(log_likelihood - 0.5 * num_parameters * np.log(n))


def choose_k(points: np.ndarray, max_k: int, seed: int = 0) -> KMeansResult:
    """Search k in [1, max_k], keeping the best BIC clustering."""
    best_result: KMeansResult | None = None
    best_score = float("-inf")
    for k in range(1, max_k + 1):
        result = kmeans(points, k, seed=seed + k)
        score = bic_score(points, result)
        if score > best_score:
            best_score = score
            best_result = result
    return best_result
