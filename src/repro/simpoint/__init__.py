"""SimPoint: BBV profiling, k-means, and simulation-point selection."""

from .bbv import BBVProfile, profile_bbv
from .kmeans import (
    KMeansResult,
    kmeans,
    random_projection,
    bic_score,
    choose_k,
    DEFAULT_PROJECTED_DIMS,
)
from .simpoint import (
    SimPoint,
    SimPointSelection,
    SimPointRunResult,
    select_simpoints,
    run_simpoints,
)
from .variance import (
    VarianceSimPointSelection,
    VarianceSimPointResult,
    select_variance_simpoints,
    run_variance_simpoints,
)

__all__ = [
    "BBVProfile",
    "profile_bbv",
    "KMeansResult",
    "kmeans",
    "random_projection",
    "bic_score",
    "choose_k",
    "DEFAULT_PROJECTED_DIMS",
    "SimPoint",
    "SimPointSelection",
    "SimPointRunResult",
    "select_simpoints",
    "run_simpoints",
    "VarianceSimPointSelection",
    "VarianceSimPointResult",
    "select_variance_simpoints",
    "run_variance_simpoints",
]
