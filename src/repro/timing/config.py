"""Timing-core configuration (paper §4 experimental framework).

The paper's machine: fetch/dispatch 8 per cycle, issue/retire 4 per cycle,
eight fully pipelined universal function units, 64 in-flight instructions,
32-entry issue queue, 64-entry load/store queue, seven pipeline stages,
five-cycle minimum branch misprediction penalty, 2 GHz clock, and
architectural checkpoints allowing speculation past eight branches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    """Widths, depths, and capacities of the out-of-order core."""

    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 4
    retire_width: int = 4
    num_function_units: int = 8
    rob_entries: int = 64
    issue_queue_entries: int = 32
    lsq_entries: int = 64
    pipeline_depth: int = 7
    #: Stages between fetch and dispatch (front-end portion of the pipe).
    frontend_depth: int = 3
    mispredict_penalty: int = 5
    max_inflight_branches: int = 8
    frequency_ghz: float = 2.0

    def __post_init__(self) -> None:
        positive = (
            "fetch_width", "dispatch_width", "issue_width", "retire_width",
            "num_function_units", "rob_entries", "issue_queue_entries",
            "lsq_entries", "pipeline_depth", "frontend_depth",
            "max_inflight_branches",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")
        if self.frontend_depth >= self.pipeline_depth:
            raise ValueError("frontend_depth must be less than pipeline_depth")


def paper_core_config() -> CoreConfig:
    """The configuration used throughout the paper's evaluation."""
    return CoreConfig()
