"""Co-simulation validation (paper §4).

"The functional simulator is used to validate the results of the timing
simulator.  If the timing simulator attempts to commit a wrong value,
the functional simulator will assert an error."

Our timing model derives architectural state from the functional machine
directly, so the classical commit-time check is recast as lockstep
shadow execution: a second, independent functional machine executes the
same program and the validator asserts that both machines retire the
same instructions with the same architectural effects.  This catches
exactly the class of bugs the paper's check targets — any divergence
between what the timing pipeline believes executed and the architectural
truth — and doubles as a regression harness for the interpreter itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functional import FunctionalMachine
from ..isa import NUM_REGISTERS


class CosimDivergenceError(AssertionError):
    """The two simulators disagreed about architectural state."""

    def __init__(self, instruction_number: int, field: str,
                 primary, shadow) -> None:
        super().__init__(
            f"co-simulation divergence at instruction "
            f"{instruction_number}: {field} primary={primary!r} "
            f"shadow={shadow!r}"
        )
        self.instruction_number = instruction_number
        self.field = field


@dataclass
class CosimReport:
    """Summary of one validated run."""

    instructions_checked: int
    register_checks: int
    memory_checks: int

    def __str__(self) -> str:
        return (
            f"cosim OK: {self.instructions_checked} instructions, "
            f"{self.register_checks} register checks, "
            f"{self.memory_checks} memory checks"
        )


class CosimValidator:
    """Lockstep shadow execution against a primary functional machine.

    Parameters
    ----------
    primary:
        The machine under validation (typically the one the timing
        simulator drives).
    check_interval:
        Full register-file comparison every N instructions (per-step
        checks always compare PC and the executed instruction's
        destination/memory effect).
    """

    def __init__(self, primary: FunctionalMachine,
                 check_interval: int = 64) -> None:
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.primary = primary
        self.shadow = FunctionalMachine(
            primary.program, primary.memory.copy(),
        )
        self.shadow.pc = primary.pc
        self.shadow.registers = list(primary.registers)
        self.shadow.instructions_retired = primary.instructions_retired
        self.check_interval = check_interval
        self.register_checks = 0
        self.memory_checks = 0

    def step(self) -> None:
        """Advance both machines one instruction and cross-check."""
        primary = self.primary
        shadow = self.shadow
        count = primary.instructions_retired

        primary_result = primary.step()
        shadow_result = shadow.step()

        if primary_result.index != shadow_result.index:
            raise CosimDivergenceError(
                count, "instruction index",
                primary_result.index, shadow_result.index,
            )
        if primary.pc != shadow.pc:
            raise CosimDivergenceError(count, "next pc",
                                       primary.pc, shadow.pc)
        if primary_result.mem_address != shadow_result.mem_address:
            raise CosimDivergenceError(
                count, "memory address",
                primary_result.mem_address, shadow_result.mem_address,
            )
        if primary_result.mem_address >= 0:
            self.memory_checks += 1
            primary_word = primary.memory.load(primary_result.mem_address)
            shadow_word = shadow.memory.load(shadow_result.mem_address)
            if primary_word != shadow_word:
                raise CosimDivergenceError(
                    count, "memory word", primary_word, shadow_word,
                )
        if count % self.check_interval == 0:
            self.register_checks += 1
            for register in range(NUM_REGISTERS):
                if primary.registers[register] != \
                        shadow.registers[register]:
                    raise CosimDivergenceError(
                        count, f"r{register}",
                        primary.registers[register],
                        shadow.registers[register],
                    )

    def run(self, count: int) -> CosimReport:
        """Validate `count` instructions of lockstep execution."""
        executed = 0
        while executed < count and not self.primary.halted:
            self.step()
            executed += 1
        return CosimReport(
            instructions_checked=executed,
            register_checks=self.register_checks,
            memory_checks=self.memory_checks,
        )


def validate_workload(workload, count: int = 50_000,
                      check_interval: int = 64) -> CosimReport:
    """Convenience wrapper: cosim-validate a workload from reset."""
    machine = workload.make_machine()
    validator = CosimValidator(machine, check_interval=check_interval)
    return validator.run(count)
