"""Resource-constraint primitives used by the timing core.

The timing model processes instructions in program order, assigning each a
set of event times (fetch, dispatch, issue, complete, retire) constrained
by bandwidth (instructions per cycle at each stage) and capacity (ROB,
issue queue, LSQ, in-flight branches).  These helpers encapsulate the two
constraint kinds.
"""

from __future__ import annotations

import heapq
from collections import deque


class BandwidthLimiter:
    """At most `width` events per cycle; events are requested in
    non-decreasing... no — arbitrary order is tolerated by re-requesting at
    a later cycle until a slot is free.

    `take(cycle)` returns the earliest cycle >= `cycle` with a free slot
    and consumes that slot.  Because the model walks instructions in
    program order, requests are almost always non-decreasing; the limiter
    only tracks the current cycle's usage plus a short overflow horizon.
    """

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = -1
        self._used = 0

    def take(self, cycle: int) -> int:
        if cycle > self._cycle:
            self._cycle = cycle
            self._used = 1
            return cycle
        # Same cycle as the previous request (program order guarantees we
        # never go backwards past a full cycle boundary).
        if cycle < self._cycle:
            cycle = self._cycle
        if self._used < self.width:
            self._used += 1
            return cycle
        self._cycle = cycle + 1
        self._used = 1
        return cycle + 1

    def reset(self) -> None:
        self._cycle = -1
        self._used = 0


class FifoCapacity:
    """Capacity constraint for a structure freed in program order (ROB).

    `acquire(ready)` returns the earliest cycle >= `ready` at which a slot
    is free; `release_at(cycle)` records when the acquired slot will free.
    """

    __slots__ = ("capacity", "_release_times")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._release_times: deque[int] = deque()

    def acquire(self, ready: int) -> int:
        if len(self._release_times) >= self.capacity:
            oldest = self._release_times.popleft()
            if oldest + 1 > ready:
                ready = oldest + 1
        return ready

    def release_at(self, cycle: int) -> None:
        self._release_times.append(cycle)

    def occupancy(self) -> int:
        return len(self._release_times)

    def reset(self) -> None:
        self._release_times.clear()


class PooledCapacity:
    """Capacity constraint for a structure freed out of order (IQ, LSQ,
    branch checkpoints): the next free slot is the minimum release time."""

    __slots__ = ("capacity", "_release_times")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._release_times: list[int] = []

    def acquire(self, ready: int) -> int:
        if len(self._release_times) >= self.capacity:
            earliest = heapq.heappop(self._release_times)
            if earliest + 1 > ready:
                ready = earliest + 1
        return ready

    def release_at(self, cycle: int) -> None:
        heapq.heappush(self._release_times, cycle)

    def occupancy(self) -> int:
        return len(self._release_times)

    def reset(self) -> None:
        self._release_times.clear()
