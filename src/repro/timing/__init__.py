"""Detailed (hot) timing simulation of the out-of-order core."""

from .config import CoreConfig, paper_core_config
from .core import TimingSimulator, TimingResult
from .resources import BandwidthLimiter, FifoCapacity, PooledCapacity

__all__ = [
    "CoreConfig",
    "paper_core_config",
    "TimingSimulator",
    "TimingResult",
    "BandwidthLimiter",
    "FifoCapacity",
    "PooledCapacity",
]
