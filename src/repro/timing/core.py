"""The detailed ("hot") timing simulator.

A dependence- and resource-constrained model of the paper's out-of-order
superscalar core.  Instructions are processed in program order by driving
the functional machine one step at a time; each instruction is assigned
fetch, dispatch, issue, complete, and retire cycles constrained by:

- fetch bandwidth (8/cycle) and instruction-cache latency per fetched block;
- front-end depth (fetch-to-dispatch stages of the 7-stage pipe);
- ROB (64), issue-queue (32) and LSQ (64) capacities;
- issue (4/cycle) and retire (4/cycle) bandwidth, in-order retirement;
- register dependences through per-register ready times;
- data-cache latency for loads (stores drain through a store buffer);
- branch prediction: mispredicted control transfers redirect fetch after
  resolution plus the minimum 5-cycle penalty; at most eight unresolved
  branches may be in flight (architectural checkpoints).

This is a simplification of a full cycle-by-cycle model (see DESIGN.md §2):
it captures exactly the mechanisms through which stale cache and branch-
predictor state perturb IPC, which is what the paper's warm-up comparison
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..functional import FunctionalMachine
from ..functional.predecode import predecode_program
from ..isa import NUM_REGISTERS
from .config import CoreConfig, paper_core_config
from .resources import BandwidthLimiter, FifoCapacity, PooledCapacity


@dataclass
class TimingResult:
    """Outcome of one hot-simulation run.

    When the run was started with ``measure_after > 0`` (SMARTS-style
    detailed warming), `instructions`/`cycles` still cover the whole run
    but `measured_instructions`/`measured_cycles` cover only the portion
    after the ramp, and :attr:`ipc` is computed from the measured window.
    """

    instructions: int
    cycles: int
    measured_instructions: int = -1
    measured_cycles: int = -1

    def __post_init__(self) -> None:
        if self.measured_instructions < 0:
            self.measured_instructions = self.instructions
        if self.measured_cycles < 0:
            self.measured_cycles = self.cycles

    @property
    def ipc(self) -> float:
        """Instructions retired per cycle over the measured window."""
        if self.measured_cycles <= 0:
            return 0.0
        return self.measured_instructions / self.measured_cycles


class TimingSimulator:
    """Drives a :class:`FunctionalMachine` through the detailed core model.

    Cache and branch-predictor state persist across calls to :meth:`run`
    (that persistence *is* the subject of the paper); pipeline occupancy,
    bus schedules, and the cycle counter restart at zero for each run.
    """

    def __init__(
        self,
        machine: FunctionalMachine,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        config: CoreConfig | None = None,
    ) -> None:
        self.machine = machine
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.config = config if config is not None else paper_core_config()

    def run(self, max_instructions: int, pre_branch_hook=None,
            measure_after: int = 0) -> TimingResult:
        """Simulate up to `max_instructions` in detail; return IPC data.

        Parameters
        ----------
        max_instructions:
            Number of instructions to retire before stopping.
        pre_branch_hook:
            Optional callable ``hook(pc_index, inst)`` invoked before each
            control transfer is predicted.  Used by on-demand warm-up
            methods (paper §3.2) to reconstruct predictor entries lazily.
        measure_after:
            SMARTS-style *detailed warming*: the first `measure_after`
            instructions are simulated in full detail but excluded from
            the measured IPC, hiding the empty-pipeline/fresh-bus ramp
            that a mid-stream cluster would not see.
        """
        config = self.config
        machine = self.machine
        program = machine.program
        instructions = program.instructions
        hierarchy = self.hierarchy
        predictor = self.predictor
        step = machine.step

        # Predecoded columns replace the per-instruction attribute/method
        # lookups (is_mem/is_control/is_load/is_store, latency,
        # destination(), sources()) with list indexing; the Instruction
        # object itself is only materialized for control transfers, which
        # the branch hook and predictor interfaces take by object.
        decoded = predecode_program(program)
        is_mem_col = decoded.is_mem
        is_control_col = decoded.is_control
        is_load_col = decoded.is_load
        is_store_col = decoded.is_store
        latency_col = decoded.latency
        dest_col = decoded.dest
        sources_col = decoded.sources

        # The cycle counter restarts at zero each run; bus schedules from a
        # previous cluster would otherwise stall the whole pipeline.
        hierarchy.l1_bus.rewind()
        hierarchy.l2_bus.rewind()

        fetch_limiter = BandwidthLimiter(config.fetch_width)
        dispatch_limiter = BandwidthLimiter(config.dispatch_width)
        issue_limiter = BandwidthLimiter(config.issue_width)
        retire_limiter = BandwidthLimiter(config.retire_width)
        rob = FifoCapacity(config.rob_entries)
        issue_queue = PooledCapacity(config.issue_queue_entries)
        lsq = PooledCapacity(config.lsq_entries)
        checkpoints = PooledCapacity(config.max_inflight_branches)

        reg_ready = [0] * NUM_REGISTERS
        frontend_depth = config.frontend_depth
        mispredict_penalty = config.mispredict_penalty
        instruction_bytes = program.instruction_bytes
        code_base = program.code_base
        insts_per_block = max(
            1, hierarchy.l1i.config.line_bytes // instruction_bytes
        )
        timed_access = hierarchy.timed_access

        next_fetch_cycle = 0
        current_fetch_block = -1
        previous_retire = 0
        last_retire = 0
        retired = 0
        ramp_boundary_cycle = 0

        while retired < max_instructions and not machine.halted:
            pc = machine.pc
            is_mem = is_mem_col[pc]
            is_control = is_control_col[pc]

            # ---- fetch ---------------------------------------------------
            fetch_ready = next_fetch_cycle
            fetch_block = pc // insts_per_block
            if fetch_block != current_fetch_block:
                current_fetch_block = fetch_block
                latency = timed_access(
                    code_base + pc * instruction_bytes, False, True,
                    fetch_ready,
                )
                fetch_ready += latency - 1  # a hit adds no bubble
            fetch_cycle = fetch_limiter.take(fetch_ready)

            # ---- dispatch ------------------------------------------------
            dispatch_ready = fetch_cycle + frontend_depth
            dispatch_ready = rob.acquire(dispatch_ready)
            dispatch_ready = issue_queue.acquire(dispatch_ready)
            if is_mem:
                dispatch_ready = lsq.acquire(dispatch_ready)
            if is_control:
                dispatch_ready = checkpoints.acquire(dispatch_ready)
            dispatch_cycle = dispatch_limiter.take(dispatch_ready)

            # ---- execute architecturally --------------------------------
            result = step()
            retired += 1
            if result.halted:
                last_retire = max(last_retire, dispatch_cycle + 1)
                break

            # ---- issue ---------------------------------------------------
            ready = dispatch_cycle + 1
            for source in sources_col[pc]:
                source_ready = reg_ready[source]
                if source_ready > ready:
                    ready = source_ready
            issue_cycle = issue_limiter.take(ready)
            issue_queue.release_at(issue_cycle)

            # ---- complete ------------------------------------------------
            is_store = False
            if is_load_col[pc]:
                latency = timed_access(
                    result.mem_address, False, False, issue_cycle
                )
                complete = issue_cycle + latency
            elif is_store_col[pc]:
                # The store leaves the pipe once address+data are ready;
                # the write drains through the hierarchy in the background.
                is_store = True
                complete = issue_cycle + 1
                timed_access(result.mem_address, True, False, complete)
            else:
                complete = issue_cycle + latency_col[pc]

            destination = dest_col[pc]
            if destination >= 0:
                reg_ready[destination] = complete

            # ---- control resolution -------------------------------------
            if is_control:
                inst = instructions[pc]
                if pre_branch_hook is not None:
                    pre_branch_hook(pc, inst)
                mispredicted = predictor.predict_and_update(
                    pc, inst, result.taken, result.next_index
                )
                checkpoints.release_at(complete)
                if mispredicted:
                    next_fetch_cycle = complete + mispredict_penalty
                    current_fetch_block = -1  # refetch after redirect
                elif result.taken:
                    # Even a correctly predicted taken transfer ends the
                    # current fetch group.
                    next_fetch_cycle = fetch_cycle + 1

            # ---- retire --------------------------------------------------
            retire_ready = complete + 1
            if previous_retire > retire_ready:
                retire_ready = previous_retire
            retire_cycle = retire_limiter.take(retire_ready)
            previous_retire = retire_cycle
            rob.release_at(retire_cycle)
            if is_mem:
                lsq.release_at(retire_cycle if is_store else complete)
            last_retire = retire_cycle
            if retired == measure_after:
                ramp_boundary_cycle = retire_cycle

        total_cycles = last_retire + 1
        if measure_after > 0 and retired > measure_after:
            return TimingResult(
                instructions=retired,
                cycles=total_cycles,
                measured_instructions=retired - measure_after,
                measured_cycles=last_retire - ramp_boundary_cycle,
            )
        return TimingResult(instructions=retired, cycles=total_cycles)
