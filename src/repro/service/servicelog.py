"""Structured JSON service log (``REPRO_SERVICE_LOG`` JSONL).

The service's HTTP handler used to silence ``log_message`` entirely —
good for test noise, terrible for operating a deployment.  This module
is the replacement: one JSON object per line, appended with the same
single-``write``-on-``O_APPEND`` discipline as the events firehose, so
handler threads and the worker thread interleave whole lines, never
fragments.

Two line kinds share the file:

- ``access`` — one per HTTP request: method, normalized route, status,
  duration, tenant and ``run_id`` when the route touched a job;
- ``job`` — one per job state transition (queued/running/done/failed):
  tenant, kind, ``run_id``, queue-wait and execution latency.

Off by default (``path=None``): a logging-off service makes zero writes
and stays byte-identical to previous releases.  A failing path warns
once on stderr and goes quiet, like :func:`~repro.telemetry.emit_event`
— the log is an observation channel and must never take a request down.
"""

from __future__ import annotations

import json
import os
import sys
import time

#: Environment variable naming the service-log JSONL file.
SERVICE_LOG_ENV_VAR = "REPRO_SERVICE_LOG"

_warned_paths: set[str] = set()


def service_log_path_from_env() -> str | None:
    """The ``REPRO_SERVICE_LOG`` path, or None when logging is off."""
    path = os.environ.get(SERVICE_LOG_ENV_VAR, "").strip()
    return path or None


class ServiceLog:
    """Append-only structured log bound to one path (or disabled)."""

    def __init__(self, path: str | None) -> None:
        self.path = path

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def write(self, kind: str, /, **fields) -> None:
        """Append one ``{"log": kind, "ts": ..., "pid": ..., **fields}``
        line; drops None-valued fields so lines stay grep-friendly.
        `kind` is positional-only so a field named ``kind`` (the job
        kind) can ride ``fields``."""
        if self.path is None:
            return
        record = {"log": kind, "ts": time.time(), "pid": os.getpid()}
        record.update(
            (key, value) for key, value in fields.items()
            if value is not None
        )
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        try:
            fd = os.open(self.path,
                         os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError as exc:
            if self.path not in _warned_paths:
                _warned_paths.add(self.path)
                print(
                    f"repro: warning: cannot append service log to "
                    f"{self.path!r} ({exc}); further failures for this "
                    f"path will be silent",
                    file=sys.stderr,
                )

    def access(self, *, method: str, route: str, status: int,
               duration_seconds: float, tenant: str | None = None,
               run_id: str | None = None,
               job_id: str | None = None) -> None:
        """One HTTP request, after the response was (or failed to be)
        written."""
        self.write("access", method=method, route=route, status=status,
                   duration_ms=round(duration_seconds * 1000.0, 3),
                   tenant=tenant, run_id=run_id, job_id=job_id)

    def job(self, *, state: str, job_id: str, tenant: str,
            kind: str, run_id: str | None = None,
            queue_wait_seconds: float | None = None,
            run_seconds: float | None = None,
            error: str | None = None,
            cached: bool | None = None) -> None:
        """One job lifecycle transition from the worker thread."""
        self.write("job", state=state, job_id=job_id, tenant=tenant,
                   kind=kind, run_id=run_id,
                   queue_wait_seconds=queue_wait_seconds,
                   run_seconds=run_seconds, error=error, cached=cached)


#: Shared disabled instance (the null-object default).
NULL_SERVICE_LOG = ServiceLog(None)
