"""Long-running simulation service: HTTP job API over the executor layer.

See docs/parallel-execution.md for the deployment walkthrough.  The
package is stdlib-only: ``http.server`` for transport, the
:mod:`repro.api` request/result surface for the wire format, and the
executor registry (:mod:`repro.harness.executor`) for fan-out.
"""

from .client import ServiceClient, ServiceError
from .jobs import JOB_STATES, JobRecord, JobStore, QuotaExceeded
from .server import DEFAULT_HOST, DEFAULT_PORT, SimulationService
from .servicelog import (
    NULL_SERVICE_LOG,
    SERVICE_LOG_ENV_VAR,
    ServiceLog,
    service_log_path_from_env,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "NULL_SERVICE_LOG",
    "QuotaExceeded",
    "SERVICE_LOG_ENV_VAR",
    "ServiceClient",
    "ServiceError",
    "ServiceLog",
    "SimulationService",
]
