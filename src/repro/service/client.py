"""A small stdlib client for the simulation service.

:class:`ServiceClient` wraps the JSON routes of
:class:`~.server.SimulationService` with typed helpers — submit a
:class:`~repro.api.RunRequest`, poll for completion, reconstruct the
:class:`~repro.api.RunResult` — so callers (the ``repro submit`` CLI,
the tests, remote scripts) never hand-build URLs or parse raw bodies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..api import RunRequest, RunResult


class ServiceError(Exception):
    """A non-success response from the service, with its status code."""

    def __init__(self, status: int, payload: dict) -> None:
        detail = payload.get("error", payload)
        super().__init__(f"service returned HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Typed access to one running simulation service."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _call(self, path: str, body: "dict | None" = None,
              *, expect: "tuple[int, ...]" = (200,)) -> "tuple[int, dict]":
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                status = response.status
                payload = json.loads(response.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            status = exc.code
            try:
                payload = json.loads(exc.read().decode() or "{}")
            except (ValueError, OSError):
                payload = {"error": str(exc)}
        if status not in expect:
            raise ServiceError(status, payload)
        return status, payload

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._call("/healthz")[1]

    def stats(self) -> dict:
        return self._call("/stats")[1]

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition."""
        url = f"{self.base_url}/metrics"
        with urllib.request.urlopen(url,
                                    timeout=self.timeout) as response:
            if response.status != 200:
                raise ServiceError(response.status, {"error": "/metrics"})
            return response.read().decode("utf-8")

    def executors(self) -> list:
        return self._call("/executors")[1]["executors"]

    def submit(self, request: RunRequest, *,
               tenant: str = "default") -> str:
        """POST the request; returns the job id (raises on 4xx/5xx)."""
        _, payload = self._call(
            "/jobs",
            {"tenant": tenant, "request": request.to_payload()},
            expect=(202,),
        )
        return payload["job_id"]

    def status(self, job_id: str) -> dict:
        return self._call(f"/jobs/{job_id}")[1]

    def result(self, job_id: str, *, timeout: float = 300.0,
               poll_seconds: float = 0.1) -> RunResult:
        """Poll ``/results/<id>`` until done; reconstruct the RunResult.

        A failed job raises :class:`ServiceError` carrying the
        service's error string; a job still pending after `timeout`
        seconds raises ``TimeoutError``.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self._call(
                f"/results/{job_id}", expect=(200, 202))
            if status == 200:
                return RunResult(
                    request=RunRequest.from_payload(payload["request"]),
                    payload=payload["payload"],
                    cached=payload["cached"],
                    wall_seconds=payload["wall_seconds"],
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('state')!r} "
                    f"after {timeout:.0f}s")
            time.sleep(poll_seconds)

    def run(self, request: RunRequest, *, tenant: str = "default",
            timeout: float = 300.0) -> RunResult:
        """Submit and wait: the one-call convenience wrapper."""
        job_id = self.submit(request, tenant=tenant)
        return self.result(job_id, timeout=timeout)
