"""Job bookkeeping for the simulation service.

A :class:`JobStore` is the service's single source of truth: a FIFO
queue of :class:`JobRecord` entries feeding one worker thread, plus
per-tenant quota enforcement so a chatty client cannot starve the rest
of the queue.  It is deliberately free of HTTP concerns — the server
module translates store outcomes into status codes — and free of
execution concerns: the store never imports the simulator.

Thread-safety: every public method takes the store lock; the worker
thread blocks on the internal queue, so submission and execution never
poll.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

#: Lifecycle: queued -> running -> done | failed.
JOB_STATES = ("queued", "running", "done", "failed")

#: Pending = holding queue capacity (queued or running).
_PENDING_STATES = frozenset({"queued", "running"})


class QuotaExceeded(Exception):
    """A tenant has too many pending jobs (the HTTP layer maps to 429)."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} has {limit} pending job(s), the maximum; "
            f"wait for one to finish before submitting more")
        self.tenant = tenant
        self.limit = limit


@dataclass
class JobRecord:
    """One submitted request and everything learned about it since."""

    job_id: str
    tenant: str
    request: object  # repro.api.RunRequest
    #: Correlation id minted at submission; stamped on every telemetry
    #: record the job produces and on the service's structured log, so
    #: one grep joins the HTTP request to its worker-process artifacts.
    run_id: "str | None" = None
    state: str = "queued"
    error: "str | None" = None
    result: object = None  # repro.api.RunResult once done
    submitted_at: float = field(default_factory=time.time)
    started_at: "float | None" = None
    finished_at: "float | None" = None
    #: Monotonic twins of the wall-clock timestamps above: latency
    #: measurements (queue wait, execution) must not jump with NTP.
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: "float | None" = None
    finished_mono: "float | None" = None

    def queue_wait_seconds(self) -> "float | None":
        """Submission-to-start latency (None while still queued)."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.submitted_mono

    def run_seconds(self) -> "float | None":
        """Start-to-finish latency (None until the job finishes)."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def status_payload(self) -> dict:
        """The JSON body for ``GET /jobs/<id>``."""
        payload = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "request": self.request.to_payload(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.run_id is not None:
            payload["run_id"] = self.run_id
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["cached"] = self.result.cached
            payload["wall_seconds"] = self.result.wall_seconds
        return payload


class JobStore:
    """Queue, registry, and quota ledger for service jobs."""

    def __init__(self, *, max_pending_per_tenant: int = 4,
                 max_jobs: int = 10_000) -> None:
        if max_pending_per_tenant < 1:
            raise ValueError(
                f"max_pending_per_tenant must be >= 1, "
                f"got {max_pending_per_tenant}")
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: "dict[str, JobRecord]" = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._ids = itertools.count(1)

    # -- submission --------------------------------------------------------

    def pending_count(self, tenant: str) -> int:
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.tenant == tenant and job.state in _PENDING_STATES
            )

    def submit(self, tenant: str, request,
               run_id: "str | None" = None) -> JobRecord:
        """Enqueue a request, enforcing the tenant's pending-job quota."""
        with self._lock:
            pending = sum(
                1 for job in self._jobs.values()
                if job.tenant == tenant and job.state in _PENDING_STATES
            )
            if pending >= self.max_pending_per_tenant:
                raise QuotaExceeded(tenant, self.max_pending_per_tenant)
            if len(self._jobs) >= self.max_jobs:
                # A global backstop against unbounded memory; tenants
                # hitting it read the same retryable signal as a quota.
                raise QuotaExceeded(tenant, self.max_pending_per_tenant)
            job_id = f"job-{next(self._ids):06d}"
            record = JobRecord(job_id=job_id, tenant=tenant,
                               request=request, run_id=run_id)
            self._jobs[job_id] = record
        self._queue.put(job_id)
        return record

    # -- worker side -------------------------------------------------------

    def next_job(self, timeout: "float | None" = None) -> "JobRecord | None":
        """Block for the next queued job; None on timeout."""
        try:
            job_id = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        with self._lock:
            return self._jobs.get(job_id)

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "running"
            job.started_at = time.time()
            job.started_mono = time.monotonic()

    def mark_done(self, job_id: str, result) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "done"
            job.result = result
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()

    def mark_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "failed"
            job.error = error
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> "JobRecord | None":
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict:
        """Jobs per state (for ``GET /stats``)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def queue_depth(self) -> int:
        """Jobs submitted but not yet started (the ``queued`` gauge)."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state == "queued")

    def running_count(self) -> int:
        """Jobs currently executing (the ``inflight`` gauge)."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state == "running")
