"""The long-running simulation service: a stdlib-only JSON HTTP API.

:class:`SimulationService` wires three pieces together:

- a :class:`~.jobs.JobStore` holding submitted jobs and per-tenant
  quotas,
- one worker thread draining the store and running each request
  through :func:`repro.api.execute_request` — the same path inline
  callers use, including the content-addressed result-cache
  read-through, under the service's validated
  :class:`~repro.harness.RunOptions`,
- a ``ThreadingHTTPServer`` translating HTTP into store operations.

Routes::

    POST /jobs          {"tenant": "...", "request": {RunRequest JSON}}
                        -> 202 {"job_id": ..., "run_id": ..., "state": "queued"}
                        -> 400 on malformed JSON / unknown fields
                        -> 429 when the tenant's pending quota is full
    GET  /jobs/<id>     -> 200 job status (state, run_id, timestamps, error)
    GET  /results/<id>  -> 200 RunResult JSON when done
                        -> 202 {"state": ...} while queued/running
                        -> 500 {"error": ...} when failed
    GET  /healthz       -> 200 {"status": "ok", "version", "uptime_seconds",
                           "queue_depth"}
    GET  /stats         -> 200 counters (submitted/completed/failed,
                           cache_hits, executed, per-state job counts)
    GET  /metrics       -> 200 Prometheus text exposition (counters,
                           queue-depth/in-flight gauges, queue-wait and
                           execution-latency histograms per job kind,
                           HTTP request counters and latency)
    GET  /executors     -> 200 registered executor backends

Observability: every submitted job gets a correlation ``run_id``
(:mod:`repro.telemetry.runid`) exported into its execution extent, so
its span/event/trace records across worker processes grep under one id;
``REPRO_SERVICE_LOG`` (or ``RunOptions.service_log``) enables the
structured JSON access/job log (:mod:`.servicelog`).  Both default off,
in which case responses and results stay byte-identical to inline
execution.

Everything is stdlib (``http.server``, ``json``, ``threading``); the
service needs no extra dependencies to deploy.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import RunRequest, execute_request
from ..harness.executor import describe_executors
from ..harness.options import RunOptions
from ..store.checkpoint import global_store_stats
from ..telemetry.expo import BucketHistogram, MetricsExposition
from ..telemetry.runid import mint_run_id
from .jobs import JobStore, QuotaExceeded
from .servicelog import ServiceLog

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: How long the worker blocks on the queue before re-checking shutdown.
_WORKER_POLL_SECONDS = 0.2

#: Known routes as they appear in metrics labels and access-log lines;
#: per-job paths collapse to a template so label cardinality stays
#: bounded no matter how many jobs a deployment serves.
_ROUTES = frozenset({"/jobs", "/healthz", "/stats", "/metrics",
                     "/executors"})

_COUNTER_HELP = {
    "jobs_submitted": "Jobs accepted by POST /jobs.",
    "jobs_completed": "Jobs that finished successfully.",
    "jobs_failed": "Jobs that raised during execution.",
    "quota_rejections": "Submissions rejected by the tenant quota (429).",
    "cache_hits": "Completed jobs served from the result cache.",
    "executed": "Completed jobs that entered real execution.",
    "store_hits": "Checkpoint-store hits during job execution.",
    "store_misses": "Checkpoint-store misses during job execution.",
    "store_bytes_read": "Bytes read from the checkpoint store.",
    "store_bytes_written": "Bytes written to the checkpoint store.",
}


def normalize_route(path: str) -> str:
    """Collapse a request path to its bounded-cardinality route label."""
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path.startswith("/jobs/"):
        return "/jobs/{id}"
    if path.startswith("/results/"):
        return "/results/{id}"
    if path in _ROUTES:
        return path
    return "<other>"


def write_response(handler, status: int, body: bytes,
                   content_type: str) -> bool:
    """Write one complete HTTP response, tolerating a gone client.

    A client that disconnects mid-response (curl timeout, closed
    browser tab) surfaces as ``BrokenPipeError``/``ConnectionResetError``
    from the socket write; that is the client's problem, not grounds
    for a handler-thread traceback.  Returns False when the client was
    gone.  Module-level so the tolerance is testable without a live
    socket.
    """
    try:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
        return True
    except (BrokenPipeError, ConnectionResetError):
        handler.close_connection = True
        return False


class SimulationService:
    """Owns the job store, the worker thread, and the HTTP server."""

    def __init__(self, *, options: "RunOptions | None" = None,
                 executor: "str | None" = None,
                 cache=None,
                 max_pending_per_tenant: int = 4,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.options = options if options is not None \
            else RunOptions.from_env()
        self.executor = executor if executor is not None \
            else self.options.executor
        self._cache_setting = cache
        self.store = JobStore(
            max_pending_per_tenant=max_pending_per_tenant)
        self.host = host
        self.port = port
        self.log = ServiceLog(self.options.service_log)
        self.counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "quota_rejections": 0,
            "cache_hits": 0,
            "executed": 0,
            "store_hits": 0,
            "store_misses": 0,
            "store_bytes_read": 0,
            "store_bytes_written": 0,
        }
        self._counter_lock = threading.Lock()
        #: Latency distributions, maintained under their own lock (the
        #: counter lock stays cheap for the submit path): job kind ->
        #: queue-wait / execution histograms, route -> HTTP latency,
        #: (route, status) -> request count.
        self._metrics_lock = threading.Lock()
        self._queue_wait_hist: "dict[str, BucketHistogram]" = {}
        self._run_hist: "dict[str, BucketHistogram]" = {}
        self._http_hist: "dict[str, BucketHistogram]" = {}
        self._http_requests: "dict[tuple[str, int], int]" = {}
        self._started_monotonic: "float | None" = None
        self._stop = threading.Event()
        self._worker: "threading.Thread | None" = None
        self._http_thread: "threading.Thread | None" = None
        self._httpd: "ThreadingHTTPServer | None" = None

    # -- counters ----------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] += amount

    def stats_payload(self) -> dict:
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "jobs": self.store.counts(),
            "executor": self.executor or "default",
            "options": dict(self.options.describe()),
        }

    # -- measurement -------------------------------------------------------

    def uptime_seconds(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def observe_http(self, route: str, status: int,
                     seconds: float) -> None:
        """Record one handled HTTP request into the scrape state."""
        with self._metrics_lock:
            key = (route, status)
            self._http_requests[key] = self._http_requests.get(key, 0) + 1
            hist = self._http_hist.get(route)
            if hist is None:
                hist = self._http_hist[route] = BucketHistogram()
            hist.observe(seconds)

    def _observe_job(self, job) -> None:
        """Record a finished job's queue-wait and execution latency."""
        kind = job.request.kind
        queue_wait = job.queue_wait_seconds()
        run_seconds = job.run_seconds()
        with self._metrics_lock:
            if queue_wait is not None:
                hist = self._queue_wait_hist.get(kind)
                if hist is None:
                    hist = self._queue_wait_hist[kind] = BucketHistogram()
                hist.observe(queue_wait)
            if run_seconds is not None:
                hist = self._run_hist.get(kind)
                if hist is None:
                    hist = self._run_hist[kind] = BucketHistogram()
                hist.observe(run_seconds)

    def health_payload(self) -> dict:
        """``GET /healthz``: still 200/"ok"-shaped, plus vitals."""
        from .. import __version__

        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": self.store.queue_depth(),
        }

    def metrics_payload(self) -> str:
        """``GET /metrics``: the full Prometheus text exposition."""
        from .. import __version__

        expo = MetricsExposition()
        with self._counter_lock:
            counters = dict(self.counters)
        for name in sorted(counters):
            expo.counter(f"repro_service_{name}_total",
                         _COUNTER_HELP.get(name, f"Service counter {name}."),
                         counters[name])
        expo.gauge("repro_service_queue_depth",
                   "Jobs submitted but not yet started.",
                   self.store.queue_depth())
        expo.gauge("repro_service_inflight_jobs",
                   "Jobs currently executing.",
                   self.store.running_count())
        expo.gauge("repro_service_uptime_seconds",
                   "Seconds since the HTTP server started.",
                   self.uptime_seconds())
        expo.gauge("repro_service_info",
                   "Constant 1; version and executor ride the labels.",
                   1, {"version": __version__,
                       "executor": self.executor or "default"})
        with self._metrics_lock:
            for kind in sorted(self._queue_wait_hist):
                expo.attach_histogram(
                    "repro_job_queue_wait_seconds",
                    "Submission-to-start latency by job kind.",
                    self._queue_wait_hist[kind].copy(), {"kind": kind})
            for kind in sorted(self._run_hist):
                expo.attach_histogram(
                    "repro_job_run_seconds",
                    "Execution latency by job kind.",
                    self._run_hist[kind].copy(), {"kind": kind})
            for route in sorted(self._http_hist):
                expo.attach_histogram(
                    "repro_http_request_seconds",
                    "HTTP request handling latency by route.",
                    self._http_hist[route].copy(), {"route": route})
            for (route, status), count in sorted(
                    self._http_requests.items()):
                expo.counter("repro_http_requests_total",
                             "HTTP requests handled, by route and status.",
                             count, {"route": route,
                                     "status": str(status)})
        return expo.render()

    # -- job intake --------------------------------------------------------

    def submit(self, tenant: str, request: RunRequest):
        """Enqueue one request (raises :class:`QuotaExceeded`).

        Mints the job's correlation ``run_id`` here — at the boundary
        where the request enters the system — so even the queued-job
        status payload already carries the id its telemetry will be
        stamped with.
        """
        run_id = mint_run_id()
        try:
            record = self.store.submit(tenant, request, run_id=run_id)
        except QuotaExceeded:
            self._bump("quota_rejections")
            raise
        self._bump("jobs_submitted")
        self.log.job(state="queued", job_id=record.job_id, tenant=tenant,
                     kind=request.kind, run_id=run_id)
        return record

    # -- worker thread -----------------------------------------------------

    def _run_job(self, job) -> None:
        self.store.mark_running(job.job_id)
        self.log.job(state="running", job_id=job.job_id, tenant=job.tenant,
                     kind=job.request.kind, run_id=job.run_id,
                     queue_wait_seconds=job.queue_wait_seconds())
        store_before = global_store_stats().as_dict()
        try:
            # The job runs under the service's validated options —
            # apply() exports them (and removes strays) for the
            # execution extent, which worker processes inherit.  The
            # job's run_id rides along, stamping every span, event,
            # and trace record the execution produces.
            options = self.options.with_overrides(run_id=job.run_id)
            with options.apply():
                result = execute_request(
                    job.request,
                    executor=self.executor,
                    cache=self._resolve_job_cache(),
                )
        except Exception as exc:  # a bad job must not kill the worker
            self.store.mark_failed(job.job_id, f"{type(exc).__name__}: {exc}")
            self._bump("jobs_failed")
            self._fold_store_stats(store_before)
            self._observe_job(job)
            self.log.job(state="failed", job_id=job.job_id,
                         tenant=job.tenant, kind=job.request.kind,
                         run_id=job.run_id, run_seconds=job.run_seconds(),
                         error=f"{type(exc).__name__}: {exc}")
            return
        self.store.mark_done(job.job_id, result)
        self._bump("jobs_completed")
        self._bump("cache_hits" if result.cached else "executed")
        self._fold_store_stats(store_before)
        self._observe_job(job)
        self.log.job(state="done", job_id=job.job_id, tenant=job.tenant,
                     kind=job.request.kind, run_id=job.run_id,
                     run_seconds=job.run_seconds(), cached=result.cached)

    def _fold_store_stats(self, before: dict) -> None:
        """Fold the job's checkpoint-store traffic into service counters.

        The store keeps process-wide totals
        (:func:`~repro.store.global_store_stats`); the delta across one
        job's execution extent is that job's traffic.  Only in-process
        traffic is visible — pool workers accumulate in their own
        processes — which matches how the service executes jobs (the
        read-through Phase A runs in the worker thread for matrix jobs'
        shared scan and in-process cells).
        """
        now = global_store_stats().as_dict()
        for name in ("hits", "misses", "bytes_read", "bytes_written"):
            delta = now[name] - before[name]
            if delta:
                self._bump(f"store_{name}", delta)

    def _resolve_job_cache(self):
        if self._cache_setting is not None:
            return self._cache_setting
        return self.options.result_cache

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.next_job(timeout=_WORKER_POLL_SECONDS)
            if job is None:
                continue
            self._run_job(job)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP server and start the worker (non-blocking)."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        # A requested port of 0 means "any free port"; publish the real one.
        self.port = self._httpd.server_address[1]
        self._started_monotonic = time.monotonic()
        self._stop.clear()
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-worker",
            daemon=True)
        self._worker.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._http_thread.start()

    def serve_forever(self) -> None:
        """Blocking entry point for ``repro serve``."""
        self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        # Join both threads: shutdown() returns once serve_forever
        # exits, but a repeatedly start/stopped service must not
        # accumulate half-dead HTTP threads.
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            self._worker = None

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def _make_handler(service: SimulationService):
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # The default stderr-per-request logging stays off; the
        # structured JSON access log (REPRO_SERVICE_LOG) replaces it.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True).encode()
            write_response(self, status, body, "application/json")
            self._finish_request(status)

        def _send_text(self, status: int, text: str) -> None:
            write_response(self, status, text.encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")
            self._finish_request(status)

        def _finish_request(self, status: int) -> None:
            """Fold this request into the scrape state and access log."""
            duration = time.perf_counter() - getattr(
                self, "_started", time.perf_counter())
            route = normalize_route(self.path)
            service.observe_http(route, status, duration)
            context = getattr(self, "_log_context", {})
            service.log.access(method=self.command, route=route,
                               status=status, duration_seconds=duration,
                               **context)

        def _begin_request(self) -> None:
            self._started = time.perf_counter()
            #: tenant/run_id/job_id for the access-log line, filled in
            #: by routes that resolve a job.
            self._log_context: dict = {}

        # -- POST /jobs ----------------------------------------------------

        def do_POST(self) -> None:
            self._begin_request()
            if self.path.rstrip("/") != "/jobs":
                self._send(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
                body = json.loads(raw.decode() or "{}")
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
                tenant = str(body.get("tenant", "default"))
                request = RunRequest.from_payload(
                    body.get("request", body.get("job", {})))
            except (ValueError, TypeError) as exc:
                self._send(400, {"error": str(exc)})
                return
            self._log_context = {"tenant": tenant}
            try:
                record = service.submit(tenant, request)
            except QuotaExceeded as exc:
                self._send(429, {"error": str(exc),
                                 "tenant": exc.tenant,
                                 "limit": exc.limit})
                return
            self._log_context.update(run_id=record.run_id,
                                     job_id=record.job_id)
            self._send(202, {"job_id": record.job_id,
                             "run_id": record.run_id,
                             "state": record.state})

        # -- GET routes ----------------------------------------------------

        def do_GET(self) -> None:
            self._begin_request()
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send(200, service.health_payload())
            elif path == "/stats":
                self._send(200, service.stats_payload())
            elif path == "/metrics":
                self._send_text(200, service.metrics_payload())
            elif path == "/executors":
                rows = [{"name": name, "class": cls, "description": desc}
                        for name, cls, desc in describe_executors()]
                self._send(200, {"executors": rows})
            elif path.startswith("/jobs/"):
                self._job_status(path[len("/jobs/"):])
            elif path.startswith("/results/"):
                self._job_result(path[len("/results/"):])
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})

        def _job_context(self, job) -> None:
            self._log_context = {"tenant": job.tenant,
                                 "run_id": job.run_id,
                                 "job_id": job.job_id}

        def _job_status(self, job_id: str) -> None:
            job = service.store.get(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
            self._job_context(job)
            self._send(200, job.status_payload())

        def _job_result(self, job_id: str) -> None:
            job = service.store.get(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
            self._job_context(job)
            if job.state == "failed":
                self._send(500, {"job_id": job_id, "state": "failed",
                                 "error": job.error})
            elif job.state != "done":
                self._send(202, {"job_id": job_id, "state": job.state})
            else:
                self._send(200, job.result.to_payload())

    return Handler
