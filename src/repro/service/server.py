"""The long-running simulation service: a stdlib-only JSON HTTP API.

:class:`SimulationService` wires three pieces together:

- a :class:`~.jobs.JobStore` holding submitted jobs and per-tenant
  quotas,
- one worker thread draining the store and running each request
  through :func:`repro.api.execute_request` — the same path inline
  callers use, including the content-addressed result-cache
  read-through, under the service's validated
  :class:`~repro.harness.RunOptions`,
- a ``ThreadingHTTPServer`` translating HTTP into store operations.

Routes::

    POST /jobs          {"tenant": "...", "request": {RunRequest JSON}}
                        -> 202 {"job_id": ..., "state": "queued"}
                        -> 400 on malformed JSON / unknown fields
                        -> 429 when the tenant's pending quota is full
    GET  /jobs/<id>     -> 200 job status (state, timestamps, error)
    GET  /results/<id>  -> 200 RunResult JSON when done
                        -> 202 {"state": ...} while queued/running
                        -> 500 {"error": ...} when failed
    GET  /healthz       -> 200 {"status": "ok"}
    GET  /stats         -> 200 counters (submitted/completed/failed,
                           cache_hits, executed, per-state job counts)
    GET  /executors     -> 200 registered executor backends

Everything is stdlib (``http.server``, ``json``, ``threading``); the
service needs no extra dependencies to deploy.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import RunRequest, execute_request
from ..harness.executor import describe_executors
from ..harness.options import RunOptions
from .jobs import JobStore, QuotaExceeded

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: How long the worker blocks on the queue before re-checking shutdown.
_WORKER_POLL_SECONDS = 0.2


class SimulationService:
    """Owns the job store, the worker thread, and the HTTP server."""

    def __init__(self, *, options: "RunOptions | None" = None,
                 executor: "str | None" = None,
                 cache=None,
                 max_pending_per_tenant: int = 4,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.options = options if options is not None \
            else RunOptions.from_env()
        self.executor = executor if executor is not None \
            else self.options.executor
        self._cache_setting = cache
        self.store = JobStore(
            max_pending_per_tenant=max_pending_per_tenant)
        self.host = host
        self.port = port
        self.counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "quota_rejections": 0,
            "cache_hits": 0,
            "executed": 0,
        }
        self._counter_lock = threading.Lock()
        self._stop = threading.Event()
        self._worker: "threading.Thread | None" = None
        self._httpd: "ThreadingHTTPServer | None" = None

    # -- counters ----------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] += amount

    def stats_payload(self) -> dict:
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "jobs": self.store.counts(),
            "executor": self.executor or "default",
            "options": dict(self.options.describe()),
        }

    # -- job intake --------------------------------------------------------

    def submit(self, tenant: str, request: RunRequest):
        """Enqueue one request (raises :class:`QuotaExceeded`)."""
        try:
            record = self.store.submit(tenant, request)
        except QuotaExceeded:
            self._bump("quota_rejections")
            raise
        self._bump("jobs_submitted")
        return record

    # -- worker thread -----------------------------------------------------

    def _run_job(self, job) -> None:
        self.store.mark_running(job.job_id)
        try:
            # The job runs under the service's validated options —
            # apply() exports them (and removes strays) for the
            # execution extent, which worker processes inherit.
            with self.options.apply():
                result = execute_request(
                    job.request,
                    executor=self.executor,
                    cache=self._resolve_job_cache(),
                )
        except Exception as exc:  # a bad job must not kill the worker
            self.store.mark_failed(job.job_id, f"{type(exc).__name__}: {exc}")
            self._bump("jobs_failed")
            return
        self.store.mark_done(job.job_id, result)
        self._bump("jobs_completed")
        self._bump("cache_hits" if result.cached else "executed")

    def _resolve_job_cache(self):
        if self._cache_setting is not None:
            return self._cache_setting
        return self.options.result_cache

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.next_job(timeout=_WORKER_POLL_SECONDS)
            if job is None:
                continue
            self._run_job(job)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP server and start the worker (non-blocking)."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        # A requested port of 0 means "any free port"; publish the real one.
        self.port = self._httpd.server_address[1]
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-worker",
            daemon=True)
        self._worker.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._http_thread.start()

    def serve_forever(self) -> None:
        """Blocking entry point for ``repro serve``."""
        self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            self._worker = None

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def _make_handler(service: SimulationService):
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # Quieter than the default stderr-per-request logging; the
        # service has /stats for observability.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        # -- POST /jobs ----------------------------------------------------

        def do_POST(self) -> None:
            if self.path.rstrip("/") != "/jobs":
                self._send(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
                body = json.loads(raw.decode() or "{}")
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
                tenant = str(body.get("tenant", "default"))
                request = RunRequest.from_payload(
                    body.get("request", body.get("job", {})))
            except (ValueError, TypeError) as exc:
                self._send(400, {"error": str(exc)})
                return
            try:
                record = service.submit(tenant, request)
            except QuotaExceeded as exc:
                self._send(429, {"error": str(exc),
                                 "tenant": exc.tenant,
                                 "limit": exc.limit})
                return
            self._send(202, {"job_id": record.job_id,
                             "state": record.state})

        # -- GET routes ----------------------------------------------------

        def do_GET(self) -> None:
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send(200, {"status": "ok"})
            elif path == "/stats":
                self._send(200, service.stats_payload())
            elif path == "/executors":
                rows = [{"name": name, "class": cls, "description": desc}
                        for name, cls, desc in describe_executors()]
                self._send(200, {"executors": rows})
            elif path.startswith("/jobs/"):
                self._job_status(path[len("/jobs/"):])
            elif path.startswith("/results/"):
                self._job_result(path[len("/results/"):])
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})

        def _job_status(self, job_id: str) -> None:
            job = service.store.get(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
            self._send(200, job.status_payload())

        def _job_result(self, job_id: str) -> None:
            job = service.store.get(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
            if job.state == "failed":
                self._send(500, {"job_id": job_id, "state": "failed",
                                 "error": job.error})
            elif job.state != "done":
                self._send(202, {"job_id": job_id, "state": job.state})
            else:
                self._send(200, job.result.to_payload())

    return Handler
