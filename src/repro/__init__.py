"""repro — Reverse State Reconstruction for sampled microarchitectural
simulation.

A from-scratch reproduction of Bryan, Rosier & Conte, "Reverse State
Reconstruction for Sampled Microarchitectural Simulation" (ISPASS 2007):
a complete sampled-simulation stack (synthetic ISA, functional simulator,
cache hierarchy with buses, Gshare/BTB/RAS branch predictor, out-of-order
timing core, cluster sampling with confidence statistics) plus the paper's
warm-up methods — no warm-up, fixed period, SMARTS full functional
warming, MRRL, BLRL, SimPoint, and the contributed Reverse State
Reconstruction.

Quick start::

    from repro import (
        build_workload, SamplingRegimen, SampledSimulator,
        SmartsWarmup, ReverseStateReconstruction, measure_true_ipc,
    )

    workload = build_workload("gcc")
    regimen = SamplingRegimen(
        total_instructions=200_000, num_clusters=20, cluster_size=1_000,
    )
    simulator = SampledSimulator(workload, regimen)
    smarts = simulator.run(SmartsWarmup())
    rsr = simulator.run(ReverseStateReconstruction(fraction=0.2))
    print(smarts.estimate, rsr.estimate)
"""

from .isa import (
    Opcode,
    Instruction,
    Program,
    ProgramBuilder,
    assemble,
)
from .functional import FunctionalMachine, Memory
from .cache import (
    Cache,
    CacheConfig,
    MemoryHierarchy,
    HierarchyConfig,
    WritePolicy,
    paper_hierarchy_config,
)
from .branch import (
    BranchPredictor,
    PredictorConfig,
    paper_predictor_config,
)
from .timing import TimingSimulator, CoreConfig, paper_core_config
from .workloads import Workload, build_workload, available_workloads
from .sampling import (
    SamplingRegimen,
    SampleEstimate,
    cluster_estimate,
    relative_error,
    SampledSimulator,
    SampledRunResult,
    SimulatorConfigs,
    measure_true_ipc,
)
from .warmup import (
    WarmupMethod,
    WarmupCost,
    NoWarmup,
    FixedPeriodWarmup,
    SmartsWarmup,
    MRRLWarmup,
    BLRLWarmup,
    paper_method_suite,
    paper_method_names,
    make_method,
    register_method,
    unregister_method,
    resolve_method,
    registered_method_names,
)
from .livepoints import LivePointLibrary, LivePointReplayResult
from .cachesim import (
    ReferenceTrace,
    capture_trace,
    full_trace_miss_ratio,
    time_sampling_estimate,
    set_sampling_estimate,
)
from .core import (
    ReverseStateReconstruction,
    SkipRegionLog,
    CompactedSkipRegionLog,
    ReconstructionSource,
    make_source,
    ReverseCacheReconstructor,
    ReverseBranchReconstructor,
    CounterInferenceTable,
    default_table,
)
# The facade imports from the subpackages above, so it must come last.
from .api import simulate, run_matrix, true_run

__version__ = "1.0.0"

__all__ = [
    "Opcode",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "assemble",
    "FunctionalMachine",
    "Memory",
    "Cache",
    "CacheConfig",
    "MemoryHierarchy",
    "HierarchyConfig",
    "WritePolicy",
    "paper_hierarchy_config",
    "BranchPredictor",
    "PredictorConfig",
    "paper_predictor_config",
    "TimingSimulator",
    "CoreConfig",
    "paper_core_config",
    "Workload",
    "build_workload",
    "available_workloads",
    "SamplingRegimen",
    "SampleEstimate",
    "cluster_estimate",
    "relative_error",
    "SampledSimulator",
    "SampledRunResult",
    "SimulatorConfigs",
    "measure_true_ipc",
    "WarmupMethod",
    "WarmupCost",
    "NoWarmup",
    "FixedPeriodWarmup",
    "SmartsWarmup",
    "MRRLWarmup",
    "BLRLWarmup",
    "paper_method_suite",
    "paper_method_names",
    "make_method",
    "register_method",
    "unregister_method",
    "resolve_method",
    "registered_method_names",
    "LivePointLibrary",
    "LivePointReplayResult",
    "ReferenceTrace",
    "capture_trace",
    "full_trace_miss_ratio",
    "time_sampling_estimate",
    "set_sampling_estimate",
    "ReverseStateReconstruction",
    "SkipRegionLog",
    "CompactedSkipRegionLog",
    "ReconstructionSource",
    "make_source",
    "ReverseCacheReconstructor",
    "ReverseBranchReconstructor",
    "CounterInferenceTable",
    "default_table",
    "simulate",
    "run_matrix",
    "true_run",
]
