"""Command-line interface: ``python -m repro <command>``.

Commands
--------
workloads
    List the built-in SPEC2000-like workloads.
methods
    List the warm-up methods in the registry (Table 2 names plus any
    registered via :func:`repro.warmup.register_method`).
true-ipc WORKLOAD
    Full-trace detailed simulation (the accuracy baseline).
sample WORKLOAD [--method NAME]...
    Sampled simulation with one or more warm-up methods.
compare WORKLOAD
    The full Table 2 method comparison on one workload.
simpoint WORKLOAD
    SimPoint analysis and simulation (paper Figure 9 style).
matrix
    The full evaluation grid through the parallel engine, with on-disk
    result caching (``--jobs``, ``--cache``, ``--method``, ``--workload``;
    see docs/parallel-execution.md).
profile WORKLOAD
    Sampled simulation with telemetry enabled: phase breakdown
    (cold_skip / reconstruct / hot_sim), per-structure update counts, and
    per-method trace totals (see docs/observability.md).
audit WORKLOAD
    Accuracy audit: per-cluster divergence of reconstructed state from a
    perfectly warmed reference (cache/PHT/BTB/RAS agreement, inference
    ambiguity) and the cold-start vs sampling split of each cluster's
    IPC error (``--source both`` additionally asserts the raw and
    compacted skip-log sources agree bit-for-bit).
executors
    List the registered executor fan-out backends (``--executor`` /
    ``REPRO_EXECUTOR`` select one for ``matrix`` and ``serve``).
cache stats | cache gc --max-bytes N
    Inspect or prune the on-disk persistence layers: the result cache
    and the Phase A checkpoint store (entry counts, bytes, oldest-first
    eviction; see docs/checkpoint-store.md).
serve
    Start the long-running simulation service: a JSON HTTP API
    accepting sample/matrix/audit jobs, with per-tenant quotas and
    result-cache read-through (see docs/parallel-execution.md).
submit KIND
    Submit a job to a running service and (by default) wait for the
    result.
trace export SPANS
    Convert a ``REPRO_SPANS`` JSONL file into Chrome trace-event JSON
    (loadable in Perfetto / chrome://tracing) or normalized JSONL.
metrics TRACE
    Render a completed run's ``REPRO_TRACE`` records as Prometheus text
    exposition — the offline twin of the service's ``GET /metrics``
    (see docs/observability.md).
report
    Render a self-contained HTML run report (span timeline, audit error
    bars, benchmark trajectory) from a spans file and optional audit /
    trajectory JSON (see docs/observability.md).

All commands accept ``--scale {ci,bench,default,full}`` (or the
``REPRO_EXPERIMENT_SCALE`` environment variable) to pick the experiment
tier.  ``sample``, ``compare``, ``matrix``, and ``profile`` accept
``--trace PATH`` to write one JSON-lines record per sampled cluster, and
``sample``, ``matrix``, and ``profile`` accept ``--cluster-jobs N`` (or
``REPRO_CLUSTER_JOBS``) to run shardable methods through the two-phase
pipeline with N hot-shard workers (see docs/parallel-execution.md).
``sample``, ``matrix``, ``profile``, and ``serve`` accept ``--store``
(or ``REPRO_CHECKPOINT_STORE``) to persist and reuse Phase A cold scans
across runs (see docs/checkpoint-store.md).

Every invocation mints one correlation ``run_id`` (unless ``REPRO_RUN_ID``
is already set) and plants it for the run's extent, so span, event, and
trace records produced anywhere — including worker processes — grep
under one id (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from .harness import (
    SCALES,
    format_table,
    options_from_env,
    scale_from_env,
    true_run_for,
)
from .sampling import SampledSimulator
from .simpoint import run_simpoints, select_simpoints
from .telemetry import bound_run_id, mint_run_id
from .warmup import (
    SmartsWarmup,
    paper_method_names,
    registered_method_names,
    resolve_method,
)
from .workloads import available_workloads, build_workload


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="experiment tier (default: REPRO_EXPERIMENT_SCALE or 'bench')",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSON-lines telemetry trace (one record per sampled "
             "cluster) to PATH and print the telemetry profile",
    )


def _add_cluster_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cluster-jobs", type=int, default=None, metavar="N",
        help="hot-shard workers for the two-phase pipeline (shardable "
             "methods only; 0 = one per CPU; default: "
             "REPRO_CLUSTER_JOBS or 1 = serial)",
    )


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", default=None, metavar="NAME",
        help="fan-out backend (see 'repro executors'; default: "
             "REPRO_EXECUTOR or 'pool')",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="checkpoint store for Phase A read-through: 'on' (the "
             "default directory), 'off', or a store directory path "
             "(default: REPRO_CHECKPOINT_STORE or off; see "
             "docs/checkpoint-store.md)",
    )


def _resolve_scale(args):
    # main() builds the validated RunOptions once (flags folded in);
    # handlers invoked directly in tests fall back to flag/env reads.
    options = getattr(args, "options", None)
    if options is not None:
        return options.scale_obj()
    if args.scale:
        return SCALES[args.scale]
    return scale_from_env()


def _options_for(args):
    """The entry-point RunOptions (or a freshly validated fallback)."""
    options = getattr(args, "options", None)
    if options is not None:
        return options
    return options_from_env(
        scale=getattr(args, "scale", None),
        matrix_jobs=getattr(args, "jobs", None),
        cluster_jobs=getattr(args, "cluster_jobs", None),
        executor=getattr(args, "executor", None),
        checkpoint_store=getattr(args, "store", None),
    )


def _simulator(workload, scale, telemetry=None, cluster_jobs=None):
    return SampledSimulator(
        workload, scale.regimen(), scale.configs(),
        warmup_prefix=scale.warmup_prefix,
        detail_ramp=scale.detail_ramp,
        telemetry=telemetry,
        cluster_jobs=cluster_jobs,
    )


@contextlib.contextmanager
def _env_overrides(overrides: dict):
    """Set environment variables for a block, restoring them after.

    A None value leaves that variable untouched (the "auto" case).
    """
    sentinel = object()
    saved = {}
    for name, value in overrides.items():
        if value is None:
            continue
        saved[name] = os.environ.get(name, sentinel)
        os.environ[name] = value
    try:
        yield
    finally:
        for name, previous in saved.items():
            if previous is sentinel:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous


def _report_telemetry(snapshots, trace_path, title="Telemetry profile"):
    """Merge per-run snapshots; write the trace file and print the profile."""
    from .harness import format_telemetry_summary
    from .telemetry import merge_snapshots, write_trace

    merged = merge_snapshots(snapshots)
    if merged is None or merged.is_empty():
        return
    if trace_path:
        count = write_trace(merged.trace_records, trace_path)
        print(f"\n{count} trace records written to {trace_path}")
    print()
    print(format_telemetry_summary(merged, title=title))


def cmd_workloads(_args) -> int:
    rows = []
    for name in available_workloads():
        workload = build_workload(name)
        rows.append([
            name,
            str(len(workload.program)),
            str(workload.memory.footprint_words()),
            workload.description,
        ])
    print(format_table(
        ["name", "instructions", "data words", "description"], rows,
        title="Built-in workloads",
    ))
    return 0


def cmd_methods(_args) -> int:
    rows = []
    for name in registered_method_names():
        method = resolve_method(name)
        rows.append([
            name,
            type(method).__name__,
            "yes" if method.shardable else "no",
        ])
    print(format_table(
        ["name", "class", "shardable"], rows,
        title="Registered warm-up methods "
              "(aliases 'rsr' and 'smarts' also resolve)",
    ))
    return 0


def cmd_true_ipc(args) -> int:
    scale = _resolve_scale(args)
    true_run = true_run_for(args.workload, scale)
    print(f"{args.workload}: true IPC = {true_run.ipc:.4f} "
          f"({true_run.instructions} instructions, "
          f"{true_run.wall_seconds:.1f}s)")
    return 0


def cmd_sample(args) -> int:
    scale = _resolve_scale(args)
    workload = build_workload(args.workload, mem_scale=scale.mem_scale)
    true_run = true_run_for(args.workload, scale)
    trace_path = getattr(args, "trace", None)
    telemetry = None
    if trace_path:
        # The Telemetry class doubles as a zero-argument factory: each
        # method's run gets a fresh session, merged after the table.
        from .telemetry import Telemetry
        telemetry = Telemetry
    simulator = _simulator(workload, scale, telemetry=telemetry,
                           cluster_jobs=getattr(args, "cluster_jobs", None))
    results = []
    rows = []
    for method_name in args.method:
        result = simulator.run(resolve_method(method_name))
        results.append(result)
        rows.append([
            result.method_name,
            f"{result.estimate.mean:.4f}",
            f"{result.relative_error(true_run.ipc) * 100:.2f}%",
            "yes" if result.passes_confidence_test(true_run.ipc) else "no",
            f"{result.cost.warm_updates():,}",
            f"{result.wall_seconds:.2f}s",
        ])
    print(format_table(
        ["method", "IPC", "rel. error", "95% CI", "warm updates", "time"],
        rows,
        title=f"{args.workload}: true IPC {true_run.ipc:.4f} — "
              f"{scale.regimen().describe()}",
    ))
    if trace_path:
        _report_telemetry(
            (result.extra.get("telemetry") for result in results),
            trace_path,
            title=f"{args.workload} telemetry ({scale.name} tier)",
        )
    return 0


def cmd_compare(args) -> int:
    args.method = paper_method_names()
    return cmd_sample(args)


def cmd_simpoint(args) -> int:
    scale = _resolve_scale(args)
    workload = build_workload(args.workload, mem_scale=scale.mem_scale)
    true_run = true_run_for(args.workload, scale)
    rows = []
    for interval in (scale.cluster_size // 2, scale.cluster_size * 8):
        selection = select_simpoints(
            workload, scale.total_instructions, interval,
            max_points=args.points,
        )
        for warmup in (None, SmartsWarmup()):
            result = run_simpoints(
                workload, selection, warmup=warmup,
                configs=scale.configs(),
            )
            rows.append([
                f"{interval}",
                str(len(selection.points)),
                result.method_name,
                f"{result.ipc:.4f}",
                f"{result.relative_error(true_run.ipc) * 100:.2f}%",
            ])
    print(format_table(
        ["interval", "points", "config", "IPC", "rel. error"],
        rows,
        title=f"{args.workload}: SimPoint vs true IPC {true_run.ipc:.4f}",
    ))
    return 0


def cmd_design(args) -> int:
    scale = _resolve_scale(args)
    from .sampling import recommend_regimen

    workload = build_workload(args.workload, mem_scale=scale.mem_scale)
    recommendation = recommend_regimen(
        workload, scale.total_instructions, scale.cluster_size,
        target_relative_error=args.target_error,
        configs=scale.configs(), warmup_prefix=scale.warmup_prefix,
    )
    print(format_table(
        ["quantity", "value"],
        [
            ["pilot clusters", str(recommendation.pilot_clusters)],
            ["pilot mean IPC", f"{recommendation.pilot_mean_ipc:.4f}"],
            ["pilot cluster std-dev",
             f"{recommendation.pilot_std_dev:.4f}"],
            ["target relative error",
             f"{recommendation.target_relative_error:.1%}"],
            ["recommended clusters",
             str(recommendation.recommended_clusters)],
            ["predicted ±95% bound",
             f"{recommendation.predicted_error_bound:.4f}"],
        ],
        title=f"Regimen design for {args.workload} "
              f"(cluster size {scale.cluster_size})",
    ))
    return 0


def cmd_matrix(args) -> int:
    """Run the evaluation grid through the parallel engine."""
    import time

    from .api import _RegistrySuite
    from .harness import (
        LiveProgress,
        console_progress,
        execute_matrix,
        format_per_workload,
        save_matrix,
    )
    from .telemetry import SPANS_ENV_VAR
    from .warmup import paper_method_suite
    from .workloads import available_workloads

    options = _options_for(args)
    scale = options.scale_obj()
    workloads = tuple(args.workload) if args.workload else available_workloads()
    if args.method:
        # Registry names are validated here, before any worker process
        # launches; an unknown name raises the registry's ValueError and
        # exits with status 2 from main().
        suite_factory = _RegistrySuite(tuple(args.method))
        display_names = []
        for name in args.method:
            canonical = resolve_method(name).name
            if canonical not in display_names:
                display_names.append(canonical)
    else:
        suite_factory = paper_method_suite
        display_names = paper_method_names()
    cache = options.cache(
        None if args.cache == "auto" else args.cache, default="on"
    )
    if args.quiet:
        progress = None
    elif args.progress:
        progress = LiveProgress()
    else:
        progress = console_progress
    start = time.perf_counter()
    collect_sentinel = object()
    previous_collect = collect_sentinel
    if args.trace:
        # Collection-only mode for the worker processes: every cell
        # buffers a snapshot into its result, and the parent writes one
        # deterministic trace file from the merged profile below (the
        # workers never touch the file themselves).
        from .telemetry import COLLECT_ENV_VAR
        previous_collect = os.environ.get(COLLECT_ENV_VAR)
        os.environ[COLLECT_ENV_VAR] = "1"
    # Resolved in the parent (explicit flag, else REPRO_CLUSTER_JOBS) so
    # the value lands in every CellSpec — and hence the cache keys —
    # before any worker launches; a bad value exits 2 below.
    cluster_jobs = options.resolved_cluster_jobs()
    try:
        with _env_overrides({SPANS_ENV_VAR: args.spans}):
            matrix = execute_matrix(
                suite_factory,
                workload_names=workloads,
                scale=scale,
                jobs=options.matrix_jobs,
                cache=cache,
                progress=progress,
                cluster_jobs=cluster_jobs,
                executor=options.executor,
            )
    finally:
        if previous_collect is not collect_sentinel:
            from .telemetry import COLLECT_ENV_VAR
            if previous_collect is None:
                os.environ.pop(COLLECT_ENV_VAR, None)
            else:
                os.environ[COLLECT_ENV_VAR] = previous_collect
    elapsed = time.perf_counter() - start
    print(format_per_workload(
        matrix, display_names, value="error",
        title=f"Relative error ({scale.name} tier)",
    ))
    print()
    print(format_per_workload(
        matrix, display_names, value="ci",
        title="95% confidence tests",
    ))
    jobs = options.resolved_matrix_jobs()
    summary = f"\ngrid completed in {elapsed:.1f}s ({jobs} jobs"
    if cache is not None:
        summary += f"; cache at {cache.root}: {cache.stats}"
    print(summary + ")")
    if args.trace:
        from .harness import merged_telemetry
        merged = merged_telemetry(matrix)
        _report_telemetry(
            [merged], args.trace,
            title=f"Grid telemetry ({scale.name} tier)",
        )
    if args.spans:
        print(f"spans written to {args.spans} "
              f"(export with: repro trace export {args.spans})")
    if args.output:
        save_matrix(matrix, args.output)
        print(f"full grid written to {args.output}")
    return 0


def cmd_profile(args) -> int:
    """Phase breakdown of one workload's sampled simulation."""
    from .harness import format_telemetry_summary
    from .telemetry import Telemetry, merge_snapshots, write_trace

    scale = _resolve_scale(args)
    workload = build_workload(args.workload, mem_scale=scale.mem_scale)
    simulator = _simulator(workload, scale, telemetry=Telemetry,
                           cluster_jobs=getattr(args, "cluster_jobs", None))
    methods = args.method or ["S$BP", "R$BP (100%)"]
    snapshots = []
    for method_name in methods:
        result = simulator.run(resolve_method(method_name))
        snapshots.append(result.extra.get("telemetry"))
    merged = merge_snapshots(snapshots)
    title = (f"{args.workload} profile ({scale.name} tier, "
             f"{scale.regimen().describe()})")
    if merged is None or merged.is_empty():
        # A headers-only run (empty regimen, zero clusters) has nothing
        # to tabulate; say so readably instead of printing ragged tables.
        print(f"{title}\n\nno clusters recorded")
        return 0
    print(format_telemetry_summary(merged, title=title))
    if args.trace:
        count = write_trace(merged.trace_records, args.trace)
        print(f"\n{count} trace records written to {args.trace}")
    return 0


def cmd_audit(args) -> int:
    """Per-cluster accuracy audit: bias attribution vs a warm reference."""
    from .core.source import COMPACTION_ENV_VAR
    from .harness import format_audit_report, save_audit
    from .harness.export import audit_to_json
    from .telemetry import AUDIT_ENV_VAR, Telemetry, merge_snapshots

    scale = _resolve_scale(args)
    workload = build_workload(args.workload, mem_scale=scale.mem_scale)
    methods = args.method or ["S$BP", "R$BP (100%)"]
    sources = ("raw", "compacted") if args.source == "both" \
        else (args.source,)

    def run_with(source_kind: str):
        # "auto" leaves REPRO_LOG_COMPACTION alone; a concrete kind pins
        # it for the run, so every method resolves to that source.
        overrides = {
            AUDIT_ENV_VAR: "1",
            COMPACTION_ENV_VAR:
                None if source_kind == "auto" else source_kind,
        }
        snapshots = []
        with _env_overrides(overrides):
            simulator = _simulator(workload, scale, telemetry=Telemetry)
            for method_name in methods:
                result = simulator.run(resolve_method(method_name))
                snapshots.append(result.extra.get("telemetry"))
        return merge_snapshots(snapshots)

    merged_by_source = {kind: run_with(kind) for kind in sources}
    merged = merged_by_source[sources[0]]
    print(format_audit_report(
        merged,
        title=f"{args.workload} accuracy audit ({scale.name} tier, "
              f"{scale.regimen().describe()})",
    ))
    if args.source == "both":
        texts = {kind: audit_to_json(merged_by_source[kind])
                 for kind in sources}
        if texts["raw"] != texts["compacted"]:
            print("error: audit diverges between raw and compacted "
                  "skip-log sources", file=sys.stderr)
            return 1
        print("\nraw and compacted skip-log sources produced "
              "bit-identical audit JSON")
    if args.json:
        save_audit(merged, args.json)
        print(f"\naudit JSON written to {args.json}")
    return 0


def cmd_trace(args) -> int:
    """Convert a spans JSONL file for trace viewers."""
    from .telemetry import (
        RECORD_COUNTER,
        RECORD_SPAN,
        read_spans,
        spans_to_jsonl,
        validate_chrome_trace,
        write_chrome_trace,
    )

    records = read_spans(args.input)
    span_count = sum(1 for r in records if r.get("type") == RECORD_SPAN)
    counter_count = sum(
        1 for r in records if r.get("type") == RECORD_COUNTER
    )
    if span_count == 0:
        print(f"warning: no span records in {args.input} "
              f"(was the run executed with REPRO_SPANS set?)",
              file=sys.stderr)
    if args.format == "chrome":
        output = args.output or "trace.chrome.json"
        events = write_chrome_trace(records, output)
        import json
        with open(output, "r", encoding="utf-8") as stream:
            errors = validate_chrome_trace(json.load(stream))
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"{events} trace events ({span_count} spans, "
              f"{counter_count} counter samples) written to {output}")
        print("open in https://ui.perfetto.dev or chrome://tracing")
    else:
        output = args.output or "trace.norm.jsonl"
        with open(output, "w", encoding="utf-8") as stream:
            stream.write(spans_to_jsonl(records))
        print(f"{span_count + counter_count} normalized records "
              f"written to {output}")
    return 0


def cmd_metrics(args) -> int:
    """Render a completed run's trace as Prometheus text exposition."""
    from .telemetry import (
        exposition_from_records,
        parse_exposition,
        read_trace,
    )

    records = read_trace(args.input)
    if not records:
        print(f"warning: no records in {args.input} "
              f"(was the run executed with REPRO_TRACE or --trace set?)",
              file=sys.stderr)
    text = exposition_from_records(records).render()
    # Self-check: whatever we print must satisfy the same strict parser
    # the CI smoke job runs against the service's live /metrics.
    parse_exposition(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"metrics exposition ({len(records)} records) "
              f"written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_report(args) -> int:
    """Render the self-contained HTML run report."""
    import json

    from .harness.report import render_report
    from .telemetry import read_spans

    spans = read_spans(args.spans) if args.spans else []

    def load(path, label):
        if not path:
            return None
        try:
            with open(path, "r", encoding="utf-8") as stream:
                return json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {label} ({exc})", file=sys.stderr)
            return None

    html = render_report(
        spans=spans,
        audit=load(args.audit, "audit JSON"),
        trajectory=load(args.trajectory, "trajectory JSON"),
        title=args.title,
    )
    with open(args.output, "w", encoding="utf-8") as stream:
        stream.write(html)
    print(f"run report written to {args.output}")
    return 0


def cmd_reproduce(args) -> int:
    """Regenerate the full evaluation grid and export it."""
    from .harness import format_per_workload, save_matrix
    from .harness.experiment import full_matrix

    scale = _resolve_scale(args)
    matrix = full_matrix(scale.name)
    print(format_per_workload(
        matrix, paper_method_names(), value="error",
        title=f"Relative error ({scale.name} tier)",
    ))
    print()
    print(format_per_workload(
        matrix, paper_method_names(), value="ci",
        title="95% confidence tests",
    ))
    if args.output:
        save_matrix(matrix, args.output)
        print(f"\nfull grid written to {args.output}")
    return 0


def cmd_cache(args) -> int:
    """Inspect or prune the on-disk persistence layers.

    ``stats`` tabulates entry counts and bytes for the result cache and
    the checkpoint store; ``gc --max-bytes N`` evicts oldest-mtime
    entries from the selected layer(s) until each fits the budget.
    Both resolve the layers exactly like a run would (flags, then the
    ``REPRO_RESULT_CACHE`` / ``REPRO_CHECKPOINT_STORE`` environment,
    then the default directories).
    """
    options = _options_for(args)
    cache = options.cache(
        None if args.cache == "auto" else args.cache, default="on")
    store = options.store(args.store, default="on")
    layers = []
    if cache is not None:
        layers.append(("results", cache))
    if store is not None:
        layers.append(("checkpoints", store))
    if args.action == "stats":
        rows = [
            [name, str(layer.root), str(layer.entry_count()),
             f"{layer.total_bytes():,}"]
            for name, layer in layers
        ]
        print(format_table(
            ["layer", "root", "entries", "bytes"], rows,
            title="On-disk persistence layers",
        ))
        return 0
    # gc: a negative budget is bad user input — ValueError maps to the
    # CLI's readable exit-2 diagnostic in main().
    if args.max_bytes < 0:
        raise ValueError(
            f"--max-bytes must be >= 0, got {args.max_bytes}")
    selected = [(name, layer) for name, layer in layers
                if args.layer in ("all", name)]
    if not selected:
        raise ValueError(
            f"layer {args.layer!r} is disabled "
            f"(resolved to no directory); nothing to prune")
    for name, layer in selected:
        removed = layer.gc(args.max_bytes)
        print(f"{name}: evicted {len(removed)} of "
              f"{len(removed) + layer.entry_count()} entries from "
              f"{layer.root} ({layer.total_bytes():,} bytes remain)")
    return 0


def cmd_executors(_args) -> int:
    """List the registered executor fan-out backends."""
    from .harness import (
        DEFAULT_EXECUTOR,
        EXECUTOR_ENV_VAR,
        describe_executors,
    )

    rows = [[name, cls, desc] for name, cls, desc in describe_executors()]
    print(format_table(
        ["name", "class", "description"], rows,
        title=f"Registered executor backends (default: {DEFAULT_EXECUTOR}; "
              f"select with --executor or {EXECUTOR_ENV_VAR})",
    ))
    return 0


def cmd_serve(args) -> int:
    """Run the long-running simulation service until interrupted."""
    import time

    from .service import SimulationService

    options = _options_for(args)
    service = SimulationService(
        options=options,
        executor=options.executor,
        cache=None if args.cache == "auto" else args.cache,
        max_pending_per_tenant=args.quota,
        host=args.host,
        port=args.port,
    )
    service.start()
    print(f"simulation service listening on {service.url}")
    print(f"executor: {service.executor or 'default (pool)'}; "
          f"scale: {options.scale}; "
          f"quota: {args.quota} pending job(s) per tenant")
    if options.service_log:
        print(f"structured service log: {options.service_log}")
    print(f"metrics: GET {service.url}/metrics")
    print(f"submit with: repro submit --url {service.url} sample "
          f"--workload gcc")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.stop()
    return 0


def cmd_submit(args) -> int:
    """Submit one job to a running service; wait unless --no-wait."""
    import json
    import urllib.error

    from .api import RunRequest
    from .service import ServiceClient, ServiceError

    request = RunRequest(
        kind=args.kind,
        workloads=tuple(args.workload or ()),
        methods=tuple(args.method or ()),
        design=args.scale,
        cluster_jobs=(args.cluster_jobs
                      if args.cluster_jobs is not None else 1),
        jobs=args.jobs,
        source=args.source,
    )
    client = ServiceClient(args.url, timeout=min(args.timeout, 60.0))
    try:
        job_id = client.submit(request, tenant=args.tenant)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach service at {args.url} ({exc}); "
              f"is 'repro serve' running?", file=sys.stderr)
        return 1
    print(f"submitted {job_id} ({request.kind}, design {request.design}) "
          f"to {args.url}")
    if args.no_wait:
        print(f"poll with: GET {args.url}/results/{job_id}")
        return 0
    try:
        result = client.result(job_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    origin = "cache" if result.cached else "fresh run"
    if request.kind == "audit":
        size = f"{len(result.payload['reports'])} report(s)"
    else:
        size = f"{len(result.payload['rows'])} row(s)"
    print(f"{job_id} done: {size} from {origin} "
          f"in {result.wall_seconds:.2f}s")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(result.to_payload(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"result JSON written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reverse State Reconstruction reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "workloads", help="list built-in workloads",
    ).set_defaults(handler=cmd_workloads)

    subparsers.add_parser(
        "methods", help="list registered warm-up methods",
    ).set_defaults(handler=cmd_methods)

    true_parser = subparsers.add_parser(
        "true-ipc", help="full-trace detailed simulation",
    )
    true_parser.add_argument("workload", choices=available_workloads())
    _add_scale_argument(true_parser)
    true_parser.set_defaults(handler=cmd_true_ipc)

    sample_parser = subparsers.add_parser(
        "sample", help="sampled simulation with chosen warm-up methods",
    )
    sample_parser.add_argument("workload", choices=available_workloads())
    sample_parser.add_argument(
        "--method", action="append",
        default=None,
        help="Table 2 method name (repeatable); default: S$BP and "
             "R$BP (20%%)",
    )
    _add_scale_argument(sample_parser)
    _add_trace_argument(sample_parser)
    _add_cluster_jobs_argument(sample_parser)
    _add_store_argument(sample_parser)
    sample_parser.set_defaults(handler=cmd_sample)

    compare_parser = subparsers.add_parser(
        "compare", help="all sixteen Table 2 methods on one workload",
    )
    compare_parser.add_argument("workload", choices=available_workloads())
    _add_scale_argument(compare_parser)
    _add_trace_argument(compare_parser)
    compare_parser.set_defaults(handler=cmd_compare)

    simpoint_parser = subparsers.add_parser(
        "simpoint", help="SimPoint analysis on one workload",
    )
    simpoint_parser.add_argument("workload", choices=available_workloads())
    simpoint_parser.add_argument("--points", type=int, default=15)
    _add_scale_argument(simpoint_parser)
    simpoint_parser.set_defaults(handler=cmd_simpoint)

    design_parser = subparsers.add_parser(
        "design", help="pilot-study regimen recommendation",
    )
    design_parser.add_argument("workload", choices=available_workloads())
    design_parser.add_argument("--target-error", type=float, default=0.03)
    _add_scale_argument(design_parser)
    design_parser.set_defaults(handler=cmd_design)

    matrix_parser = subparsers.add_parser(
        "matrix",
        help="run the evaluation grid with the parallel engine",
    )
    matrix_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all cores; 1 = serial in-process)",
    )
    matrix_parser.add_argument(
        "--cache", default="auto",
        help="result cache: 'auto' (REPRO_RESULT_CACHE or the default "
             "directory), 'off', or a cache directory path",
    )
    matrix_parser.add_argument(
        "--workload", action="append", choices=available_workloads(),
        default=None,
        help="restrict the grid to this workload (repeatable; default: all)",
    )
    matrix_parser.add_argument(
        "--method", action="append", default=None,
        help="restrict the grid to this registered method name or alias "
             "(repeatable; default: the full Table 2 suite)",
    )
    matrix_parser.add_argument(
        "--output", default=None,
        help="also export the grid (.csv or .json)",
    )
    matrix_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines",
    )
    matrix_parser.add_argument(
        "--progress", action="store_true",
        help="live streaming progress (done/total, cells/sec, ETA) "
             "instead of one line per cell",
    )
    matrix_parser.add_argument(
        "--spans", default=None, metavar="PATH",
        help="record hierarchical spans to a JSONL file (equivalent to "
             "REPRO_SPANS=PATH; export with 'repro trace export')",
    )
    _add_scale_argument(matrix_parser)
    _add_trace_argument(matrix_parser)
    _add_cluster_jobs_argument(matrix_parser)
    _add_executor_argument(matrix_parser)
    _add_store_argument(matrix_parser)
    matrix_parser.set_defaults(handler=cmd_matrix)

    subparsers.add_parser(
        "executors", help="list registered executor fan-out backends",
    ).set_defaults(handler=cmd_executors)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or prune the result cache and checkpoint store",
    )
    cache_actions = cache_parser.add_subparsers(dest="action",
                                                required=True)
    cache_stats_parser = cache_actions.add_parser(
        "stats", help="entry counts and bytes for both on-disk layers",
    )
    cache_gc_parser = cache_actions.add_parser(
        "gc", help="evict oldest-mtime entries down to a byte budget",
    )
    cache_gc_parser.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="byte budget per selected layer (0 empties it)",
    )
    cache_gc_parser.add_argument(
        "--layer", choices=("results", "checkpoints", "all"),
        default="all",
        help="which layer to prune (default: all)",
    )
    for action_parser in (cache_stats_parser, cache_gc_parser):
        action_parser.add_argument(
            "--cache", default="auto",
            help="result cache: 'auto' (REPRO_RESULT_CACHE or the "
                 "default directory), 'off', or a directory path",
        )
        _add_store_argument(action_parser)
        action_parser.set_defaults(handler=cmd_cache)

    serve_parser = subparsers.add_parser(
        "serve", help="run the long-running simulation service",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default: 8642; 0 = any free port)",
    )
    serve_parser.add_argument(
        "--quota", type=int, default=4, metavar="N",
        help="max pending jobs per tenant before 429 (default: 4)",
    )
    serve_parser.add_argument(
        "--cache", default="auto",
        help="result cache: 'auto' (REPRO_RESULT_CACHE), 'off', 'on', "
             "or a cache directory path",
    )
    _add_scale_argument(serve_parser)
    _add_executor_argument(serve_parser)
    _add_store_argument(serve_parser)
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit", help="submit a job to a running simulation service",
    )
    submit_parser.add_argument(
        "kind", choices=("sample", "matrix", "audit"),
        help="what to run: per-workload sampled rows, the full grid, "
             "or an accuracy audit",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default: http://127.0.0.1:8642)",
    )
    submit_parser.add_argument(
        "--workload", action="append", choices=available_workloads(),
        default=None,
        help="workload to include (repeatable; default: all nine)",
    )
    submit_parser.add_argument(
        "--method", action="append", default=None,
        help="registered method name or alias (repeatable; default: "
             "the kind's standard suite)",
    )
    submit_parser.add_argument(
        "--source", choices=("auto", "raw", "compacted"), default="auto",
        help="skip-log source for audit jobs",
    )
    submit_parser.add_argument(
        "--jobs", type=int, default=None,
        help="matrix-cell workers on the service side",
    )
    submit_parser.add_argument(
        "--tenant", default="default",
        help="quota tenant to submit as (default: 'default')",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the result (default: 300)",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="submit and print the job id without polling for the result",
    )
    submit_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the full result JSON to PATH",
    )
    _add_scale_argument(submit_parser)
    _add_cluster_jobs_argument(submit_parser)
    submit_parser.set_defaults(handler=cmd_submit)

    profile_parser = subparsers.add_parser(
        "profile",
        help="telemetry profile: phase timers and per-structure updates",
    )
    profile_parser.add_argument("workload", choices=available_workloads())
    profile_parser.add_argument(
        "--method", action="append", default=None,
        help="Table 2 method name (repeatable); default: S$BP and "
             "R$BP (100%%)",
    )
    _add_scale_argument(profile_parser)
    _add_trace_argument(profile_parser)
    _add_cluster_jobs_argument(profile_parser)
    _add_store_argument(profile_parser)
    profile_parser.set_defaults(handler=cmd_profile)

    audit_parser = subparsers.add_parser(
        "audit",
        help="accuracy audit: per-cluster state divergence and "
             "cold-start vs sampling error attribution",
    )
    audit_parser.add_argument("workload", choices=available_workloads())
    audit_parser.add_argument(
        "--method", action="append", default=None,
        help="Table 2 method name (repeatable); default: S$BP and "
             "R$BP (100%%)",
    )
    audit_parser.add_argument(
        "--source", choices=("auto", "raw", "compacted", "both"),
        default="auto",
        help="skip-log source for the audited runs; 'both' runs raw and "
             "compacted and asserts bit-identical audit JSON",
    )
    audit_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also export the audit report (summaries + per-cluster "
             "rows) as JSON to PATH",
    )
    _add_scale_argument(audit_parser)
    audit_parser.set_defaults(handler=cmd_audit)

    trace_parser = subparsers.add_parser(
        "trace",
        help="convert recorded spans for trace viewers "
             "(Perfetto / chrome://tracing)",
    )
    trace_parser.add_argument(
        "action", choices=("export",),
        help="what to do with the spans file",
    )
    trace_parser.add_argument(
        "input", metavar="SPANS",
        help="spans JSONL file recorded via REPRO_SPANS or --spans",
    )
    trace_parser.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome: trace-event JSON for Perfetto/chrome://tracing "
             "(default); jsonl: normalized timeline-sorted JSONL",
    )
    trace_parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: trace.chrome.json / trace.norm.jsonl)",
    )
    trace_parser.set_defaults(handler=cmd_trace)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="render a completed run's trace as Prometheus text "
             "exposition",
    )
    metrics_parser.add_argument(
        "input", metavar="TRACE",
        help="trace JSONL file recorded via REPRO_TRACE or --trace",
    )
    metrics_parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: stdout)",
    )
    metrics_parser.set_defaults(handler=cmd_metrics)

    report_parser = subparsers.add_parser(
        "report",
        help="render a self-contained HTML run report",
    )
    report_parser.add_argument(
        "--spans", default=None, metavar="PATH",
        help="spans JSONL file for the timeline section",
    )
    report_parser.add_argument(
        "--audit", default=None, metavar="PATH",
        help="audit JSON ('repro audit --json') for per-cluster error bars",
    )
    report_parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="benchmarks/TRAJECTORY.json for the benchmark table",
    )
    report_parser.add_argument(
        "--title", default="repro run report",
        help="report title",
    )
    report_parser.add_argument(
        "-o", "--output", default="run-report.html",
        help="output HTML path (default: run-report.html)",
    )
    report_parser.set_defaults(handler=cmd_report)

    reproduce_parser = subparsers.add_parser(
        "reproduce",
        help="regenerate the full 16x9 evaluation grid (slow)",
    )
    reproduce_parser.add_argument(
        "--output", default=None,
        help="also export the grid (.csv or .json)",
    )
    _add_scale_argument(reproduce_parser)
    reproduce_parser.set_defaults(handler=cmd_reproduce)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sample" and args.method is None:
        args.method = ["S$BP", "R$BP (20%)"]
    try:
        # One validated RunOptions per invocation: every REPRO_* read
        # (and the flags that override them) funnels through here, so a
        # bad value fails now with a readable exit-2 diagnostic instead
        # of deep inside a worker process.
        args.options = options_from_env(
            scale=getattr(args, "scale", None),
            matrix_jobs=getattr(args, "jobs", None),
            cluster_jobs=getattr(args, "cluster_jobs", None),
            executor=getattr(args, "executor", None),
            checkpoint_store=getattr(args, "store", None),
        )
        # One correlation id per invocation (REPRO_RUN_ID wins when the
        # caller set one, e.g. an orchestrator correlating several
        # commands): planted for the handler's extent so every span,
        # event, and trace record greps under it.
        if args.options.run_id is None:
            args.options = args.options.with_overrides(
                run_id=mint_run_id())
        # A --store flag rides the environment to wherever Phase A
        # resolves it (the pipeline, matrix cells, service jobs) —
        # the same mechanism REPRO_CHECKPOINT_STORE itself uses.
        from .store import STORE_ENV_VAR
        with bound_run_id(args.options.run_id), \
                _env_overrides({STORE_ENV_VAR: getattr(args, "store",
                                                       None)}):
            return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except ValueError as exc:
        # Bad user input reaching past argparse (unknown --method name,
        # invalid REPRO_EXPERIMENT_SCALE, malformed --output extension):
        # a readable one-line diagnostic, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
