"""Finite return address stack.

Modelled as a circular buffer: pushes beyond capacity silently overwrite
the oldest entry, pops of an empty stack return a garbage (zero) target —
both behaviours match real hardware and matter for reconstruction fidelity.
"""

from __future__ import annotations

from .config import PredictorConfig


class ReturnAddressStack:
    """Circular return-address stack of `config.ras_entries` slots."""

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.size = config.ras_entries
        self.stack = [0] * self.size
        self.top = self.size - 1  # index of the most recent push
        self.depth = 0            # live entries (<= size)
        self.pushes = 0
        self.pops = 0

    def push(self, return_address: int) -> None:
        """Push on CALL; overwrites the oldest entry when full."""
        self.top = (self.top + 1) % self.size
        self.stack[self.top] = return_address
        if self.depth < self.size:
            self.depth += 1
        self.pushes += 1

    def pop(self) -> int:
        """Pop on RET; returns 0 when the stack has underflowed."""
        self.pops += 1
        if self.depth == 0:
            return 0
        value = self.stack[self.top]
        self.top = (self.top - 1) % self.size
        self.depth -= 1
        return value

    def peek(self) -> int:
        """Predicted return target (top of stack) without popping."""
        if self.depth == 0:
            return 0
        return self.stack[self.top]

    def contents_from_top(self) -> list[int]:
        """Live entries ordered from most to least recent."""
        return [
            self.stack[(self.top - offset) % self.size]
            for offset in range(self.depth)
        ]

    def set_contents(self, addresses_from_top: list[int]) -> None:
        """Overwrite the stack (used by reverse reconstruction).

        `addresses_from_top` is ordered most-recent first and is truncated
        to the stack capacity.
        """
        live = list(addresses_from_top[: self.size])
        self.depth = len(live)
        self.top = self.size - 1
        for offset, address in enumerate(live):
            self.stack[(self.top - offset) % self.size] = address

    def reset(self) -> None:
        self.stack = [0] * self.size
        self.top = self.size - 1
        self.depth = 0
        self.pushes = 0
        self.pops = 0
