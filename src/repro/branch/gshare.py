"""Gshare pattern history table with a global history register.

The PHT index is the XOR of the branch PC and the global history register,
masked to the table size.  Per-entry *reconstructed* bits support the
paper's on-demand branch-predictor reconstruction (§3.2).
"""

from __future__ import annotations

from .config import PredictorConfig
from .counters import WEAK_NOT_TAKEN, predict_taken, update_counter


class GsharePHT:
    """Pattern history table of 2-bit counters, indexed by PC xor GHR."""

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.entries = config.pht_entries
        self._mask = self.entries - 1
        self.history_bits = config.history_bits
        self._history_mask = (1 << self.history_bits) - 1
        #: Counters initialised to weakly-not-taken, the usual reset state.
        self.counters = [WEAK_NOT_TAKEN] * self.entries
        self.reconstructed = [False] * self.entries
        self.history = 0
        self.lookups = 0
        self.updates = 0

    def index(self, pc: int, history: int | None = None) -> int:
        """PHT index for a branch at instruction index `pc`."""
        ghr = self.history if history is None else history
        return (pc ^ ghr) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction using the current GHR."""
        self.lookups += 1
        return predict_taken(self.counters[self.index(pc)])

    def update(self, pc: int, taken: bool, history: int | None = None) -> None:
        """Train the counter for (`pc`, GHR) and shift the outcome into
        the GHR.

        `history` overrides the GHR used for indexing (needed when the
        update is performed after later branches already shifted it).
        """
        entry = self.index(pc, history)
        self.counters[entry] = update_counter(self.counters[entry], taken)
        self.updates += 1
        self.push_history(taken)

    def push_history(self, taken: bool) -> None:
        """Shift one outcome into the global history register."""
        self.history = ((self.history << 1) | int(taken)) & self._history_mask

    def set_history(self, history: int) -> None:
        """Overwrite the GHR (used by reconstruction)."""
        self.history = history & self._history_mask

    def clear_reconstructed(self) -> None:
        for entry in range(self.entries):
            self.reconstructed[entry] = False

    def reset(self) -> None:
        for entry in range(self.entries):
            self.counters[entry] = WEAK_NOT_TAKEN
            self.reconstructed[entry] = False
        self.history = 0
        self.lookups = 0
        self.updates = 0
