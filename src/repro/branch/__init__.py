"""Branch prediction substrate: Gshare, BTB, RAS, combined predictor."""

from .config import PredictorConfig, paper_predictor_config
from .counters import (
    STRONG_NOT_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    STRONG_TAKEN,
    ALL_STATES,
    predict_taken,
    update_counter,
    apply_history,
)
from .gshare import GsharePHT
from .btb import BranchTargetBuffer
from .ras import ReturnAddressStack
from .predictor import BranchPredictor, PredictorStats

__all__ = [
    "PredictorConfig",
    "paper_predictor_config",
    "STRONG_NOT_TAKEN",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "STRONG_TAKEN",
    "ALL_STATES",
    "predict_taken",
    "update_counter",
    "apply_history",
    "GsharePHT",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchPredictor",
    "PredictorStats",
]
