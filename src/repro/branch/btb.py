"""Direct-mapped branch target buffer.

The paper reconstructs the BTB "similar to the cache reconstruction since
the BTB can be viewed as a direct mapped cache indicating the taken branch
target" (§3.2).  Per-entry reconstructed bits support that reverse pass:
in a direct-mapped structure the first (most recent) logged taken branch
to claim an entry wins and all older claimants are ignored.
"""

from __future__ import annotations

from .config import PredictorConfig


class BranchTargetBuffer:
    """Direct-mapped BTB tagged by branch instruction index."""

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.entries = config.btb_entries
        self._mask = self.entries - 1
        self.tags: list[int | None] = [None] * self.entries
        self.targets: list[int] = [0] * self.entries
        self.reconstructed = [False] * self.entries
        self.lookups = 0
        self.updates = 0

    def index(self, pc: int) -> int:
        return pc & self._mask

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at `pc`, or None on BTB miss."""
        self.lookups += 1
        entry = pc & self._mask
        if self.tags[entry] == pc:
            return self.targets[entry]
        return None

    def update(self, pc: int, target: int) -> None:
        """Record `pc` -> `target` (called for taken control transfers)."""
        entry = pc & self._mask
        self.tags[entry] = pc
        self.targets[entry] = target
        self.updates += 1

    def reconstruct(self, pc: int, target: int) -> bool:
        """Reverse-order reconstruction: first claimant of an entry wins.

        Returns True if the entry was written, False if it was already
        reconstructed by a more recent branch.
        """
        entry = pc & self._mask
        if self.reconstructed[entry]:
            return False
        self.tags[entry] = pc
        self.targets[entry] = target
        self.reconstructed[entry] = True
        self.updates += 1
        return True

    def clear_reconstructed(self) -> None:
        for entry in range(self.entries):
            self.reconstructed[entry] = False

    def reset(self) -> None:
        for entry in range(self.entries):
            self.tags[entry] = None
            self.targets[entry] = 0
            self.reconstructed[entry] = False
        self.lookups = 0
        self.updates = 0
