"""Combined branch predictor: Gshare PHT + direct-mapped BTB + RAS.

Prediction and training follow the paper's §4 framework (64K-entry Gshare,
4K-entry BTB, 8-entry RAS).  The same :meth:`BranchPredictor.update` path
is used by detailed simulation and by SMARTS-style functional warming, so
warmed predictor state is exactly what full simulation would produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Instruction, Opcode
from .btb import BranchTargetBuffer
from .config import PredictorConfig, paper_predictor_config
from .gshare import GsharePHT
from .ras import ReturnAddressStack


@dataclass
class PredictorStats:
    conditional_branches: int = 0
    mispredictions: int = 0
    control_transfers: int = 0
    target_mispredictions: int = 0

    def reset(self) -> None:
        self.conditional_branches = 0
        self.mispredictions = 0
        self.control_transfers = 0
        self.target_mispredictions = 0

    def misprediction_rate(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return self.mispredictions / self.conditional_branches


class BranchPredictor:
    """Front-end prediction state for one core."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config if config is not None else paper_predictor_config()
        self.pht = GsharePHT(self.config)
        self.btb = BranchTargetBuffer(self.config)
        self.ras = ReturnAddressStack(self.config)
        self.stats = PredictorStats()

    # -- prediction --------------------------------------------------------

    def predict(self, pc: int, inst: Instruction) -> int:
        """Predicted next instruction index for the control transfer at `pc`.

        A fall-through prediction (pc + 1) is produced when the direction
        predictor says not-taken or the BTB has no target for a predicted-
        taken transfer.
        """
        op = inst.opcode
        if inst.is_cond_branch:
            if self.pht.predict(pc):
                target = self.btb.lookup(pc)
                return target if target is not None else pc + 1
            return pc + 1
        if op is Opcode.RET:
            target = self.ras.peek()
            return target if target else pc + 1
        # Direct and indirect jumps/calls predict through the BTB.
        target = self.btb.lookup(pc)
        return target if target is not None else pc + 1

    # -- training -----------------------------------------------------------

    def update(self, pc: int, inst: Instruction, taken: bool,
               next_pc: int) -> None:
        """Train all structures with the resolved outcome of one transfer."""
        if inst.is_cond_branch:
            self.pht.update(pc, taken)
            if taken:
                self.btb.update(pc, next_pc)
            return
        if inst.is_ret:
            self.ras.pop()
            return
        if inst.is_call:
            self.ras.push(pc + 1)
        self.btb.update(pc, next_pc)

    def predict_and_update(self, pc: int, inst: Instruction, taken: bool,
                           next_pc: int) -> bool:
        """Predict, record statistics, then train.  Returns True on a
        misprediction (direction or target)."""
        predicted = self.predict(pc, inst)
        mispredicted = predicted != next_pc
        if inst.is_cond_branch:
            self.stats.conditional_branches += 1
            if mispredicted:
                self.stats.mispredictions += 1
        else:
            self.stats.control_transfers += 1
            if mispredicted:
                self.stats.target_mispredictions += 1
        self.update(pc, inst, taken, next_pc)
        return mispredicted

    # -- bookkeeping ----------------------------------------------------------

    def total_updates(self) -> int:
        """State-changing operations applied (warm-up cost metric)."""
        return self.pht.updates + self.btb.updates + self.ras.pushes \
            + self.ras.pops

    def clear_reconstructed(self) -> None:
        """Clear all reconstructed bits ahead of a reverse warm-up pass."""
        self.pht.clear_reconstructed()
        self.btb.clear_reconstructed()

    def export_state(self) -> dict:
        """Snapshot the architecturally visible predictor state
        (live-points support)."""
        return {
            "counters": list(self.pht.counters),
            "history": self.pht.history,
            "btb_tags": list(self.btb.tags),
            "btb_targets": list(self.btb.targets),
            "ras_stack": list(self.ras.stack),
            "ras_top": self.ras.top,
            "ras_depth": self.ras.depth,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state` (same geometry)."""
        if len(state["counters"]) != self.pht.entries or \
                len(state["btb_tags"]) != self.btb.entries or \
                len(state["ras_stack"]) != self.ras.size:
            raise ValueError("snapshot geometry does not match predictor")
        self.pht.counters = list(state["counters"])
        self.pht.set_history(state["history"])
        self.btb.tags = list(state["btb_tags"])
        self.btb.targets = list(state["btb_targets"])
        self.ras.stack = list(state["ras_stack"])
        self.ras.top = state["ras_top"]
        self.ras.depth = state["ras_depth"]
        self.clear_reconstructed()

    def reset(self) -> None:
        self.pht.reset()
        self.btb.reset()
        self.ras.reset()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"BranchPredictor(pht={self.config.pht_entries}, "
            f"btb={self.config.btb_entries}, ras={self.config.ras_entries})"
        )
