"""Branch-predictor configuration.

Defaults follow the paper's §4: a 64K-entry Gshare predictor, a 4K-entry
BTB, and an eight-entry return address stack.  As with the caches, a
`scale` parameter shrinks table capacities for the shorter synthetic
workloads while preserving structure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PredictorConfig:
    """Sizes of the prediction structures."""

    pht_entries: int
    btb_entries: int
    ras_entries: int

    def __post_init__(self) -> None:
        for name in ("pht_entries", "btb_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.ras_entries <= 0:
            raise ValueError("ras_entries must be positive")

    @property
    def history_bits(self) -> int:
        """Width of the global history register (log2 of PHT entries)."""
        return self.pht_entries.bit_length() - 1


def paper_predictor_config(scale: int = 16) -> PredictorConfig:
    """The paper's predictor, scaled down by `scale` (power of two)."""
    if scale < 1 or scale & (scale - 1):
        raise ValueError("scale must be a power of two >= 1")
    return PredictorConfig(
        pht_entries=64 * 1024 // scale,
        btb_entries=4 * 1024 // scale,
        ras_entries=8,
    )
