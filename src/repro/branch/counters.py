"""Two-bit saturating counter semantics (paper Figure 3, left side).

Counter encoding:

====  ===================  ==========
value state                prediction
====  ===================  ==========
0     strongly not taken   not taken
1     weakly not taken     not taken
2     weakly taken         taken
3     strongly taken       taken
====  ===================  ==========
"""

from __future__ import annotations

STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3

ALL_STATES = frozenset({0, 1, 2, 3})


def predict_taken(counter: int) -> bool:
    """Prediction implied by a counter value."""
    return counter >= WEAK_TAKEN


def update_counter(counter: int, taken: bool) -> int:
    """Saturating increment on taken, decrement on not taken."""
    if taken:
        return counter + 1 if counter < STRONG_TAKEN else STRONG_TAKEN
    return counter - 1 if counter > STRONG_NOT_TAKEN else STRONG_NOT_TAKEN


def apply_history(counter: int, outcomes) -> int:
    """Fold a forward-order outcome sequence into `counter`."""
    for taken in outcomes:
        counter = update_counter(counter, taken)
    return counter
