"""Geometry-keyed, content-addressed store for Phase A artifacts.

The paper's central economy — pay the functional cold scan once, spend
detailed simulation only on sampled clusters — dies with the process in
a plain two-phase run: every matrix cell, re-run, or service job that
varies only *core* parameters re-executes an identical Phase A scan.
The :class:`CheckpointStore` persists what Phase A produces — the
per-cluster :class:`~repro.sampling.pipeline.ClusterShard`s (functional
checkpoint + detached skip log) and warmed live-point states — under a
content-derived key, so any later run whose Phase A inputs match
materialises the shards straight from disk and goes directly to Phase B.

Key discipline mirrors :mod:`repro.harness.cache`: a sha256 over the
JSON-stable rendering of exactly the inputs Phase A depends on —

- the **workload fingerprint** (name, tuning parameters, program length,
  memory footprint),
- the **functional-ISA code version** (:func:`functional_code_version`,
  a digest of the subpackages whose edits change what a cold scan
  produces — deliberately *excluding* timing, harness, telemetry, and
  service code so core-parameter sweeps and observability changes keep
  hitting),
- the **sampling geometry** (regimen, warm-up prefix, detail ramp),
- the **cache/predictor geometry** (compacted logs and warmed states are
  sized to it; the core config is deliberately absent — Phase A is
  timing-independent, which is the whole point),
- the **warm-up method identity** (class, fraction, warmed structures,
  ablation switches) and the resolved **source kind** (raw/compacted).

Entries are written via temp-file + atomic rename with a JSON manifest
alongside each blob (byte count, content digest, geometry echo); loads
cross-check the blob digest against the manifest, so a truncated or
bit-rotted entry degrades to a re-scan instead of corrupting a run.
Each run additionally appends the entries it wrote to a per-run manifest
(``<root>/runs/<run_id>.jsonl``) for provenance.

Control knob: the ``REPRO_CHECKPOINT_STORE`` environment variable
(``off``/``on``/directory path, same spellings as the result cache),
threaded through :class:`~repro.harness.options.RunOptions` and the
``--store`` CLI flags.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from .serialization import (
    atomic_write_bytes,
    atomic_write_json,
    blob_digest,
    digest_key,
    read_json,
    stable_payload,
    warn_once,
)

#: Environment variable controlling the default store location.
STORE_ENV_VAR = "REPRO_CHECKPOINT_STORE"

_OFF_VALUES = {"off", "0", "none", "no", "false", "disabled", ""}
_ON_VALUES = {"on", "auto", "1", "default", "yes", "true"}

#: Subpackages whose source a Phase A cold scan executes.  Edits outside
#: this set (timing core, harness, telemetry, service, analysis, CLI)
#: cannot change what the scan produces, so they do not invalidate
#: stored shards — unlike the result cache's whole-package
#: :func:`~repro.harness.cache.code_version`, which must also track
#: timing-dependent outputs.
PHASE_A_PACKAGES = (
    "functional", "isa", "workloads", "core",
    "sampling", "warmup", "branch", "cache",
)


def default_store_dir() -> Path:
    """The XDG-style default location for the checkpoint store."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "checkpoints"


@lru_cache(maxsize=1)
def functional_code_version() -> str:
    """Digest of the Phase-A-relevant subpackages (the store's code key).

    Any edit under :data:`PHASE_A_PACKAGES` changes this digest and
    therefore every store key; edits to timing, harness, or
    observability code leave it untouched, so stored scans keep serving
    core-parameter sweeps across simulator changes that cannot affect
    them.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for name in PHASE_A_PACKAGES:
        for path in sorted((package_root / name).rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def workload_fingerprint(workload) -> dict:
    """JSON-stable identity of one generated workload."""
    return {
        "name": workload.name,
        "parameters": stable_payload(workload.parameters),
        "instructions": len(workload.program),
        "memory_words": workload.memory.footprint_words(),
    }


def shard_store_key(workload, regimen, configs, *, warmup_prefix: int,
                    detail_ramp: int, method_identity: dict) -> str:
    """Content hash addressing one run's Phase A shard set.

    `method_identity` comes from
    :meth:`~repro.warmup.base.WarmupMethod.store_identity` and carries
    the resolved source kind; ``configs.core`` is deliberately excluded
    (see the module docstring).
    """
    return digest_key({
        "kind": "shards",
        "workload": workload_fingerprint(workload),
        "regimen": stable_payload(regimen),
        "warmup_prefix": warmup_prefix,
        "detail_ramp": detail_ramp,
        "hierarchy": stable_payload(configs.hierarchy),
        "predictor": stable_payload(configs.predictor),
        "method": stable_payload(method_identity),
        "source": method_identity.get("source"),
        "code": functional_code_version(),
    })


def livepoint_store_key(workload, regimen, configs, *, warmup_prefix: int,
                        method_identity: dict) -> str:
    """Content hash addressing one warmed live-point library."""
    return digest_key({
        "kind": "livepoints",
        "workload": workload_fingerprint(workload),
        "regimen": stable_payload(regimen),
        "warmup_prefix": warmup_prefix,
        "hierarchy": stable_payload(configs.hierarchy),
        "predictor": stable_payload(configs.predictor),
        "method": stable_payload(method_identity),
        "code": functional_code_version(),
    })


@dataclass
class StoreStats:
    """Hit/miss/byte accounting for checkpoint-store traffic."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def __str__(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes, {self.corrupt} corrupt")


#: Process-wide totals across every store instance — the service folds
#: deltas of this into its ``/metrics`` counters after each job.
GLOBAL_STORE_STATS = StoreStats()


def global_store_stats() -> StoreStats:
    """The process-wide :class:`StoreStats` accumulator."""
    return GLOBAL_STORE_STATS


@dataclass
class CheckpointStore:
    """A directory of Phase A artifacts addressed by content key.

    Blobs live at ``<root>/<kind>/<key[:2]>/<key>.pkl`` with a JSON
    manifest at ``<key>.json`` beside each; `kind` is ``"shards"`` or
    ``"livepoints"``.  All failure modes degrade to a miss (with a
    warn-once stderr note for corruption) — the store must never fail a
    run.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    KINDS = ("shards", "livepoints")

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _blob_path(self, key: str, kind: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def _manifest_path(self, key: str, kind: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    # -- read path ---------------------------------------------------------

    def get(self, key: str, *, kind: str = "shards",
            expect: "dict | None" = None):
        """The stored value for `key`, or None on a miss.

        The blob's sha256 must match the manifest's recorded digest, and
        every item of `expect` must equal the manifest's metadata — the
        cross-check that proves the entry matches what a live scan would
        produce before a single byte is unpickled.
        """
        blob_path = self._blob_path(key, kind)
        try:
            payload = blob_path.read_bytes()
        except FileNotFoundError:
            return self._miss()
        except OSError as exc:
            return self._corrupt(blob_path, exc)
        manifest = read_json(self._manifest_path(key, kind))
        if manifest is None:
            return self._corrupt(blob_path, "manifest missing or unreadable")
        if manifest.get("digest") != blob_digest(payload):
            return self._corrupt(blob_path, "content digest mismatch")
        for name, value in (expect or {}).items():
            if manifest.get(name) != value:
                return self._corrupt(
                    blob_path,
                    f"manifest field {name!r} is {manifest.get(name)!r}, "
                    f"expected {value!r}")
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            return self._corrupt(blob_path, exc)
        self.stats.hits += 1
        self.stats.bytes_read += len(payload)
        GLOBAL_STORE_STATS.hits += 1
        GLOBAL_STORE_STATS.bytes_read += len(payload)
        return value

    def _miss(self):
        self.stats.misses += 1
        GLOBAL_STORE_STATS.misses += 1
        return None

    def _corrupt(self, path, reason):
        """Warn once per path, count, and degrade to a miss."""
        warn_once("checkpoint-store entry", str(path),
                  f"warning: corrupt checkpoint-store entry at {path} "
                  f"treated as a miss; the cold scan will re-run "
                  f"({reason})")
        self.stats.corrupt += 1
        GLOBAL_STORE_STATS.corrupt += 1
        return self._miss()

    # -- write path --------------------------------------------------------

    def put(self, key: str, value, *, kind: str = "shards",
            meta: "dict | None" = None) -> int:
        """Atomically persist `value` under `key`; returns blob bytes.

        The manifest records the blob's size and content digest plus any
        caller-supplied `meta` (geometry echo for the read-side
        cross-check); both files land via temp-file + atomic rename, and
        the entry is appended to the current run's manifest.
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = {
            **(meta or {}),
            "key": key,
            "kind": kind,
            "bytes": len(blob),
            "digest": blob_digest(blob),
            "code": functional_code_version(),
        }
        atomic_write_bytes(self._blob_path(key, kind), blob)
        atomic_write_json(self._manifest_path(key, kind), manifest)
        self.stats.writes += 1
        self.stats.bytes_written += len(blob)
        GLOBAL_STORE_STATS.writes += 1
        GLOBAL_STORE_STATS.bytes_written += len(blob)
        self._record_run_entry(manifest)
        return len(blob)

    def _record_run_entry(self, manifest: dict) -> None:
        """Append one line to the writing run's provenance manifest.

        Keyed by the ambient ``REPRO_RUN_ID``; runs without a
        correlation id (bare library calls) skip the provenance record.
        Appends of one short line are atomic enough on POSIX for the
        observability purpose this serves; failures never hurt the run.
        """
        from ..telemetry.runid import run_id_from_env

        run_id = run_id_from_env()
        if run_id is None:
            return
        line = json.dumps({"run_id": run_id, **manifest}, sort_keys=True)
        path = self.root / "runs" / f"{run_id}.jsonl"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a", encoding="utf-8") as stream:
                stream.write(line + "\n")
        except OSError:
            pass

    # -- accounting + maintenance ------------------------------------------

    def __contains__(self, key: str) -> bool:
        return any(self._blob_path(key, kind).exists()
                   for kind in self.KINDS)

    def entry_count(self) -> int:
        """Blobs stored, across every kind."""
        return sum(1 for kind in self.KINDS
                   for _ in self.root.glob(f"{kind}/*/*.pkl"))

    def total_bytes(self) -> int:
        """Bytes on disk: blobs, manifests, and run provenance."""
        from .serialization import directory_stats

        return directory_stats(self.root)[1]

    def gc(self, max_bytes: int) -> list[Path]:
        """Evict oldest-mtime blobs until the store fits `max_bytes`.

        The budget is shared across kinds; a blob's manifest is removed
        with it (the pair is useless apart) but only blob bytes count
        toward the budget, and run provenance files are left alone.
        Returns the removed blob paths.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        total = 0
        for kind in self.KINDS:
            for path in self.root.glob(f"{kind}/*/*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, str(path), path,
                                stat.st_size))
                total += stat.st_size
        entries.sort(key=lambda item: (item[0], item[1]))
        removed: list[Path] = []
        for _, _, path, size in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed.append(path)
        for blob in removed:
            try:
                blob.with_suffix(".json").unlink()
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every blob (manifests ride along); returns the count."""
        return len(self.gc(0))


def resolve_store(
    setting: "str | Path | CheckpointStore | None" = None,
    *,
    default: "str | None" = None,
) -> "CheckpointStore | None":
    """Turn a store setting into a :class:`CheckpointStore` (or None).

    Precedence: an explicit `setting` wins; otherwise the
    ``REPRO_CHECKPOINT_STORE`` environment variable; otherwise
    `default`.  Value spellings match the result cache: ``off``-family
    disables, ``on``-family selects :func:`default_store_dir`, anything
    else is a directory path.
    """
    if isinstance(setting, CheckpointStore):
        return setting
    if isinstance(setting, Path):
        return CheckpointStore(setting)
    if setting is None:
        setting = os.environ.get(STORE_ENV_VAR)
    if setting is None:
        setting = default
    if setting is None:
        return None
    lowered = str(setting).strip().lower()
    if lowered in _OFF_VALUES:
        return None
    if lowered in _ON_VALUES:
        return CheckpointStore(default_store_dir())
    return CheckpointStore(Path(setting))
