"""Atomic on-disk serialization shared by the result cache and the store.

Both persistence layers — the result cache (`repro.harness.cache`) and
the checkpoint store (`repro.store.checkpoint`) — obey the same three
rules, implemented once here:

- **Writes are atomic.**  Every file lands via a temp file in the target
  directory followed by :func:`os.replace`, so a concurrent reader (or a
  crashed writer) can never observe a torn entry.
- **Corruption is a miss, not an error.**  A persistence layer must
  never fail a run: unreadable, truncated, or garbage entries degrade to
  re-computation.  :func:`warn_once` surfaces the first such entry per
  (category, path) on stderr so silent bit-rot is still visible.
- **Keys are content hashes.**  :func:`stable_payload` renders config
  objects (dataclasses, enums, containers) into JSON-stable primitives
  so two processes derive byte-identical key material for equal inputs.

This module is stdlib-only and import-cycle-free: the harness cache and
the checkpoint store both import it, never each other.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import sys
import tempfile
import threading
from pathlib import Path


class CorruptEntryError(Exception):
    """An on-disk entry exists but cannot be deserialised."""


def stable_payload(value):
    """Recursively convert a config object into JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: stable_payload(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (list, tuple)):
        return [stable_payload(item) for item in value]
    if isinstance(value, dict):
        return {str(key): stable_payload(item)
                for key, item in sorted(value.items())}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def digest_key(payload: dict) -> str:
    """sha256 hex digest of a :func:`stable_payload`-rendered mapping."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def blob_digest(data: bytes) -> str:
    """Content digest of one serialized value (manifest cross-check)."""
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# atomic writes
# ---------------------------------------------------------------------------


def atomic_write_bytes(path, data: bytes) -> int:
    """Write `data` to `path` atomically; returns the byte count.

    The temp file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename — atomic on POSIX —
    and is unlinked on any failure, leaving no droppings behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=path.suffix
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_pickle(path, value) -> int:
    """Atomically pickle `value` to `path`; returns the byte count."""
    return atomic_write_bytes(
        path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def atomic_write_json(path, payload: dict) -> int:
    """Atomically write `payload` as pretty JSON; returns the byte count."""
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    return atomic_write_bytes(path, text.encode("utf-8"))


# ---------------------------------------------------------------------------
# safe reads
# ---------------------------------------------------------------------------


def read_pickle(path):
    """``(value, payload_bytes)`` for a pickled entry.

    Raises :class:`FileNotFoundError` when the entry does not exist and
    :class:`CorruptEntryError` for anything else — truncated files,
    garbage bytes, unresolvable classes.  Callers that want
    miss-semantics use :func:`safe_read_pickle`.
    """
    payload = Path(path).read_bytes()
    try:
        return pickle.loads(payload), payload
    except Exception as exc:
        raise CorruptEntryError(f"{path}: {exc}") from exc


def safe_read_pickle(path, *, category: str = "entry"):
    """``(value, payload_bytes)`` or ``(None, b"")`` on miss.

    A missing entry is a silent miss; a present-but-unreadable entry is
    a miss too, but warns once per (category, path) on stderr — a cache
    must never fail a run, yet bit-rot should not be invisible.
    """
    try:
        return read_pickle(path)
    except FileNotFoundError:
        return None, b""
    except (CorruptEntryError, OSError) as exc:
        warn_once(category, str(path),
                  f"warning: unreadable {category} at {path} "
                  f"treated as a miss ({exc})")
        return None, b""


def read_json(path) -> "dict | None":
    """Parsed JSON mapping, or None when missing/unreadable (warn-once)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as exc:
        warn_once("manifest", str(path),
                  f"warning: unreadable manifest at {path} "
                  f"treated as a miss ({exc})")
        return None
    return payload if isinstance(payload, dict) else None


# ---------------------------------------------------------------------------
# warn-once registry
# ---------------------------------------------------------------------------

_WARNED: set = set()
_WARNED_LOCK = threading.Lock()


def warn_once(category: str, key: str, message: str) -> bool:
    """Print `message` to stderr the first time (`category`, `key`) is
    seen in this process; returns True when the warning fired."""
    with _WARNED_LOCK:
        if (category, key) in _WARNED:
            return False
        _WARNED.add((category, key))
    print(message, file=sys.stderr, flush=True)
    return True


def reset_warnings() -> None:
    """Forget warn-once state (test isolation)."""
    with _WARNED_LOCK:
        _WARNED.clear()


# ---------------------------------------------------------------------------
# directory accounting + eviction
# ---------------------------------------------------------------------------


def directory_stats(root, pattern: str = "**/*") -> tuple[int, int]:
    """``(entry_count, total_bytes)`` over files matching `pattern`."""
    root = Path(root)
    count = 0
    total = 0
    if not root.exists():
        return 0, 0
    for path in root.glob(pattern):
        if not path.is_file():
            continue
        try:
            total += path.stat().st_size
        except OSError:
            continue
        count += 1
    return count, total


def evict_lru(root, max_bytes: int, pattern: str = "**/*") -> list[Path]:
    """Delete oldest-mtime files under `root` until the matching files
    total at most `max_bytes`; returns the paths removed.

    Eviction order is (mtime, path) so ties break deterministically.
    `max_bytes` must be >= 0 (0 empties the directory).
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    root = Path(root)
    if not root.exists():
        return []
    entries = []
    total = 0
    for path in root.glob(pattern):
        if not path.is_file():
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, str(path), path, stat.st_size))
        total += stat.st_size
    entries.sort(key=lambda item: (item[0], item[1]))
    removed: list[Path] = []
    for _, _, path, size in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed.append(path)
    return removed
