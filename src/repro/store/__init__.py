"""Content-addressed checkpoint store (Phase A artifacts + live-points).

Public surface of the persistence subsystem introduced for O(sampled)
core-parameter sweeps: the geometry-keyed :class:`CheckpointStore`
(see :mod:`.checkpoint` for the key schema and invalidation rules) and
the atomic-serialization helpers (:mod:`.serialization`) shared with the
result cache and the live-points library.
"""

from .checkpoint import (
    CheckpointStore,
    PHASE_A_PACKAGES,
    STORE_ENV_VAR,
    StoreStats,
    default_store_dir,
    functional_code_version,
    global_store_stats,
    livepoint_store_key,
    resolve_store,
    shard_store_key,
    workload_fingerprint,
)
from .serialization import (
    CorruptEntryError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_pickle,
    blob_digest,
    digest_key,
    directory_stats,
    evict_lru,
    read_pickle,
    safe_read_pickle,
    stable_payload,
    warn_once,
)

__all__ = [
    "CheckpointStore",
    "CorruptEntryError",
    "PHASE_A_PACKAGES",
    "STORE_ENV_VAR",
    "StoreStats",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_pickle",
    "blob_digest",
    "default_store_dir",
    "digest_key",
    "directory_stats",
    "evict_lru",
    "functional_code_version",
    "global_store_stats",
    "livepoint_store_key",
    "read_pickle",
    "resolve_store",
    "safe_read_pickle",
    "shard_store_key",
    "stable_payload",
    "warn_once",
    "workload_fingerprint",
]
