"""Live-points: checkpoint-based sampled simulation.

Implements the technique of the paper's reference [18] (Wenisch et al.,
"Simulation Sampling with Live-Points", ISPASS 2006): instead of
fast-forwarding functionally to every cluster on every experiment, the
architectural state *and* the warmed microarchitectural state at each
cluster boundary are captured once into a reusable library.  Subsequent
experiments — typically sweeps over *core* parameters, which do not
invalidate cache or predictor contents — replay only the detailed
clusters, turning an O(population) simulation into an
O(sampled instructions) one.

Two caveats carried over from the original technique:

- a live-point library is tied to the cache/predictor geometry it was
  generated with (changing those invalidates the warmed state);
- the state stored is whatever the generating warm-up method produced
  (SMARTS warming by default, so replays inherit its accuracy).
"""

from __future__ import annotations

import pickle
import time
import warnings
from dataclasses import dataclass, field

from ..branch import BranchPredictor
from ..cache import MemoryHierarchy
from ..functional import Checkpoint, FunctionalMachine
from ..sampling.controller import SimulatorConfigs
from ..sampling.regimen import SamplingRegimen
from ..sampling.statistics import SampleEstimate, cluster_estimate
from ..timing import CoreConfig, TimingSimulator
from ..warmup.base import SimulationContext, WarmupMethod
from ..warmup.fixed_period import SmartsWarmup
from ..workloads import Workload


@dataclass
class LivePoint:
    """One cluster's entry point: architectural + warmed microarch state."""

    start_instruction: int
    architectural: Checkpoint
    cache_state: dict
    predictor_state: dict


@dataclass
class LivePointReplayResult:
    """Outcome of replaying a library under one core configuration."""

    workload_name: str
    cluster_ipcs: list[float]
    estimate: SampleEstimate
    wall_seconds: float
    extra: dict = field(default_factory=dict)

    def relative_error(self, true_ipc: float) -> float:
        return abs(true_ipc - self.estimate.mean) / abs(true_ipc)

    def passes_confidence_test(self, true_ipc: float) -> bool:
        return self.estimate.contains(true_ipc)


class LivePointLibrary:
    """A reusable collection of warmed cluster entry points."""

    def __init__(
        self,
        workload: Workload,
        regimen: SamplingRegimen,
        configs: SimulatorConfigs,
        points: list[LivePoint],
        generation_seconds: float = 0.0,
    ) -> None:
        self.workload = workload
        self.regimen = regimen
        self.configs = configs
        self.points = points
        self.generation_seconds = generation_seconds

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        workload: Workload,
        regimen: SamplingRegimen,
        configs: SimulatorConfigs | None = None,
        warmup: WarmupMethod | None = None,
        warmup_prefix: int = 0,
    ) -> "LivePointLibrary":
        """Build a library by one pass of warmed functional simulation.

        `warmup` controls how microarchitectural state is maintained
        between capture points (SMARTS full functional warming by
        default, matching the original live-points recipe).
        """
        configs = configs if configs is not None else SimulatorConfigs()
        method = warmup if warmup is not None else SmartsWarmup()
        machine = workload.make_machine()
        hierarchy = MemoryHierarchy(configs.hierarchy)
        predictor = BranchPredictor(configs.predictor)
        method.bind(SimulationContext(
            machine=machine, hierarchy=hierarchy, predictor=predictor,
            regimen=regimen,
        ))

        start_time = time.perf_counter()
        if warmup_prefix:
            from ..sampling.controller import steady_state_prefix
            steady_state_prefix(machine, hierarchy, predictor, warmup_prefix)

        points: list[LivePoint] = []
        position = 0
        for cluster_start in regimen.cluster_starts():
            gap = cluster_start - position
            if gap > 0:
                method.skip(gap)
            method.pre_cluster()
            points.append(LivePoint(
                start_instruction=cluster_start,
                architectural=machine.checkpoint(),
                cache_state=hierarchy.export_state(),
                predictor_state=predictor.export_state(),
            ))
            method.post_cluster()
            # Advance architecturally through the cluster so the next gap
            # starts from the right place; state stays warm via `method`.
            method.skip(regimen.cluster_size)
            position = cluster_start + regimen.cluster_size
        generation_seconds = time.perf_counter() - start_time
        return cls(workload, regimen, configs, points, generation_seconds)

    # -- replay ---------------------------------------------------------------

    def replay(self, core_config: CoreConfig | None = None,
               pre_branch_hook=None) -> LivePointReplayResult:
        """Detail-simulate every stored cluster under `core_config`.

        Only the clusters run — no functional fast-forwarding — so a
        replay costs a small fraction of a full sampled simulation and
        can be repeated for many core configurations.
        """
        configs = self.configs
        core = core_config if core_config is not None else configs.core
        cluster_ipcs: list[float] = []
        start_time = time.perf_counter()
        for point in self.points:
            machine = FunctionalMachine(self.workload.program)
            machine.restore(point.architectural)
            hierarchy = MemoryHierarchy(configs.hierarchy)
            hierarchy.load_state(point.cache_state)
            predictor = BranchPredictor(configs.predictor)
            predictor.load_state(point.predictor_state)
            timing = TimingSimulator(machine, hierarchy, predictor, core)
            result = timing.run(
                self.regimen.cluster_size, pre_branch_hook=pre_branch_hook,
            )
            cluster_ipcs.append(result.ipc)
        wall_seconds = time.perf_counter() - start_time
        return LivePointReplayResult(
            workload_name=self.workload.name,
            cluster_ipcs=cluster_ipcs,
            estimate=cluster_estimate(cluster_ipcs),
            wall_seconds=wall_seconds,
            extra={"core_config": core},
        )

    # -- persistence ----------------------------------------------------------

    #: Payload format marker for :meth:`save` / :meth:`load`.  Version 1
    #: wraps the library in a manifest-style envelope written through
    #: the checkpoint store's atomic serialization helpers; version 0 is
    #: the historical bare ``pickle.dump(self)`` layout, still loadable
    #: through the legacy shim (with a DeprecationWarning).
    PAYLOAD_VERSION = 1

    def save(self, path) -> None:
        """Serialise the library for later replays (atomic write).

        Written through the shared store serialization helpers
        (:func:`repro.store.serialization.atomic_write_pickle`), so a
        crashed or concurrent writer can never leave a torn library on
        disk.  The envelope carries a content digest and point count
        that :meth:`load` cross-checks.
        """
        from ..store.serialization import atomic_write_pickle, blob_digest

        blob = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_pickle(path, {
            "format": "repro-livepoints",
            "version": self.PAYLOAD_VERSION,
            "workload": self.workload.name,
            "points": len(self.points),
            "digest": blob_digest(blob),
            "library": blob,
        })

    @staticmethod
    def load(path) -> "LivePointLibrary":
        """Load a library saved by :meth:`save`.

        Cross-checks the envelope's content digest and point count
        before trusting the payload; a bare-pickle file from an older
        version still loads, with a :class:`DeprecationWarning` asking
        for a re-save.  Only load files you created yourself: pickle
        executes arbitrary code on malicious inputs.
        """
        from ..store.serialization import (
            CorruptEntryError,
            blob_digest,
            read_pickle,
        )

        value, _ = read_pickle(path)
        if isinstance(value, LivePointLibrary):
            # Legacy (version 0) bare-pickle layout.
            warnings.warn(
                f"{path} uses the legacy bare-pickle live-points layout; "
                f"re-save it with LivePointLibrary.save for the "
                f"digest-checked envelope",
                DeprecationWarning, stacklevel=2,
            )
            return value
        if (not isinstance(value, dict)
                or value.get("format") != "repro-livepoints"):
            raise TypeError("file does not contain a LivePointLibrary")
        blob = value.get("library", b"")
        if value.get("digest") != blob_digest(blob):
            raise CorruptEntryError(
                f"{path}: live-points payload digest mismatch")
        library = pickle.loads(blob)
        if not isinstance(library, LivePointLibrary):
            raise TypeError("file does not contain a LivePointLibrary")
        if value.get("points") != len(library.points):
            raise CorruptEntryError(
                f"{path}: envelope records {value.get('points')} points "
                f"but the library holds {len(library.points)}")
        return library

    # -- checkpoint-store integration ------------------------------------------

    def store_key(self, *, warmup_prefix: int = 0,
                  method_identity: "dict | None" = None) -> str:
        """The content-addressed store key for this library.

        `method_identity` is the generating warm-up method's
        :meth:`~repro.warmup.base.WarmupMethod.store_identity` (the
        default SMARTS recipe when None) — libraries warmed by
        different methods hold different microarchitectural state and
        must never share a key.
        """
        from ..store import livepoint_store_key

        return livepoint_store_key(
            self.workload, self.regimen, self.configs,
            warmup_prefix=warmup_prefix,
            method_identity=(method_identity
                             or {"method": "SmartsWarmup"}),
        )

    def store_in(self, store, *, warmup_prefix: int = 0,
                 method_identity: "dict | None" = None) -> str:
        """Persist this library under its content key; returns the key."""
        key = self.store_key(warmup_prefix=warmup_prefix,
                             method_identity=method_identity)
        store.put(key, self, kind="livepoints", meta={
            "workload": self.workload.name,
            "points": len(self.points),
            "cluster_size": int(self.regimen.cluster_size),
        })
        return key

    @staticmethod
    def from_store(store, key: str) -> "LivePointLibrary | None":
        """The stored library for `key`, or None on a (possibly
        corrupt-degraded) miss."""
        value = store.get(key, kind="livepoints")
        if value is not None and not isinstance(value, LivePointLibrary):
            return None
        return value

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return (
            f"LivePointLibrary({self.workload.name!r}, "
            f"{len(self.points)} points, "
            f"cluster_size={self.regimen.cluster_size})"
        )
