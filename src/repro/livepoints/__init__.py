"""Live-points: reusable warmed checkpoints for sampled simulation."""

from .library import (
    LivePoint,
    LivePointLibrary,
    LivePointReplayResult,
)

__all__ = [
    "LivePoint",
    "LivePointLibrary",
    "LivePointReplayResult",
]
