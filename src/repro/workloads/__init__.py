"""Synthetic SPEC2000-like workload generators."""

from .generator import (
    Workload,
    init_pointer_chain,
    init_jump_table,
    init_array,
    round_up_power_of_two,
)
from .spec_like import (
    PAPER_WORKLOADS,
    WORKLOAD_BUILDERS,
    available_workloads,
    build_workload,
    build_ammp,
    build_art,
    build_gcc,
    build_mcf,
    build_parser,
    build_perl,
    build_twolf,
    build_vortex,
    build_vpr,
)

__all__ = [
    "Workload",
    "init_pointer_chain",
    "init_jump_table",
    "init_array",
    "round_up_power_of_two",
    "PAPER_WORKLOADS",
    "WORKLOAD_BUILDERS",
    "available_workloads",
    "build_workload",
    "build_ammp",
    "build_art",
    "build_gcc",
    "build_mcf",
    "build_parser",
    "build_perl",
    "build_twolf",
    "build_vortex",
    "build_vpr",
]
