"""Workload container and memory-image initialisation helpers.

A :class:`Workload` bundles a program with its initial memory image (jump
tables, pointer chains, seeded arrays).  Calling :meth:`Workload.make_machine`
yields a fresh :class:`~repro.functional.FunctionalMachine` with a private
copy of the image, so repeated experiments on the same workload are
independent and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..functional import FunctionalMachine, Memory, WORD_BYTES
from ..isa import Program


@dataclass
class Workload:
    """A generated benchmark: program + initial memory + metadata."""

    name: str
    program: Program
    memory: Memory
    description: str = ""
    #: Free-form tuning knobs recorded for reports (working set sizes, ...).
    parameters: dict = field(default_factory=dict)

    def make_machine(self) -> FunctionalMachine:
        """Fresh functional machine over a private copy of the image."""
        return FunctionalMachine(self.program, self.memory.copy())

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, {len(self.program)} instructions, "
            f"{self.memory.footprint_words()} data words)"
        )


def init_pointer_chain(
    memory: Memory, base: int, num_words: int, rng: np.random.Generator
) -> int:
    """Lay out a random single-cycle linked chain over `num_words` words.

    Each word holds the byte address of the next node; the chain visits
    every word exactly once before wrapping.  Returns the head address.
    """
    if num_words < 2:
        raise ValueError("a chain needs at least two nodes")
    permutation = rng.permutation(num_words)
    addresses = base + permutation.astype(np.int64) * WORD_BYTES
    for position in range(num_words):
        next_position = (position + 1) % num_words
        memory.store(int(addresses[position]), int(addresses[next_position]))
    return int(addresses[0])


def init_jump_table(memory: Memory, base: int, entries: list[int]) -> None:
    """Store function entry indices at consecutive words from `base`."""
    memory.fill_words(base, entries)


def init_array(
    memory: Memory, base: int, num_words: int, rng: np.random.Generator,
    max_value: int = 1 << 16,
) -> None:
    """Fill `num_words` words from `base` with small random values."""
    values = rng.integers(0, max_value, size=num_words)
    memory.fill_words(base, (int(v) for v in values))


def round_up_power_of_two(value: int) -> int:
    """Smallest power of two >= value (jump-table masks need 2^k sizes)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()
