"""Nine SPEC2000-like synthetic benchmarks.

The paper evaluates on gcc, mcf, parser, perl, vortex, vpr, twolf (integer)
and ammp, art (floating point).  Real SPEC binaries and reference inputs
are not available here, so each benchmark is replaced by a synthetic
program tuned to echo its qualitative character — the properties that the
warm-up comparison is actually sensitive to (see DESIGN.md §2):

==========  =================================================================
benchmark   synthetic character
==========  =================================================================
ammp        numeric streaming sweep + neighbour-list chasing, mul-heavy
art         regular array streaming over two large feature arrays, strongly
            biased (predictable) branches, phase alternation
gcc         large code footprint (I-cache pressure), indirect dispatch,
            drifting symbol-table hot window, moderate-entropy branches
mcf         pointer chasing that sweeps a working set 4x the L2 —
            cache-hostile, latency-bound
parser      deep recursion (RAS churn) + drifting dictionary window +
            maximal-entropy data-dependent branches
perl        interpreter-style indirect call dispatch + hash-table window
vortex      call-heavy object store: store-rich methods over a drifting
            object window
vpr         annealing over a drifting placement window + wire sweeps,
            accept/reject branches, phase behaviour
twolf       like vpr with a pointer-chased net list and stronger branch bias
==========  =================================================================

Two design rules keep the cold-start problem realistic at laptop scale:

1. **Footprints exceed the (scaled) L2**, as SPEC working sets exceed the
   paper's 1 MB L2 — stale cache contents are genuinely wrong, not merely
   displaced.
2. **Locality drifts**: kernels access drifting hot windows, advancing
   stream cursors, or a continuing pointer chase, so *recency* determines
   hit rates.  Uniformly random access would make a stale cache as good
   as a warm one (capacity decides, not contents) and hide non-sampling
   bias entirely.

All footprints scale with `mem_scale`; all randomness derives from the
given seed, so workloads are bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from ..functional import Memory
from ..isa import ProgramBuilder, DEFAULT_DATA_BASE
from . import kernels
from .generator import (
    Workload,
    init_array,
    init_jump_table,
    init_pointer_chain,
    round_up_power_of_two,
)


class _Allocator:
    """Bump allocator handing out line-aligned data-segment regions."""

    def __init__(self, base: int) -> None:
        self._next = base

    def take(self, num_words: int) -> int:
        base = self._next
        self._next += num_words * 8
        # Keep regions line-aligned and separated by one line.
        self._next = (self._next + 127) & ~63
        return base


def _call(builder: ProgramBuilder, entry: str, a0=None, a1=None, a2=None,
          a3=None):
    """Load up to four immediate arguments (r10..r13) and call `entry`."""
    if a0 is not None:
        builder.li(10, a0)
    if a1 is not None:
        builder.li(11, a1)
    if a2 is not None:
        builder.li(12, a2)
    if a3 is not None:
        builder.li(13, a3)
    builder.call(entry)


def _begin_main(builder: ProgramBuilder, seed: int,
                phase_period: int = 0) -> None:
    """Emit the main-loop prologue: RNG seed, cursors, phase globals."""
    builder.label("main")
    builder.li(kernels.RNG_REG, seed | 1)
    builder.add(22, 0, 0)   # secondary stream cursor
    builder.add(24, 0, 0)   # primary stream cursor
    builder.add(25, 0, 0)   # hot-window base
    if phase_period:
        builder.li(27, phase_period)
        builder.add(28, 0, 0)


def _emit_phase_toggle(builder: ProgramBuilder, phase_period: int) -> None:
    """Decrement the phase countdown; flip r28 when it reaches zero."""
    builder.addi(27, 27, -1)
    builder.bne(27, 0, "after_toggle")
    builder.li(27, phase_period)
    builder.xori(28, 28, 1)
    builder.label("after_toggle")


def _advance_window(builder: ProgramBuilder, step: int) -> None:
    """Slide the hot-window base register by `step` words."""
    builder.addi(25, 25, step)


# ---------------------------------------------------------------------------
# Individual benchmarks
# ---------------------------------------------------------------------------

def build_mcf(mem_scale: int = 1, seed: int = 1009) -> Workload:
    """Pointer-chasing sweep over a working set far larger than the L2."""
    builder = ProgramBuilder("mcf")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    chain_words = 32768 * mem_scale
    aux_words = 4096

    chase = kernels.emit_chase_cursor(builder, "chase")
    stream = kernels.emit_stream_cursor(builder, "stream")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=112)

    chain_base = alloc.take(chain_words)
    aux_base = alloc.take(aux_words)

    memory = Memory()
    head = init_pointer_chain(memory, chain_base, chain_words, rng)
    init_array(memory, aux_base, aux_words, rng)

    _begin_main(builder, seed)
    builder.li(23, head)  # chase continues from here, sweeping the cycle
    builder.label("loop")
    _call(builder, chase, a1=192)
    _call(builder, maze, a1=8)
    _call(builder, stream, aux_base, aux_words - 1, 24)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="mcf",
        program=builder.build(),
        memory=memory,
        description="pointer-chasing network simplex stand-in",
        parameters={"chain_words": chain_words, "seed": seed},
    )


def build_art(mem_scale: int = 1, seed: int = 1013) -> Workload:
    """Streaming sweeps of two large feature arrays, phase alternation."""
    builder = ProgramBuilder("art")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    array_words = 16384 * mem_scale
    weight_words = 1024

    stream_f1 = kernels.emit_stream_cursor(builder, "stream_f1",
                                           cursor_reg=24)
    stream_f2 = kernels.emit_stream_cursor(builder, "stream_f2",
                                           cursor_reg=22)
    matrix = kernels.emit_matrix_accumulate(builder, "matrix")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=16)

    f1_base = alloc.take(array_words)
    f2_base = alloc.take(array_words)
    weight_base = alloc.take(weight_words)

    memory = Memory()
    init_array(memory, f1_base, array_words, rng)
    init_array(memory, f2_base, array_words, rng)
    init_array(memory, weight_base, weight_words, rng)

    _begin_main(builder, seed, phase_period=8)
    builder.label("loop")
    _emit_phase_toggle(builder, 8)
    builder.beq(28, 0, "phase_a")
    _call(builder, stream_f2, f2_base, array_words - 1, 112)
    _call(builder, maze, a1=12)
    builder.jmp("tail")
    builder.label("phase_a")
    _call(builder, stream_f1, f1_base, array_words - 1, 96)
    _call(builder, matrix, weight_base, 16, 4)
    builder.label("tail")
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="art",
        program=builder.build(),
        memory=memory,
        description="neural-network streaming stand-in",
        parameters={"array_words": array_words, "seed": seed},
    )


def build_ammp(mem_scale: int = 1, seed: int = 1019) -> Workload:
    """Mul-heavy numeric sweep plus neighbour-list chasing."""
    builder = ProgramBuilder("ammp")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    grid_words = 16384 * mem_scale
    neighbour_words = 4096
    weight_words = 512

    stream = kernels.emit_stream_cursor(builder, "sweep")
    chase = kernels.emit_chase_cursor(builder, "neigh")
    matrix = kernels.emit_matrix_accumulate(builder, "matrix")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=24)

    grid_base = alloc.take(grid_words)
    neighbour_base = alloc.take(neighbour_words)
    weight_base = alloc.take(weight_words)

    memory = Memory()
    init_array(memory, grid_base, grid_words, rng)
    head = init_pointer_chain(memory, neighbour_base, neighbour_words, rng)
    init_array(memory, weight_base, weight_words, rng)

    _begin_main(builder, seed)
    builder.li(23, head)
    builder.label("loop")
    _call(builder, stream, grid_base, grid_words - 1, 64)
    _call(builder, chase, a1=64)
    _call(builder, matrix, weight_base, 8, 8)
    _call(builder, maze, a1=8)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="ammp",
        program=builder.build(),
        memory=memory,
        description="molecular-dynamics numeric stand-in",
        parameters={"grid_words": grid_words, "seed": seed},
    )


def build_gcc(mem_scale: int = 1, seed: int = 1021) -> Workload:
    """Large code footprint, indirect dispatch, drifting symbol table."""
    builder = ProgramBuilder("gcc")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    num_leaves = 128
    table_words = round_up_power_of_two(num_leaves)
    symtab_words = 16384 * mem_scale
    window_mask = 511

    leaf_indices = []
    for leaf in range(num_leaves):
        entry_index = builder.here()
        kernels.emit_leaf(builder, f"leaf_{leaf}", work=6 + leaf % 5)
        leaf_indices.append(entry_index)

    dispatch = kernels.emit_indirect_dispatch(builder, "dispatch")
    hash_update = kernels.emit_walking_hash(builder, "symtab")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=96)

    table_base = alloc.take(table_words)
    symtab_base = alloc.take(symtab_words)

    memory = Memory()
    table_entries = list(leaf_indices)
    while len(table_entries) < table_words:
        table_entries.append(leaf_indices[int(rng.integers(0, num_leaves))])
    init_jump_table(memory, table_base, table_entries)
    init_array(memory, symtab_base, symtab_words, rng)

    _begin_main(builder, seed, phase_period=6)
    builder.label("loop")
    _emit_phase_toggle(builder, 6)
    _advance_window(builder, 24)
    builder.beq(28, 0, "phase_a")
    _call(builder, hash_update, symtab_base, symtab_words - 1, 24,
          window_mask)
    _call(builder, maze, a1=24)
    builder.jmp("tail")
    builder.label("phase_a")
    _call(builder, dispatch, table_base, table_words - 1, 12)
    _call(builder, maze, a1=16)
    builder.label("tail")
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="gcc",
        program=builder.build(),
        memory=memory,
        description="compiler stand-in: big code footprint + dispatch",
        parameters={"num_leaves": num_leaves, "symtab_words": symtab_words,
                    "seed": seed},
    )


def build_parser(mem_scale: int = 1, seed: int = 1031) -> Workload:
    """Deep recursion, drifting dictionary window, high branch entropy."""
    builder = ProgramBuilder("parser")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    dict_words = 16384 * mem_scale
    window_mask = 1023

    recurse = kernels.emit_recursive(builder, "descend", work=3)
    hash_update = kernels.emit_walking_hash(builder, "dict")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=128)

    dict_base = alloc.take(dict_words)

    memory = Memory()
    init_array(memory, dict_base, dict_words, rng)

    _begin_main(builder, seed)
    builder.label("loop")
    _advance_window(builder, 32)
    _call(builder, recurse, 16)
    _call(builder, hash_update, dict_base, dict_words - 1, 24, window_mask)
    _call(builder, maze, a1=24)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="parser",
        program=builder.build(),
        memory=memory,
        description="recursive-descent parser stand-in",
        parameters={"dict_words": dict_words, "seed": seed},
    )


def build_perl(mem_scale: int = 1, seed: int = 1033) -> Workload:
    """Interpreter dispatch loop with a drifting hash-table window."""
    builder = ProgramBuilder("perl")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    num_ops = 32
    table_words = round_up_power_of_two(num_ops)
    hash_words = 16384 * mem_scale
    window_mask = 511

    op_indices = []
    for op in range(num_ops):
        entry_index = builder.here()
        kernels.emit_leaf(builder, f"op_{op}", work=4 + op % 7)
        op_indices.append(entry_index)

    dispatch = kernels.emit_indirect_dispatch(builder, "dispatch")
    hash_update = kernels.emit_walking_hash(builder, "hashes")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=80)

    table_base = alloc.take(table_words)
    hash_base = alloc.take(hash_words)

    memory = Memory()
    init_jump_table(memory, table_base, op_indices)
    init_array(memory, hash_base, hash_words, rng)

    _begin_main(builder, seed)
    builder.label("loop")
    _advance_window(builder, 24)
    _call(builder, dispatch, table_base, table_words - 1, 16)
    _call(builder, hash_update, hash_base, hash_words - 1, 12, window_mask)
    _call(builder, maze, a1=12)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="perl",
        program=builder.build(),
        memory=memory,
        description="interpreter dispatch stand-in",
        parameters={"num_ops": num_ops, "hash_words": hash_words,
                    "seed": seed},
    )


def build_vortex(mem_scale: int = 1, seed: int = 1039) -> Workload:
    """Call-heavy object store over a drifting object window."""
    builder = ProgramBuilder("vortex")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    store_words = 16384 * mem_scale
    index_words = 4096
    window_mask = 1023

    scatter = kernels.emit_walking_scatter(builder, "scatter")
    stream = kernels.emit_stream_cursor(builder, "stream")
    hash_update = kernels.emit_walking_hash(builder, "index")
    maze = kernels.emit_branch_maze(builder, "maze", threshold=60)

    store_base = alloc.take(store_words)
    index_base = alloc.take(index_words)

    # Mid-size "object method" wrappers: each saves the link register,
    # performs a read-modify-write burst, and returns — generating the
    # call-dense store-rich profile vortex is known for.
    methods = []
    for method in range(6):
        name = builder.label(f"method_{method}")
        builder.addi(30, 30, -8)
        builder.store(31, 30, 0)
        _call(builder, hash_update, index_base, index_words - 1, 3,
              window_mask)
        _call(builder, scatter, store_base, store_words - 1, 4, window_mask)
        builder.load(31, 30, 0)
        builder.addi(30, 30, 8)
        builder.ret()
        methods.append(name)

    memory = Memory()
    init_array(memory, store_base, store_words, rng)
    init_array(memory, index_base, index_words, rng)

    _begin_main(builder, seed)
    builder.label("loop")
    _advance_window(builder, 32)
    for name in methods:
        builder.call(name)
    _call(builder, stream, index_base, index_words - 1, 16)
    _call(builder, maze, a1=8)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="vortex",
        program=builder.build(),
        memory=memory,
        description="object-store stand-in: call-heavy, store-rich",
        parameters={"store_words": store_words, "seed": seed},
    )


def build_vpr(mem_scale: int = 1, seed: int = 1049) -> Workload:
    """Annealing over a drifting placement window + wire sweeps."""
    builder = ProgramBuilder("vpr")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    grid_words = 16384 * mem_scale
    window_mask = 1023

    hash_update = kernels.emit_walking_hash(builder, "swap")
    stream = kernels.emit_stream_cursor(builder, "wires")
    maze = kernels.emit_branch_maze(builder, "accept", threshold=128)

    grid_base = alloc.take(grid_words)

    memory = Memory()
    init_array(memory, grid_base, grid_words, rng)

    _begin_main(builder, seed, phase_period=10)
    builder.label("loop")
    _emit_phase_toggle(builder, 10)
    _advance_window(builder, 32)
    builder.beq(28, 0, "phase_a")
    _call(builder, stream, grid_base, grid_words - 1, 96)
    _call(builder, maze, a1=16)
    builder.jmp("tail")
    builder.label("phase_a")
    _call(builder, hash_update, grid_base, grid_words - 1, 48, window_mask)
    _call(builder, maze, a1=16)
    builder.label("tail")
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="vpr",
        program=builder.build(),
        memory=memory,
        description="place-and-route annealing stand-in",
        parameters={"grid_words": grid_words, "seed": seed},
    )


def build_twolf(mem_scale: int = 1, seed: int = 1051) -> Workload:
    """Standard-cell placement: drifting cell window + net-list chasing."""
    builder = ProgramBuilder("twolf")
    rng = np.random.default_rng(seed)
    alloc = _Allocator(DEFAULT_DATA_BASE)

    cell_words = 16384 * mem_scale
    net_words = 4096
    window_mask = 511

    hash_update = kernels.emit_walking_hash(builder, "cells")
    chase = kernels.emit_chase_cursor(builder, "nets")
    maze = kernels.emit_branch_maze(builder, "accept", threshold=140)

    cell_base = alloc.take(cell_words)
    net_base = alloc.take(net_words)

    memory = Memory()
    init_array(memory, cell_base, cell_words, rng)
    head = init_pointer_chain(memory, net_base, net_words, rng)

    _begin_main(builder, seed)
    builder.li(23, head)
    builder.label("loop")
    _advance_window(builder, 24)
    _call(builder, hash_update, cell_base, cell_words - 1, 24, window_mask)
    _call(builder, chase, a1=96)
    _call(builder, maze, a1=16)
    builder.jmp("loop")
    builder.entry("main")

    return Workload(
        name="twolf",
        program=builder.build(),
        memory=memory,
        description="standard-cell placement stand-in",
        parameters={"cell_words": cell_words, "seed": seed},
    )


#: Paper Table 1 benchmark order.
PAPER_WORKLOADS = (
    "ammp", "art", "gcc", "mcf", "parser", "perl", "twolf", "vortex", "vpr",
)

WORKLOAD_BUILDERS = {
    "ammp": build_ammp,
    "art": build_art,
    "gcc": build_gcc,
    "mcf": build_mcf,
    "parser": build_parser,
    "perl": build_perl,
    "twolf": build_twolf,
    "vortex": build_vortex,
    "vpr": build_vpr,
}


def build_workload(name: str, mem_scale: int = 1,
                   seed: int | None = None) -> Workload:
    """Build one of the nine named workloads.

    A `seed` of None uses the workload's fixed default, which is what the
    paper-reproduction benchmarks use for determinism.
    """
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_BUILDERS))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
    if seed is None:
        return builder(mem_scale=mem_scale)
    return builder(mem_scale=mem_scale, seed=seed)


def available_workloads() -> tuple[str, ...]:
    """Names of all built-in workloads, in the paper's table order."""
    return PAPER_WORKLOADS
