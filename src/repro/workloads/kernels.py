"""Reusable code kernels for the synthetic workload generators.

Each ``emit_*`` function appends one callable kernel to a
:class:`~repro.isa.ProgramBuilder` and returns its entry label.  Kernels
follow a fixed register convention:

==========  ===================================================
register    role
==========  ===================================================
r1 - r8     kernel-local scratch (clobbered freely)
r10 - r14   kernel arguments
r15         kernel return value
r20 - r21   main-loop globals (kernels must not touch)
r22         secondary stream cursor (drift kernels advance it)
r23         pointer-chase current node (drift kernels advance it)
r24         primary stream cursor (drift kernels advance it)
r25         hot-window base (main loop slides it; kernels read it)
r26         shared linear-congruential RNG state (kernels may advance)
r27 - r29   main-loop globals (kernels must not touch)
r30         stack pointer
r31         link register
==========  ===================================================

The kernels were chosen to span the behaviours the paper's benchmarks
exhibit: streaming (art/ammp), pointer chasing (mcf), random read-modify-
write (vpr/twolf), recursion (parser), indirect dispatch (perl/gcc), deep
call chains (vortex), and biased data-dependent branching (everything).
"""

from __future__ import annotations

from ..isa import ProgramBuilder

#: Multiplier/increment of the in-register LCG (Knuth's MMIX constants).
LCG_MULTIPLIER = 6364136223846793005
LCG_INCREMENT = 1442695040888963407

#: The shared RNG state register.
RNG_REG = 26


def emit_lcg_advance(builder: ProgramBuilder) -> None:
    """Advance the shared LCG: r26 = r26 * a + c (inline, 3 instructions)."""
    builder.li(8, LCG_MULTIPLIER)
    builder.mul(RNG_REG, RNG_REG, 8)
    builder.li(8, LCG_INCREMENT)
    builder.add(RNG_REG, RNG_REG, 8)


def emit_stream_sum(builder: ProgramBuilder, name: str) -> str:
    """Sequential-read reduction:  sum mem[r10 .. r10 + 8*r11).

    Streaming behaviour: perfectly predictable loop branch, one new cache
    line every eight iterations.
    """
    entry = builder.label(name)
    builder.add(1, 10, 0)          # ptr = base
    builder.add(2, 11, 0)          # remaining = count
    builder.add(4, 0, 0)           # acc = 0
    loop = builder.label(name + "_loop")
    builder.load(3, 1, 0)
    builder.add(4, 4, 3)
    builder.addi(1, 1, 8)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.add(15, 4, 0)
    builder.ret()
    return entry


def emit_stride_walk(builder: ProgramBuilder, name: str) -> str:
    """Strided read loop: r11 loads from r10 with stride r12 bytes.

    With a stride larger than a line this defeats spatial locality and
    generates one miss per access over a configurable footprint.
    """
    entry = builder.label(name)
    builder.add(1, 10, 0)
    builder.add(2, 11, 0)
    builder.add(4, 0, 0)
    loop = builder.label(name + "_loop")
    builder.load(3, 1, 0)
    builder.add(4, 4, 3)
    builder.add(1, 1, 12)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.add(15, 4, 0)
    builder.ret()
    return entry


def emit_pointer_chase(builder: ProgramBuilder, name: str) -> str:
    """Chase a linked chain: r1 = mem[r1], r11 times, starting at r10.

    Every load depends on the previous one, so latency is fully exposed —
    the mcf-like cache-hostile kernel.
    """
    entry = builder.label(name)
    builder.add(1, 10, 0)
    builder.add(2, 11, 0)
    loop = builder.label(name + "_loop")
    builder.load(1, 1, 0)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.add(15, 1, 0)
    builder.ret()
    return entry


def emit_hash_update(builder: ProgramBuilder, name: str) -> str:
    """Random read-modify-write: r12 iterations over table r10, mask r11.

    Each iteration picks a pseudo-random word index, loads it, adds, and
    stores back — the vpr/twolf-style scattered store pattern.
    """
    entry = builder.label(name)
    builder.add(2, 12, 0)          # remaining
    loop = builder.label(name + "_loop")
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 30)
    builder.and_(3, 3, 11)         # index = bits & mask
    builder.slli(3, 3, 3)          # *8 bytes
    builder.add(3, 3, 10)          # addr
    builder.load(4, 3, 0)
    builder.addi(4, 4, 1)
    builder.store(4, 3, 0)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry


def emit_branch_maze(builder: ProgramBuilder, name: str,
                     threshold: int, work: int = 2) -> str:
    """Data-dependent branching: r11 iterations, taken bias = threshold/256.

    Per iteration a pseudo-random byte is compared against `threshold`;
    the two sides run `work` filler ALU ops each.  `threshold` near 128
    maximises branch entropy; near 0 or 256 the branch is strongly biased.
    """
    entry = builder.label(name)
    builder.add(2, 11, 0)
    loop = builder.label(name + "_loop")
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 33)
    builder.andi(3, 3, 255)
    builder.li(4, threshold)
    taken_side = name + "_taken"
    join = name + "_join"
    builder.blt(3, 4, taken_side)
    for _ in range(work):
        builder.addi(5, 5, 1)
    builder.jmp(join)
    builder.label(taken_side)
    for _ in range(work):
        builder.addi(6, 6, 1)
    builder.label(join)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry


def emit_recursive(builder: ProgramBuilder, name: str, work: int = 2) -> str:
    """Recursive descent of depth r10 (parser-style call/return, RAS churn).

    Saves the link register and argument on the stack each level.
    """
    entry = builder.label(name)
    base_case = name + "_base"
    builder.beq(10, 0, base_case)
    builder.addi(30, 30, -16)
    builder.store(31, 30, 0)
    builder.store(10, 30, 8)
    for _ in range(work):
        builder.addi(5, 5, 3)
    builder.addi(10, 10, -1)
    builder.call(entry)
    builder.load(31, 30, 0)
    builder.load(10, 30, 8)
    builder.addi(30, 30, 16)
    builder.ret()
    builder.label(base_case)
    builder.addi(15, 0, 1)
    builder.ret()
    return entry


def emit_leaf(builder: ProgramBuilder, name: str, work: int = 3) -> str:
    """A tiny leaf function (ALU filler + ret); dispatch-table target."""
    entry = builder.label(name)
    for step in range(work):
        builder.addi(5, 5, step + 1)
    builder.xor(5, 5, RNG_REG)
    builder.ret()
    return entry


def emit_indirect_dispatch(builder: ProgramBuilder, name: str) -> str:
    """Indirect call dispatch: r12 iterations through table r10, mask r11.

    Each iteration loads a function entry index from the in-memory jump
    table at a pseudo-random slot and calls it via CALLR — perl-style
    interpreter dispatch that pressures the BTB and RAS.
    """
    entry = builder.label(name)
    builder.add(2, 12, 0)
    loop = builder.label(name + "_loop")
    builder.addi(30, 30, -16)
    builder.store(31, 30, 0)
    builder.store(2, 30, 8)
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 25)
    builder.and_(3, 3, 11)
    builder.slli(3, 3, 3)
    builder.add(3, 3, 10)
    builder.load(4, 3, 0)          # function entry index
    builder.callr(4)
    builder.load(31, 30, 0)
    builder.load(2, 30, 8)
    builder.addi(30, 30, 16)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry


def emit_matrix_accumulate(builder: ProgramBuilder, name: str) -> str:
    """Row-major nested loop: r11 rows x r12 cols over base r10, with a
    multiply in the inner loop (ammp/art-style numeric streaming)."""
    entry = builder.label(name)
    builder.add(1, 10, 0)          # ptr
    builder.add(2, 11, 0)          # row counter
    builder.add(4, 0, 0)           # acc
    row_loop = builder.label(name + "_row")
    builder.add(3, 12, 0)          # col counter
    col_loop = builder.label(name + "_col")
    builder.load(5, 1, 0)
    builder.mul(5, 5, 3)
    builder.add(4, 4, 5)
    builder.addi(1, 1, 8)
    builder.addi(3, 3, -1)
    builder.bne(3, 0, col_loop)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, row_loop)
    builder.add(15, 4, 0)
    builder.ret()
    return entry


def emit_scatter_store(builder: ProgramBuilder, name: str) -> str:
    """Write-only scatter: r12 stores at pseudo-random slots of table r10,
    mask r11 (exercises WTNA write-miss/no-allocate paths)."""
    entry = builder.label(name)
    builder.add(2, 12, 0)
    loop = builder.label(name + "_loop")
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 28)
    builder.and_(3, 3, 11)
    builder.slli(3, 3, 3)
    builder.add(3, 3, 10)
    builder.store(2, 3, 0)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry


# ---------------------------------------------------------------------------
# Drifting-locality kernels
#
# Uniformly random access gives a stale cache the same *miss rate* as a
# true cache (capacity, not recency, decides), which would hide the
# cold-start bias the paper measures.  Real workloads have temporal
# drift: the hot set moves, so recently-touched lines matter.  These
# kernels model that with global cursor/window registers:
#
#   r22  secondary stream cursor (word offset)
#   r23  pointer-chase current node (byte address)
#   r24  primary stream cursor (word offset)
#   r25  hot-window base (word offset), advanced by the main loop
# ---------------------------------------------------------------------------

def emit_stream_cursor(builder: ProgramBuilder, name: str,
                       cursor_reg: int = 24) -> str:
    """Sequential reduction that *continues* across calls.

    Streams r12 words from ``r10 + 8 * ((cursor + i) & r11)`` and leaves
    the cursor advanced, so successive calls sweep the whole array the
    way art/ammp scan their feature arrays once per epoch.  r11 is a
    power-of-two word-count mask.
    """
    entry = builder.label(name)
    builder.add(2, 12, 0)              # remaining
    builder.add(4, 0, 0)               # acc
    loop = builder.label(name + "_loop")
    builder.and_(3, cursor_reg, 11)    # wrapped word offset
    builder.slli(3, 3, 3)
    builder.add(3, 3, 10)
    builder.load(5, 3, 0)
    builder.add(4, 4, 5)
    builder.addi(cursor_reg, cursor_reg, 1)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.add(15, 4, 0)
    builder.ret()
    return entry


def emit_chase_cursor(builder: ProgramBuilder, name: str,
                      node_reg: int = 23) -> str:
    """Pointer chase that continues from the last node (register r23).

    Successive calls sweep the entire chain cycle instead of retracing
    its head, giving mcf-style working sets that dwarf the caches while
    still rewarding recency (the chase revisits each node once per lap).
    """
    entry = builder.label(name)
    builder.add(2, 11, 0)
    loop = builder.label(name + "_loop")
    builder.load(node_reg, node_reg, 0)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.add(15, node_reg, 0)
    builder.ret()
    return entry


def emit_walking_hash(builder: ProgramBuilder, name: str,
                      window_reg: int = 25, fields: int = 3) -> str:
    """Random record read-modify-write inside a drifting hot window.

    Each iteration picks a pseudo-random record in the window
    (``(window_base + (rand & r13)) & r11`` over table r10) and updates
    `fields` consecutive words of it — the multi-field structure updates
    real code performs, which also keeps the memory-reference density in
    SPEC's 30-40% range.  Reuse is intense inside the window (recency
    pays) and the main loop slides the window, so state from one cluster
    goes stale by the next — the drift that makes warm-up matter.
    """
    entry = builder.label(name)
    builder.add(2, 12, 0)
    loop = builder.label(name + "_loop")
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 30)
    builder.and_(3, 3, 13)             # offset within window
    builder.add(3, 3, window_reg)
    builder.and_(3, 3, 11)             # wrap at table size
    builder.slli(3, 3, 3)
    builder.add(3, 3, 10)
    for field in range(fields):
        builder.load(4, 3, field * 8)
        builder.addi(4, 4, 1)
        builder.store(4, 3, field * 8)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry


def emit_walking_scatter(builder: ProgramBuilder, name: str,
                         window_reg: int = 25, fields: int = 3) -> str:
    """Write-only record scatter inside the same drifting window
    (vortex-style store bursts whose locality moves with the object being
    built); `fields` consecutive words are written per record."""
    entry = builder.label(name)
    builder.add(2, 12, 0)
    loop = builder.label(name + "_loop")
    emit_lcg_advance(builder)
    builder.srli(3, RNG_REG, 28)
    builder.and_(3, 3, 13)
    builder.add(3, 3, window_reg)
    builder.and_(3, 3, 11)
    builder.slli(3, 3, 3)
    builder.add(3, 3, 10)
    for field in range(fields):
        builder.store(2, 3, field * 8)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, loop)
    builder.ret()
    return entry
