"""Plain-text report formatters for every paper table and figure.

Each ``format_*`` function turns harness results into the same rows or
series the paper reports, ready to print from a bench or example.
"""

from __future__ import annotations

from ..telemetry import PHASES, RECORD_AUDIT, TelemetrySnapshot
from .experiment import WorkloadExperiment, average_over_workloads

#: Stable column order of one audit record (``"type": "audit"``), as
#: exported by :func:`audit_rows` / ``repro audit --json``.  Everything
#: here is deterministic — no timing, no log-representation fields — so
#: the exported JSON is bit-for-bit identical between raw and compacted
#: sources and between serial and parallel runs.
AUDIT_COLUMNS = (
    "workload", "method", "cluster", "start",
    "l1i_tag_agreement", "l1i_lru_agreement",
    "l1d_tag_agreement", "l1d_lru_agreement",
    "l2_tag_agreement", "l2_lru_agreement",
    "pht_counter_agreement", "pht_prediction_agreement", "ghr_match",
    "btb_agreement", "ras_agreement", "ras_top_match",
    "pht_entries_mentioned", "pht_exact", "pht_ambiguous_two",
    "pht_ambiguous_three", "pht_stale", "pht_ambiguity_mass",
    "ipc", "ref_ipc", "true_ipc", "cold_start_error", "sampling_error",
)

#: Agreement columns averaged in :func:`audit_summary` (booleans count
#: as 0/1 rates).
_AUDIT_AGREEMENT_COLUMNS = (
    "l1i_tag_agreement", "l1i_lru_agreement",
    "l1d_tag_agreement", "l1d_lru_agreement",
    "l2_tag_agreement", "l2_lru_agreement",
    "pht_counter_agreement", "pht_prediction_agreement", "ghr_match",
    "btb_agreement", "ras_agreement", "ras_top_match",
)


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[column]) for column, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[column]) for column, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_table1(matrix: dict[str, WorkloadExperiment]) -> str:
    """Paper Table 1: true IPC and sampling regimen per workload."""
    rows = []
    for name, experiment in matrix.items():
        regimen = next(
            iter(experiment.outcomes.values())
        ).run.regimen if experiment.outcomes else None
        rows.append([
            name,
            f"{experiment.true_ipc:.4f}",
            f"{experiment.true_run.instructions}",
            f"{regimen.num_clusters}" if regimen else "-",
            f"{regimen.cluster_size}" if regimen else "-",
            f"{experiment.true_run.wall_seconds:.1f}s",
        ])
    return format_table(
        ["workload", "true IPC", "instructions", "clusters",
         "cluster size", "full-sim time"],
        rows,
        title="Table 1: true IPC and sampling regimen",
    )


def format_method_summary(matrix: dict[str, WorkloadExperiment],
                          method_names: list[str],
                          title: str) -> str:
    """Average relative error + simulation cost per method (Figures 5-7)."""
    rows = []
    for method_name in method_names:
        error, work, wall = average_over_workloads(matrix, method_name)
        rows.append([
            method_name,
            f"{error * 100:.2f}%",
            f"{work:,.0f}",
            f"{wall:.2f}s",
        ])
    return format_table(
        ["method", "avg rel. error", "avg work units", "avg wall time"],
        rows,
        title=title,
    )


def format_per_workload(matrix: dict[str, WorkloadExperiment],
                        method_names: list[str],
                        value: str = "error",
                        title: str = "") -> str:
    """Per-workload grid of one metric (Figure 8, appendix tables).

    `value` is one of "error", "work", "wall", "ci", "ipc".
    """
    def cell(outcome) -> str:
        if value == "error":
            return f"{outcome.relative_error * 100:.2f}%"
        if value == "work":
            return f"{outcome.work_units:,.0f}"
        if value == "wall":
            return f"{outcome.wall_seconds:.2f}"
        if value == "ci":
            return "yes" if outcome.passes_confidence else "no"
        if value == "ipc":
            return f"{outcome.run.estimate.mean:.4f}"
        raise ValueError(f"unknown value kind {value!r}")

    headers = ["method"] + list(matrix) + ["AVG"]
    rows = []
    for method_name in method_names:
        row = [method_name]
        values = []
        for experiment in matrix.values():
            outcome = experiment.outcomes[method_name]
            row.append(cell(outcome))
            if value == "error":
                values.append(outcome.relative_error)
            elif value == "work":
                values.append(outcome.work_units)
            elif value == "wall":
                values.append(outcome.wall_seconds)
        if value == "error" and values:
            row.append(f"{sum(values) / len(values) * 100:.2f}%")
        elif value in ("work", "wall") and values:
            row.append(f"{sum(values) / len(values):,.0f}")
        else:
            row.append("-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_telemetry_summary(snapshot: TelemetrySnapshot,
                             title: str = "Telemetry profile") -> str:
    """Render a run-level telemetry profile as three aligned tables.

    Sections: wall-time share per phase (the cost split the paper's
    speedup argument rests on), update/event counts per structure (every
    counter the stack incremented), and per-method trace-record totals
    (clusters traced, warm updates, log records, summed phase wall time).
    """
    sections = []

    total_seconds = snapshot.total_phase_seconds()
    phase_rows = []
    ordered = [name for name in ("prefix", *PHASES)
               if name in snapshot.phase_seconds]
    ordered += [name for name in sorted(snapshot.phase_seconds)
                if name not in ordered]
    for name in ordered:
        seconds = snapshot.phase_seconds[name]
        share = seconds / total_seconds if total_seconds else 0.0
        phase_rows.append([name, f"{seconds:.3f}s", f"{share * 100:.1f}%"])
    phase_rows.append(["total", f"{total_seconds:.3f}s", "100.0%"])
    sections.append(format_table(
        ["phase", "seconds", "share"], phase_rows,
        title=f"{title}: time per phase",
    ))

    if snapshot.counters:
        counter_rows = [
            [name, f"{value:,}"]
            for name, value in sorted(snapshot.counters.items())
        ]
        sections.append(format_table(
            ["metric", "count"], counter_rows,
            title="Updates and events per structure",
        ))

    if "log.stored_records" in snapshot.counters:
        sections.append(_format_compaction_section(snapshot))

    audit_summaries = audit_summary(snapshot)
    if audit_summaries:
        sections.append(_format_audit_summary_section(audit_summaries))

    per_method: dict[str, dict[str, float]] = {}
    for record in snapshot.trace_records:
        if record.get("type") != "cluster":
            continue
        totals = per_method.setdefault(record.get("method", "?"), {
            "clusters": 0, "warm_updates": 0, "log_records": 0,
            "wall_seconds": 0.0,
        })
        totals["clusters"] += 1
        totals["warm_updates"] += record.get("warm_updates", 0)
        totals["log_records"] += record.get("log_records", 0)
        totals["wall_seconds"] += record.get("wall_seconds", 0.0)
    if per_method:
        method_rows = [
            [name,
             f"{totals['clusters']:,}",
             f"{totals['warm_updates']:,}",
             f"{totals['log_records']:,}",
             f"{totals['wall_seconds']:.3f}s"]
            for name, totals in sorted(per_method.items())
        ]
        sections.append(format_table(
            ["method", "clusters", "warm updates", "log records",
             "cluster wall"],
            method_rows,
            title="Trace-record totals per method",
        ))
    else:
        # A headers-only run (zero cluster records) would otherwise end
        # on a silently missing table; say what happened instead.
        sections.append("no clusters recorded")

    return "\n\n".join(sections)


def compaction_stats(snapshot: TelemetrySnapshot) -> dict:
    """Skip-log retention figures from a traced run's counters.

    Returns raw/stored record counts, stored bytes, the dedup ratio
    (raw observed records per stored record; ``None`` when nothing was
    stored), and per-gap peaks from the retention histograms (``None``
    when no gap was recorded).
    """
    counters = snapshot.counters
    raw = (counters.get("log.memory_records", 0)
           + counters.get("log.branch_records", 0))
    stored = counters.get("log.stored_records", 0)
    records_hist = snapshot.histograms.get("log.gap_stored_records")
    bytes_hist = snapshot.histograms.get("log.gap_stored_bytes")
    return {
        "raw_records": raw,
        "stored_records": stored,
        "stored_bytes": counters.get("log.stored_bytes", 0),
        "dedup_ratio": raw / stored if stored else None,
        "peak_gap_records":
            int(records_hist.max)
            if records_hist is not None and records_hist.count else None,
        "peak_gap_bytes":
            int(bytes_hist.max)
            if bytes_hist is not None and bytes_hist.count else None,
    }


def _format_compaction_section(snapshot: TelemetrySnapshot) -> str:
    stats = compaction_stats(snapshot)
    ratio = stats["dedup_ratio"]
    rows = [
        ["raw records observed", f"{stats['raw_records']:,}"],
        ["records stored", f"{stats['stored_records']:,}"],
        ["dedup ratio", f"{ratio:.2f}x" if ratio is not None else "-"],
        ["bytes stored", f"{stats['stored_bytes']:,}"],
        ["peak gap records",
         f"{stats['peak_gap_records']:,}"
         if stats["peak_gap_records"] is not None else "-"],
        ["peak gap bytes",
         f"{stats['peak_gap_bytes']:,}"
         if stats["peak_gap_bytes"] is not None else "-"],
    ]
    return format_table(
        ["figure", "value"], rows,
        title="Skip-log compaction",
    )


def audit_rows(snapshot: TelemetrySnapshot) -> list[dict]:
    """The snapshot's audit records with a stable, sorted column set.

    One row per audited cluster, columns exactly :data:`AUDIT_COLUMNS`,
    sorted by (workload, method, cluster) — the deterministic order the
    equivalence acceptance criterion compares bit-for-bit.
    """
    rows = [
        {name: record.get(name) for name in AUDIT_COLUMNS}
        for record in snapshot.trace_records
        if record.get("type") == RECORD_AUDIT
    ]
    rows.sort(key=lambda row: (row["workload"], row["method"],
                               row["cluster"]))
    return rows


def audit_summary(snapshot: TelemetrySnapshot) -> list[dict]:
    """Aggregate the audit records into one row per (workload, method).

    Each aggregate carries the run's estimate decomposition — the mean
    per-cluster ``cold_start_error`` is exactly (estimate − reference
    estimate), the paper's non-sampling bias, and the mean
    ``sampling_error`` is (reference estimate − true IPC) — plus mean
    agreement scores per structure and the PHT inference census means
    (None for methods without an on-demand engine).
    """
    groups: dict[tuple, list[dict]] = {}
    for row in audit_rows(snapshot):
        groups.setdefault((row["workload"], row["method"]), []).append(row)

    def mean(rows: list[dict], name: str, absolute: bool = False):
        values = [row[name] for row in rows if row[name] is not None]
        if not values:
            return None
        if absolute:
            values = [abs(value) for value in values]
        return sum(float(value) for value in values) / len(values)

    summaries = []
    for (workload, method), rows in sorted(groups.items()):
        summary = {
            "workload": workload,
            "method": method,
            "clusters": len(rows),
            "true_ipc": rows[0]["true_ipc"],
            "mean_ipc": mean(rows, "ipc"),
            "mean_ref_ipc": mean(rows, "ref_ipc"),
            "cold_start_bias": mean(rows, "cold_start_error"),
            "sampling_bias": mean(rows, "sampling_error"),
            "mean_abs_cold_start_error":
                mean(rows, "cold_start_error", absolute=True),
            "mean_abs_sampling_error":
                mean(rows, "sampling_error", absolute=True),
        }
        for name in _AUDIT_AGREEMENT_COLUMNS:
            summary[f"mean_{name}"] = mean(rows, name)
        for name in ("pht_entries_mentioned", "pht_exact",
                     "pht_ambiguity_mass", "pht_stale"):
            summary[f"mean_{name}"] = mean(rows, name)
        summaries.append(summary)
    return summaries


def _format_audit_summary_section(summaries: list[dict]) -> str:
    rows = []
    for summary in summaries:
        rows.append([
            summary["workload"],
            summary["method"],
            f"{summary['clusters']}",
            f"{summary['mean_ipc']:.4f}",
            f"{summary['mean_ref_ipc']:.4f}",
            f"{summary['true_ipc']:.4f}",
            f"{summary['cold_start_bias']:+.4f}",
            f"{summary['sampling_bias']:+.4f}",
            f"{summary['mean_l1d_tag_agreement']:.3f}",
            f"{summary['mean_pht_counter_agreement']:.3f}",
            f"{summary['mean_btb_agreement']:.3f}",
            f"{summary['mean_ras_agreement']:.3f}",
        ])
    return format_table(
        ["workload", "method", "clusters", "est IPC", "ref IPC",
         "true IPC", "cold-start bias", "sampling bias", "l1d agr",
         "pht agr", "btb agr", "ras agr"],
        rows,
        title="Accuracy audit: error attribution per method",
    )


def format_audit_report(snapshot: TelemetrySnapshot,
                        title: str = "Accuracy audit") -> str:
    """Render the per-cluster audit as aligned tables.

    One per-cluster table per (workload, method) group — structure
    agreement scores, PHT ambiguity mass, and the cold-start vs
    sampling error split — followed by the cross-method attribution
    summary table.  Empty string when the snapshot has no audit records.
    """
    summaries = audit_summary(snapshot)
    if not summaries:
        return ""
    rows_by_group: dict[tuple, list[dict]] = {}
    for row in audit_rows(snapshot):
        key = (row["workload"], row["method"])
        rows_by_group.setdefault(key, []).append(row)

    sections = []
    for (workload, method), rows in sorted(rows_by_group.items()):
        table_rows = []
        for row in rows:
            mass = row["pht_ambiguity_mass"]
            table_rows.append([
                f"{row['cluster']}",
                f"{row['start']:,}",
                f"{row['l1d_tag_agreement']:.3f}",
                f"{row['l2_tag_agreement']:.3f}",
                f"{row['pht_counter_agreement']:.3f}",
                f"{mass}" if mass is not None else "-",
                f"{row['btb_agreement']:.3f}",
                f"{row['ras_agreement']:.3f}",
                f"{row['ipc']:.4f}",
                f"{row['ref_ipc']:.4f}",
                f"{row['cold_start_error']:+.4f}",
                f"{row['sampling_error']:+.4f}",
            ])
        sections.append(format_table(
            ["cluster", "start", "l1d agr", "l2 agr", "pht agr",
             "amb mass", "btb agr", "ras agr", "ipc", "ref ipc",
             "cold err", "samp err"],
            table_rows,
            title=f"{title}: {workload} / {method}",
        ))
    sections.append(_format_audit_summary_section(summaries))
    return "\n\n".join(sections)


def format_speedups(matrix: dict[str, WorkloadExperiment],
                    method_name: str, baseline: str = "S$BP",
                    title: str = "") -> str:
    """Per-workload speedup ratios of `method_name` over `baseline`."""
    rows = []
    ratios = []
    wall_ratios = []
    for name, experiment in matrix.items():
        ratio = experiment.speedup(method_name, baseline)
        wall_ratio = experiment.wall_speedup(method_name, baseline)
        ratios.append(ratio)
        wall_ratios.append(wall_ratio)
        rows.append([name, f"{ratio:.2f}x", f"{wall_ratio:.2f}x"])
    if ratios:
        rows.append([
            "AVG",
            f"{sum(ratios) / len(ratios):.2f}x",
            f"{sum(wall_ratios) / len(wall_ratios):.2f}x",
        ])
    else:
        # An empty grid still renders as a (headers-only + AVG dashes)
        # table instead of dividing by zero.
        rows.append(["AVG", "-", "-"])
    return format_table(
        ["workload", f"work speedup vs {baseline}",
         f"wall speedup vs {baseline}"],
        rows,
        title=title or f"Speedup of {method_name} over {baseline}",
    )
