"""Pluggable task-execution backends (the `Executor` protocol).

Every fan-out site in the repo — Phase B cluster shards
(:func:`repro.sampling.pipeline.run_sharded` via
:func:`~.parallel.map_tasks`) and matrix cells
(:func:`~.parallel.execute_matrix`) — dispatches a fixed list of
picklable tasks through one interface and folds the results back in
task order.  This module lifts that interface out of the hard-wired
``ProcessPoolExecutor`` into a registry of interchangeable backends:

``inprocess``
    Plain in-process loop.  No pickling requirements, deterministic,
    the reference semantics every other backend must match bit for bit.
``threads``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Tasks share the
    interpreter (no pickling), so it suits workloads dominated by the
    numpy batch core, and it is the default engine behind the
    :func:`repro.api.submit` background handles.
``pool``
    The historical behavior: a ``ProcessPoolExecutor`` fan-out with
    graceful in-process fallbacks (``jobs <= 1``, unpicklable work,
    daemonic caller, platforms without working pools).
``subprocess-queue``
    Independently launched worker *subprocesses* consuming pickled task
    files from a spooled on-disk queue (see :mod:`~.workerq`) — no
    shared ``multiprocessing`` machinery at all, which is the stepping
    stone to multi-machine dispatch: the spool directory is the wire
    format, and a remote scheduler only needs to run
    ``python -m repro.harness.workerq <spool>`` somewhere it can see
    the directory.

Every backend preserves the two invariants the simulation relies on:

- **Deterministic fold order** — ``map`` returns ``[worker(t) for t in
  tasks]`` in task order regardless of completion order, so folds stay
  bit-identical to serial execution.
- **Environment propagation** — process-spawning backends inherit the
  caller's environment at launch, so span parents
  (``REPRO_SPAN_PARENT``), telemetry collection flags, and the rest of
  the ``REPRO_*`` surface ride into workers exactly as they do today.

Backends are context managers: ``close(cancel=True)`` cancels pending
work and *terminates* live worker processes, so an interrupted run
(KeyboardInterrupt, a crashing worker) cannot leave orphans behind —
``with resolve_executor("pool", jobs=4) as pool: ...`` is the safe
idiom and what :func:`~.parallel.map_tasks` does internally.

Names resolve through :func:`resolve_executor` with the same readable
``ValueError`` contract as the warm-up method registry (the CLI maps it
to exit status 2); third-party backends register via
:func:`register_executor`.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

#: Environment variable naming the default backend for fan-out sites
#: that are not handed an explicit executor (resolved through
#: :class:`~.options.RunOptions` at CLI/service entry).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: The backend used when neither the caller nor the environment picks
#: one (the historical process-pool behavior).
DEFAULT_EXECUTOR = "pool"


def _probe_picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def _in_daemon() -> bool:
    import multiprocessing

    return multiprocessing.current_process().daemon


class Executor:
    """Order-preserving batch executor for a fixed list of tasks.

    Subclasses implement :meth:`map`; :meth:`close` releases resources
    (``cancel=True`` additionally abandons pending work and terminates
    live worker processes).  Instances are context managers: leaving
    the ``with`` block on an exception closes with ``cancel=True``, so
    an interrupted fan-out never strands workers.
    """

    #: Registry name (set by :func:`register_executor`).
    name = "base"
    #: One-line description for ``repro executors``.
    description = ""
    #: Whether tasks and results cross a process boundary (and must
    #: therefore pickle).  Backends that require pickling fall back to
    #: in-process execution when the probe fails.
    requires_pickling = False

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def map(self, worker: Callable, tasks: list, *,
            on_result: "Callable[[int, object], None] | None" = None) -> list:
        """``[worker(t) for t in tasks]``, preserved in task order.

        `on_result` (optional) is called with ``(index, result)`` as
        each task finishes, in *completion* order — the progress-hook
        channel.  A worker exception propagates to the caller;
        remaining work is cancelled via :meth:`close`.
        """
        raise NotImplementedError

    def close(self, *, cancel: bool = False) -> None:
        """Release backend resources; `cancel` terminates live workers."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)

    def _fallback(self, worker, tasks, on_result):
        """Shared in-process degradation path for picky backends."""
        return InProcessExecutor(1).map(worker, tasks, on_result=on_result)


class InProcessExecutor(Executor):
    """Serial in-process execution — the reference backend."""

    name = "inprocess"
    description = "serial in-process loop (reference semantics)"

    def map(self, worker, tasks, *, on_result=None) -> list:
        results = []
        for index, task in enumerate(tasks):
            result = worker(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ThreadExecutor(Executor):
    """Thread-pool execution: shared interpreter, no pickling."""

    name = "threads"
    description = "thread pool (shared interpreter, no pickling)"

    def __init__(self, jobs: int = 1) -> None:
        super().__init__(jobs)
        self._pool: ThreadPoolExecutor | None = None

    def map(self, worker, tasks, *, on_result=None) -> list:
        if len(tasks) <= 1 or self.jobs <= 1:
            return self._fallback(worker, tasks, on_result)
        self._pool = ThreadPoolExecutor(
            max_workers=min(self.jobs, len(tasks)),
            thread_name_prefix="repro-exec",
        )
        try:
            return _drain_futures(self._pool, worker, tasks, on_result)
        finally:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self, *, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel, cancel_futures=cancel)
            self._pool = None


def _drain_futures(pool, worker, tasks, on_result) -> list:
    """Submit everything, surface results in completion order, return
    them in task order.  A worker exception cancels the rest and
    re-raises."""
    futures = {pool.submit(worker, task): index
               for index, task in enumerate(tasks)}
    results: list = [None] * len(tasks)
    remaining = set(futures)
    try:
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                result = future.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
    except BaseException:
        for future in remaining:
            future.cancel()
        raise
    return results


class ProcessPoolBackend(Executor):
    """The historical ``ProcessPoolExecutor`` fan-out, as one peer.

    Falls back to in-process execution — with identical results — when
    the work does not pickle, the caller is already a daemonic pool
    worker (children of children are forbidden), or the platform cannot
    build a process pool.  A *broken* pool (a worker killed by the OS)
    also degrades to in-process re-execution; a genuine exception
    raised by `worker` propagates as itself.
    """

    name = "pool"
    description = "local process pool (the historical default)"
    requires_pickling = True

    def __init__(self, jobs: int = 1) -> None:
        super().__init__(jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._cancelled = False

    def map(self, worker, tasks, *, on_result=None) -> list:
        if (self.jobs <= 1 or len(tasks) <= 1 or _in_daemon()
                or not _probe_picklable(worker, tasks[0] if tasks else None)):
            return self._fallback(worker, tasks, on_result)
        self._cancelled = False
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)))
        except (NotImplementedError, OSError, PermissionError, ValueError):
            return self._fallback(worker, tasks, on_result)
        try:
            return _drain_futures(self._pool, worker, tasks, on_result)
        except BrokenProcessPool:
            if self._cancelled:
                # The breakage is our own close(cancel=True) terminating
                # the workers — cancellation must not resurrect the work
                # through the fallback path.
                raise
            # Pool infrastructure died underneath us (OOM-killed worker,
            # fork failure): re-run in process, where a genuine worker
            # exception would re-raise identically.
            self.close(cancel=True)
            return self._fallback(worker, tasks, on_result)
        except BaseException:
            self.close(cancel=True)
            raise
        finally:
            self.close()

    def close(self, *, cancel: bool = False) -> None:
        if cancel:
            self._cancelled = True
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if cancel:
            # Abandon queued work, then terminate live workers: pending
            # futures never start, and mid-task processes are killed
            # rather than orphaned (shutdown alone would wait on them).
            # The process handles must be captured first — shutdown()
            # drops the pool's reference to them.
            processes = list(
                (getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                if process.is_alive():
                    process.terminate()
        else:
            pool.shutdown()


class SubprocessQueueExecutor(Executor):
    """Independently launched workers over a spooled file queue.

    Tasks are pickled into a spool directory; ``jobs`` freshly launched
    ``python -m repro.harness.workerq`` subprocesses claim task files
    atomically (``os.rename``), execute them, and write result files
    back; the parent folds results in task order as they appear.  The
    workers share nothing with the parent but the directory and the
    inherited environment — exactly the contract a multi-machine job
    scheduler can satisfy.

    Crash propagation: a task that raises ships its exception back in
    the result file and re-raises here; a worker that dies without
    writing results (segfault, ``kill -9``) turns into a
    ``RuntimeError`` naming the exit status instead of a hang.
    """

    name = "subprocess-queue"
    description = ("spooled file queue + worker subprocesses "
                   "(multi-machine stepping stone)")
    requires_pickling = True

    #: Parent-side poll interval while waiting on result files.
    poll_seconds = 0.02
    #: Grace period for workers to exit after the queue drains.
    shutdown_timeout = 10.0

    def __init__(self, jobs: int = 1) -> None:
        super().__init__(jobs)
        self._workers: list[subprocess.Popen] = []
        self._spool: str | None = None

    def map(self, worker, tasks, *, on_result=None) -> list:
        from . import workerq

        if (self.jobs <= 1 or len(tasks) <= 1
                or not _probe_picklable(worker, tasks[0] if tasks else None)):
            return self._fallback(worker, tasks, on_result)
        self._spool = tempfile.mkdtemp(prefix="repro-spool-")
        try:
            # Spool every task before any worker launches: a worker
            # exits as soon as it sees an empty queue, so partially
            # spooled queues would race it into early exit.
            for index, task in enumerate(tasks):
                workerq.spool_task(self._spool, index, worker, task)
            launch = min(self.jobs, len(tasks))
            self._workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.harness.workerq",
                     self._spool],
                    env=os.environ.copy(),
                )
                for _ in range(launch)
            ]
            return self._collect(len(tasks), on_result)
        except BaseException:
            self.close(cancel=True)
            raise
        finally:
            self.close()

    def _collect(self, count: int, on_result) -> list:
        from . import workerq

        results: list = [None] * count
        seen: set[int] = set()
        while True:
            spool = self._spool
            if spool is None:
                # A concurrent close(cancel=True) tore the spool down.
                raise RuntimeError(
                    "subprocess-queue executor closed before finishing "
                    f"the queue ({len(seen)}/{count} results)")
            # Liveness is sampled *before* the drain: a worker that
            # writes its last result and exits between the two is
            # caught by this drain (results precede exit), and one that
            # dies after the sample is caught next iteration.
            workers_gone = not any(proc.poll() is None
                                   for proc in self._workers)
            for index, outcome in workerq.drain_results(spool, seen):
                status, payload = outcome
                if status == "error":
                    raise payload
                results[index] = payload
                seen.add(index)
                if on_result is not None:
                    on_result(index, payload)
            if len(seen) >= count:
                return results
            if workers_gone:
                statuses = [proc.returncode for proc in self._workers]
                raise RuntimeError(
                    f"subprocess-queue workers exited with status "
                    f"{statuses or '(cancelled)'} before finishing the "
                    f"queue ({len(seen)}/{count} results)"
                )
            time.sleep(self.poll_seconds)

    def close(self, *, cancel: bool = False) -> None:
        workers, self._workers = self._workers, []
        deadline = time.monotonic() + self.shutdown_timeout
        for proc in workers:
            if proc.poll() is None and cancel:
                proc.terminate()
        for proc in workers:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.0,
                                          deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        spool, self._spool = self._spool, None
        if spool is not None:
            import shutil

            shutil.rmtree(spool, ignore_errors=True)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: canonical name -> backend class (``factory(jobs) -> Executor``).
_REGISTRY: dict[str, Callable[[int], Executor]] = {}


def register_executor(name: str, factory: Callable[[int], Executor], *,
                      replace: bool = False) -> None:
    """Register `factory` (``factory(jobs) -> Executor``) as `name`.

    Mirrors the warm-up method registry contract: re-registering an
    existing name raises unless ``replace=True``.
    """
    if not callable(factory):
        raise TypeError("factory must be a callable accepting a jobs count")
    if not replace and name in _REGISTRY:
        raise ValueError(f"executor {name!r} is already registered; "
                         "pass replace=True to override")
    _REGISTRY[name] = factory


def unregister_executor(name: str) -> None:
    """Remove a registered backend (readable ValueError on unknowns)."""
    _canonical(name)
    del _REGISTRY[name]


def _canonical(name: str) -> str:
    key = name.strip().lower()
    if key in _REGISTRY:
        return key
    known = ", ".join(sorted(_REGISTRY))
    raise ValueError(f"unknown executor {name!r}; known: {known}")


def registered_executor_names() -> list[str]:
    """Canonical backend names currently registered, sorted."""
    return sorted(_REGISTRY)


def executor_factory(name: str) -> Callable[[int], Executor]:
    """The registered factory behind `name`."""
    return _REGISTRY[_canonical(name)]


def resolve_executor(setting: "str | Executor | None" = None, *,
                     jobs: int = 1) -> Executor:
    """Turn an executor setting into a ready :class:`Executor`.

    Precedence: an explicit instance or name wins; otherwise the
    ``REPRO_EXECUTOR`` environment variable; otherwise ``"pool"``.
    Unknown names raise the registry's readable ``ValueError`` (the CLI
    maps it to exit status 2).
    """
    if isinstance(setting, Executor):
        return setting
    if setting is None:
        setting = os.environ.get(EXECUTOR_ENV_VAR, "").strip() or None
    if setting is None:
        setting = DEFAULT_EXECUTOR
    return executor_factory(setting)(jobs)


def describe_executors() -> list[tuple[str, str, str]]:
    """``(name, class, description)`` rows for ``repro executors``."""
    rows = []
    for name in registered_executor_names():
        backend = executor_factory(name)(1)
        rows.append((name, type(backend).__name__, backend.description))
    return rows


for _cls in (InProcessExecutor, ThreadExecutor, ProcessPoolBackend,
             SubprocessQueueExecutor):
    register_executor(_cls.name, _cls)
