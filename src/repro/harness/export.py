"""Machine-readable export of experiment results (CSV / JSON).

The plain-text formatters in :mod:`repro.harness.reporting` target
humans; these exporters feed downstream tooling (plotting, regression
tracking of the reproduction itself).
"""

from __future__ import annotations

import csv
import io
import json

from .experiment import WorkloadExperiment
from .reporting import audit_rows, audit_summary, compaction_stats


def matrix_rows(matrix: dict[str, WorkloadExperiment]) -> list[dict]:
    """Flatten a (workload x method) grid into one dict per cell."""
    rows: list[dict] = []
    for workload_name, experiment in matrix.items():
        for method_name, outcome in experiment.outcomes.items():
            run = outcome.run
            snapshot = run.extra.get("telemetry")
            phases = snapshot.phase_seconds if snapshot is not None else {}
            log_stats = (
                compaction_stats(snapshot)
                if snapshot is not None
                and "log.stored_records" in snapshot.counters
                else {}
            )
            # A cell snapshot audits exactly one (workload, method), so
            # its summary has at most one aggregate row.
            audit_summaries = (
                audit_summary(snapshot) if snapshot is not None else []
            )
            audit_stats = audit_summaries[0] if audit_summaries else {}
            rows.append({
                "workload": workload_name,
                "method": method_name,
                "true_ipc": experiment.true_ipc,
                "estimated_ipc": run.estimate.mean,
                "harmonic_ipc": run.extra.get("harmonic_mean_ipc"),
                "std_error": run.estimate.std_error,
                "relative_error": outcome.relative_error,
                "ci_pass": outcome.passes_confidence,
                "num_clusters": run.regimen.num_clusters,
                "cluster_size": run.regimen.cluster_size,
                # Two-phase pipeline provenance: False/1 for the serial
                # walk, so the column set is stable either way.
                "sharded": bool(run.extra.get("sharded", False)),
                "cluster_jobs": run.extra.get("cluster_jobs", 1),
                "functional_instructions":
                    run.cost.functional_instructions,
                "hot_instructions": run.cost.hot_instructions,
                "log_records": run.cost.log_records,
                "cache_updates": run.cost.cache_updates,
                "predictor_updates": run.cost.predictor_updates,
                "work_units": run.cost.work_units(),
                "wall_seconds": run.wall_seconds,
                # Telemetry phase split (None for untraced runs, so the
                # column set is stable whether or not tracing was on).
                "cold_skip_seconds": phases.get("cold_skip"),
                "reconstruct_seconds": phases.get("reconstruct"),
                "hot_sim_seconds": phases.get("hot_sim"),
                "trace_records":
                    len(snapshot.trace_records)
                    if snapshot is not None else None,
                # Skip-log retention (None for untraced runs, same
                # stable-column rationale as the phase split above).
                "log_raw_records": log_stats.get("raw_records"),
                "log_stored_records": log_stats.get("stored_records"),
                "log_stored_bytes": log_stats.get("stored_bytes"),
                "log_dedup_ratio": log_stats.get("dedup_ratio"),
                # Accuracy audit aggregates (None unless REPRO_AUDIT was
                # on for the run, same stable-column rationale).
                "audit_clusters": audit_stats.get("clusters"),
                "audit_cold_start_bias":
                    audit_stats.get("cold_start_bias"),
                "audit_sampling_bias": audit_stats.get("sampling_bias"),
                "audit_l1d_tag_agreement":
                    audit_stats.get("mean_l1d_tag_agreement"),
                "audit_pht_counter_agreement":
                    audit_stats.get("mean_pht_counter_agreement"),
            })
    return rows


def matrix_to_csv(matrix: dict[str, WorkloadExperiment]) -> str:
    """Render a grid as CSV text (header + one row per cell)."""
    rows = matrix_rows(matrix)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def matrix_to_json(matrix: dict[str, WorkloadExperiment],
                   indent: int = 2) -> str:
    """Render a grid as a JSON array of cell objects."""
    return json.dumps(matrix_rows(matrix), indent=indent)


def audit_to_json(snapshot, indent: int = 2) -> str:
    """Render a snapshot's audit records as canonical JSON text.

    The payload — per-(workload, method) summaries plus the per-cluster
    rows in :data:`~.reporting.AUDIT_COLUMNS` order — contains only
    deterministic quantities (no timing, no log-representation fields)
    and is serialised with sorted keys, so two runs that reconstruct
    identical state produce byte-identical text.  That is the form in
    which the raw==compacted and serial==parallel equivalence claims
    are asserted, by the test suite and by ``repro audit --source
    both``.
    """
    payload = {
        "schema": "repro-audit-v1",
        "summary": audit_summary(snapshot),
        "clusters": audit_rows(snapshot),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def save_audit(snapshot, path) -> None:
    """Write a snapshot's audit report to `path` as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(audit_to_json(snapshot) + "\n")


def save_matrix(matrix: dict[str, WorkloadExperiment], path) -> None:
    """Write a grid to `path`; format chosen by extension (.csv/.json)."""
    path_text = str(path)
    if path_text.endswith(".csv"):
        payload = matrix_to_csv(matrix)
    elif path_text.endswith(".json"):
        payload = matrix_to_json(matrix)
    else:
        raise ValueError("path must end with .csv or .json")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(payload)
