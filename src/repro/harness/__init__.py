"""Experiment harness: evaluation matrices and report formatting."""

from .experiment import (
    ExperimentScale,
    SCALES,
    scale_from_env,
    MethodOutcome,
    WorkloadExperiment,
    true_run_for,
    run_workload_experiment,
    run_matrix,
    full_matrix,
    average_over_workloads,
)
from .cache import (
    CACHE_ENV_VAR,
    CacheStats,
    ResultCache,
    cache_key,
    code_version,
    default_cache_dir,
    resolve_cache,
)
from .parallel import (
    CellProgress,
    CellSpec,
    TrueRunSpec,
    console_progress,
    matrix_specs,
    run_matrix_parallel,
)
from .export import (
    matrix_rows,
    matrix_to_csv,
    matrix_to_json,
    save_matrix,
)
from .reporting import (
    format_table,
    format_table1,
    format_method_summary,
    format_per_workload,
    format_speedups,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "scale_from_env",
    "MethodOutcome",
    "WorkloadExperiment",
    "true_run_for",
    "run_workload_experiment",
    "run_matrix",
    "full_matrix",
    "average_over_workloads",
    "CACHE_ENV_VAR",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "resolve_cache",
    "CellProgress",
    "CellSpec",
    "TrueRunSpec",
    "console_progress",
    "matrix_specs",
    "run_matrix_parallel",
    "matrix_rows",
    "matrix_to_csv",
    "matrix_to_json",
    "save_matrix",
    "format_table",
    "format_table1",
    "format_method_summary",
    "format_per_workload",
    "format_speedups",
]
