"""Experiment harness: evaluation matrices and report formatting."""

from .experiment import (
    ExperimentScale,
    SCALES,
    scale_from_env,
    MethodOutcome,
    WorkloadExperiment,
    true_run_for,
    run_workload_experiment,
    run_matrix,
    average_over_workloads,
)
from .export import (
    matrix_rows,
    matrix_to_csv,
    matrix_to_json,
    save_matrix,
)
from .reporting import (
    format_table,
    format_table1,
    format_method_summary,
    format_per_workload,
    format_speedups,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "scale_from_env",
    "MethodOutcome",
    "WorkloadExperiment",
    "true_run_for",
    "run_workload_experiment",
    "run_matrix",
    "average_over_workloads",
    "matrix_rows",
    "matrix_to_csv",
    "matrix_to_json",
    "save_matrix",
    "format_table",
    "format_table1",
    "format_method_summary",
    "format_per_workload",
    "format_speedups",
]
