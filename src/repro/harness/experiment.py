"""Experiment harness: the paper's evaluation matrix.

Couples workloads, sampling regimens, warm-up methods, and true-IPC
baselines into the (workload x method) grids behind every figure and
table.  Scale presets map the paper's 6-billion-instruction runs onto
laptop-sized populations; set ``REPRO_EXPERIMENT_SCALE`` to ``ci``,
``bench``, ``default``, or ``full`` (or pass a :class:`ExperimentScale`)
to trade fidelity for time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from ..branch import paper_predictor_config
from ..cache import paper_hierarchy_config
from ..sampling import (
    SampledRunResult,
    SampledSimulator,
    SamplingRegimen,
    SimulatorConfigs,
    TrueRunResult,
    measure_true_ipc,
)
from ..warmup import WarmupMethod
from ..workloads import PAPER_WORKLOADS, build_workload


@dataclass(frozen=True)
class ExperimentScale:
    """Population and regimen sizes for one experiment tier."""

    name: str
    total_instructions: int
    num_clusters: int
    cluster_size: int
    mem_scale: int = 1
    seed: int = 2007  # fixed uniform draw shared by every method
    #: Instructions functionally warmed before the measured population so
    #: both the true-IPC baseline and every sampled run start from the
    #: same steady state (removes the cold-start artifact of short
    #: populations; see DESIGN.md).
    warmup_prefix: int = 40_000
    #: Divisor applied to the paper's cache/predictor geometry so that
    #: skip regions are many times the cache capacity, as in the paper.
    microarch_scale: int = 32
    #: SMARTS-style detailed-warming instructions per cluster (simulated
    #: hot, excluded from measurement) hiding the pipeline-restart ramp.
    detail_ramp: int = 256

    def regimen(self) -> SamplingRegimen:
        return SamplingRegimen(
            total_instructions=self.total_instructions,
            num_clusters=self.num_clusters,
            cluster_size=self.cluster_size,
            seed=self.seed,
        )

    def configs(self) -> SimulatorConfigs:
        return SimulatorConfigs(
            hierarchy=paper_hierarchy_config(scale=self.microarch_scale),
            predictor=paper_predictor_config(scale=self.microarch_scale),
        )


SCALES: dict[str, ExperimentScale] = {
    # Unit-test tier: seconds per workload.
    "ci": ExperimentScale("ci", 160_000, 10, 800, warmup_prefix=20_000),
    # Benchmark tier: the default for the figure-regeneration benches.
    "bench": ExperimentScale("bench", 480_000, 20, 1_200),
    # Interactive tier.
    "default": ExperimentScale("default", 640_000, 25, 1_200),
    # Closest to the paper's regimen proportions; minutes per figure.
    "full": ExperimentScale("full", 1_440_000, 30, 2_000,
                            warmup_prefix=60_000),
}


def scale_from_env(default: str = "bench") -> ExperimentScale:
    """Resolve the experiment scale from ``REPRO_EXPERIMENT_SCALE``."""
    name = os.environ.get("REPRO_EXPERIMENT_SCALE", default)
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(
            f"REPRO_EXPERIMENT_SCALE={name!r} unknown; known: {known}"
        ) from None


@dataclass
class MethodOutcome:
    """One (workload, method) cell of the evaluation matrix."""

    run: SampledRunResult
    true_ipc: float

    @property
    def method_name(self) -> str:
        return self.run.method_name

    @property
    def relative_error(self) -> float:
        return self.run.relative_error(self.true_ipc)

    @property
    def passes_confidence(self) -> bool:
        return self.run.passes_confidence_test(self.true_ipc)

    @property
    def work_units(self) -> float:
        return self.run.work_units()

    @property
    def wall_seconds(self) -> float:
        return self.run.wall_seconds


@dataclass
class WorkloadExperiment:
    """All method outcomes for one workload under one regimen."""

    workload_name: str
    true_run: TrueRunResult
    outcomes: dict[str, MethodOutcome] = field(default_factory=dict)

    @property
    def true_ipc(self) -> float:
        return self.true_run.ipc

    def speedup(self, method_name: str, baseline: str = "S$BP") -> float:
        """Work-metric speedup of `method_name` relative to `baseline`."""
        numerator = self.outcomes[baseline].work_units
        denominator = self.outcomes[method_name].work_units
        return numerator / denominator if denominator else float("inf")

    def wall_speedup(self, method_name: str, baseline: str = "S$BP") -> float:
        numerator = self.outcomes[baseline].wall_seconds
        denominator = self.outcomes[method_name].wall_seconds
        return numerator / denominator if denominator else float("inf")


@lru_cache(maxsize=None)
def _true_run_cached(workload_name: str,
                     scale: ExperimentScale,
                     configs: SimulatorConfigs) -> TrueRunResult:
    workload = build_workload(workload_name, mem_scale=scale.mem_scale)
    return measure_true_ipc(workload, scale.total_instructions,
                            configs,
                            warmup_prefix=scale.warmup_prefix)


def true_run_for(workload_name: str,
                 scale: ExperimentScale,
                 configs: SimulatorConfigs | None = None) -> TrueRunResult:
    """Full-trace detailed baseline, cached per process.

    `configs` must match the microarchitecture the sampled runs use —
    it participates in the cache key, so a caller-supplied override is
    scored against a baseline built from the same configuration rather
    than silently falling back to ``scale.configs()``.
    """
    configs = configs if configs is not None else scale.configs()
    return _true_run_cached(workload_name, scale, configs)


def run_workload_experiment(
    workload_name: str,
    methods: list[WarmupMethod],
    scale: ExperimentScale,
    configs: SimulatorConfigs | None = None,
) -> WorkloadExperiment:
    """Run every method on one workload (same clusters for all methods)."""
    configs = configs if configs is not None else scale.configs()
    workload = build_workload(workload_name, mem_scale=scale.mem_scale)
    true_run = true_run_for(workload_name, scale, configs)
    simulator = SampledSimulator(
        workload, scale.regimen(), configs,
        warmup_prefix=scale.warmup_prefix,
        detail_ramp=scale.detail_ramp,
    )
    experiment = WorkloadExperiment(
        workload_name=workload_name, true_run=true_run
    )
    for method in methods:
        run = simulator.run(method)
        experiment.outcomes[run.method_name] = MethodOutcome(
            run=run, true_ipc=true_run.ipc
        )
    return experiment


def run_matrix(
    method_factory,
    workload_names: tuple[str, ...] = PAPER_WORKLOADS,
    scale: ExperimentScale | None = None,
    configs: SimulatorConfigs | None = None,
) -> dict[str, WorkloadExperiment]:
    """Run a methods-by-workloads grid.

    `method_factory` is a zero-argument callable returning a fresh list of
    warm-up methods (fresh per workload, so no state leaks between runs).
    """
    scale = scale if scale is not None else scale_from_env()
    return {
        name: run_workload_experiment(
            name, method_factory(), scale, configs
        )
        for name in workload_names
    }


@lru_cache(maxsize=4)
def _full_matrix_cached(scale_name: str) -> dict[str, WorkloadExperiment]:
    from ..warmup import paper_method_suite

    return run_matrix(paper_method_suite, scale=SCALES[scale_name])


def full_matrix(scale_name: str = "") -> dict[str, WorkloadExperiment]:
    """The complete Table 2 grid (16 methods x 9 workloads), cached.

    Several figures and the appendix tables slice the same grid; caching
    per process lets the benches share one run.  An empty `scale_name`
    resolves through ``REPRO_EXPERIMENT_SCALE`` *before* the cache is
    consulted, so changing the environment variable between calls never
    returns the grid computed for the previous scale.
    """
    scale = SCALES[scale_name] if scale_name else scale_from_env()
    return _full_matrix_cached(scale.name)


def average_over_workloads(
    matrix: dict[str, WorkloadExperiment], method_name: str
) -> tuple[float, float, float]:
    """(mean relative error, mean work units, mean wall seconds)."""
    outcomes = [
        experiment.outcomes[method_name] for experiment in matrix.values()
    ]
    n = len(outcomes)
    if n == 0:
        # An empty grid (no workloads selected) has no meaningful
        # averages; zeros keep report formatters total rather than raise.
        return (0.0, 0.0, 0.0)
    return (
        sum(outcome.relative_error for outcome in outcomes) / n,
        sum(outcome.work_units for outcome in outcomes) / n,
        sum(outcome.wall_seconds for outcome in outcomes) / n,
    )
