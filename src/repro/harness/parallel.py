"""Parallel experiment execution engine.

The evaluation grid behind every figure and table is a (workload x
method) matrix whose cells are mutually independent: each sampled run
builds its own machine, hierarchy, and predictor, and the regimen seed —
not execution order — determines cluster placement.  This module fans
those cells out over a :class:`concurrent.futures.ProcessPoolExecutor`
as small picklable task specs and deterministically reassembles the same
:class:`~.experiment.WorkloadExperiment` grids the serial
:func:`~.experiment.run_matrix` produces: same regimen seed, same
cluster IPCs, bit-identical estimates.

Two task kinds exist per grid:

- one **true-run** task per workload (the full-trace baseline, shared by
  every method outcome of that workload), and
- one **cell** task per (workload, method) pair.

Both are pure functions of their spec, so both are memoised through the
optional on-disk :class:`~.cache.ResultCache`; a warm cache turns a grid
into pure deserialisation.  The engine degrades gracefully: ``jobs=1``,
an unpicklable method factory, or a platform without working process
pools all fall back to in-process serial execution of the same task
list (cache and progress reporting included).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable

from ..sampling import SampledRunResult, SampledSimulator, SimulatorConfigs, TrueRunResult
from ..telemetry import (
    EMPTY_SNAPSHOT,
    EVENT_CELL,
    SPAN_PARENT_ENV_VAR,
    TelemetrySnapshot,
    audit_enabled,
    collection_enabled,
    emit_event,
    events_path_from_env,
    merge_snapshots,
    recorder_from_env,
    spans_enabled,
)
from ..warmup.base import WarmupCost
from ..workloads import PAPER_WORKLOADS, build_workload
from .cache import ResultCache, cache_key
from .experiment import (
    ExperimentScale,
    MethodOutcome,
    WorkloadExperiment,
    scale_from_env,
    true_run_for,
)


@dataclass(frozen=True)
class TrueRunSpec:
    """Picklable description of one full-trace baseline task."""

    workload_name: str
    scale: ExperimentScale
    configs: SimulatorConfigs

    @property
    def kind(self) -> str:
        return "true"

    @property
    def method_name(self) -> str:
        return "<true>"

    def key(self) -> str:
        return cache_key("true", self.workload_name, self.scale,
                         self.configs)


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one (workload, method) grid cell."""

    workload_name: str
    method_name: str
    scale: ExperimentScale
    configs: SimulatorConfigs
    #: Shard workers for the two-phase pipeline inside this cell
    #: (1 = the serial walk; see repro.sampling.pipeline).
    cluster_jobs: int = 1

    @property
    def kind(self) -> str:
        return "cell"

    def key(self) -> str:
        # Traced and untraced runs are cached under distinct keys: a
        # result computed without telemetry carries no snapshot, and
        # serving it to a traced grid would silently drop that cell from
        # the merged profile (and vice versa would waste snapshot bytes).
        # Audited runs are distinct again — their snapshots carry audit
        # records a merely-traced run lacks.  Sharded runs are distinct
        # too: shards start clusters from reconstruction-only state, so
        # their IPCs legitimately differ from the serial walk's (but the
        # key deliberately ignores *how many* workers sharded a run —
        # any jobs > 1 executes the identical two-phase schedule).
        kind = "cell+telemetry" if collection_enabled() else "cell"
        if audit_enabled():
            kind += "+audit"
        if spans_enabled():
            kind += "+spans"
        if self.cluster_jobs > 1:
            kind += "+shards"
        return cache_key(kind, self.workload_name, self.scale,
                         self.configs, self.method_name)


@dataclass(frozen=True)
class CellProgress:
    """One progress event, emitted as each task finishes.

    `wall_seconds` is the simulation's own wall time (as recorded in the
    result, independent of pool queueing); `cost` is the run's
    :class:`~..warmup.base.WarmupCost` (None for true-run tasks),
    surfacing reconstruction statistics — log records buffered,
    cache/predictor updates replayed — alongside timing.
    """

    completed: int
    total: int
    kind: str
    workload_name: str
    method_name: str
    wall_seconds: float
    cached: bool
    cost: WarmupCost | None = None

    def describe(self) -> str:
        label = (self.workload_name if self.kind == "true"
                 else f"{self.workload_name} x {self.method_name}")
        origin = "cache" if self.cached else f"{self.wall_seconds:.2f}s"
        line = (f"[{self.completed}/{self.total}] "
                f"{self.kind:<5} {label}: {origin}")
        if self.cost is not None and not self.cached:
            line += (f" (warm updates {self.cost.warm_updates():,}, "
                     f"log records {self.cost.log_records:,})")
        return line


ProgressHook = Callable[[CellProgress], None]


def console_progress(event: CellProgress) -> None:
    """A ready-made progress hook printing one line per finished task."""
    print(event.describe(), flush=True)


class LiveProgress:
    """Streaming progress display: done/total, cells/sec, and ETA.

    On a terminal the line rewrites in place (carriage return); on a
    pipe each update is its own line, so logs stay readable.  Rate and
    ETA count *all* finished tasks (cache hits included) against wall
    time since construction — a warm cache legitimately reads as a very
    fast run.
    """

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self._start = time.perf_counter()
        self._is_tty = bool(getattr(self._stream, "isatty", lambda: False)())

    def __call__(self, event: CellProgress) -> None:
        elapsed = max(time.perf_counter() - self._start, 1e-9)
        rate = event.completed / elapsed
        left = event.total - event.completed
        eta = left / rate if rate > 0 else 0.0
        percent = 100.0 * event.completed / max(event.total, 1)
        label = (event.workload_name if event.kind == "true"
                 else f"{event.workload_name} x {event.method_name}")
        if event.cached:
            label += " (cache)"
        line = (f"[{event.completed}/{event.total}] {percent:3.0f}% | "
                f"{rate:.2f} cells/s | ETA {eta:.0f}s | {label}")
        if self._is_tty:
            # Pad to erase a longer previous line before rewriting.
            self._stream.write("\r" + line.ljust(78))
            if left == 0:
                self._stream.write("\n")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()


def _run_true_task(spec: TrueRunSpec) -> TrueRunResult:
    """Worker: compute one full-trace baseline."""
    return true_run_for(spec.workload_name, spec.scale, spec.configs)


def _run_cell_task(spec: CellSpec, method_factory) -> SampledRunResult:
    """Worker: run one warm-up method on one workload."""
    methods = {method.name: method for method in method_factory()}
    try:
        method = methods[spec.method_name]
    except KeyError:
        known = ", ".join(sorted(methods))
        raise ValueError(
            f"method factory produced no method named "
            f"{spec.method_name!r}; known: {known}"
        ) from None
    workload = build_workload(spec.workload_name,
                              mem_scale=spec.scale.mem_scale)
    simulator = SampledSimulator(
        workload, spec.scale.regimen(), spec.configs,
        warmup_prefix=spec.scale.warmup_prefix,
        detail_ramp=spec.scale.detail_ramp,
        cluster_jobs=spec.cluster_jobs,
    )
    return simulator.run(method)


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


@contextlib.contextmanager
def _span_parent_env(span_context):
    """Plant a span context in the environment for task workers.

    Pool workers inherit the environment at executor creation (fork or
    spawn both copy it), and in-process fallbacks read it live — one
    mechanism covers both execution paths.  No-op for ``None`` (spans
    disabled); always restores the previous value.
    """
    if span_context is None:
        yield
        return
    previous = os.environ.get(SPAN_PARENT_ENV_VAR)
    os.environ[SPAN_PARENT_ENV_VAR] = span_context.encode()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SPAN_PARENT_ENV_VAR, None)
        else:
            os.environ[SPAN_PARENT_ENV_VAR] = previous


def map_tasks(worker, tasks, jobs: int, span_context=None) -> list:
    """Order-preserving parallel map: ``[worker(t) for t in tasks]``.

    The generic executor underneath the two-phase pipeline's shard
    fan-out (and any future fixed-task-list parallelism).  Fans `tasks`
    out over up to `jobs` worker processes and returns results in task
    order.  Degrades to in-process execution of the same list — with
    identical results — when `jobs` <= 1, the first task does not
    pickle, the caller is already inside a pool worker (daemonic
    processes cannot have children), or the platform cannot build a
    process pool at all.

    `span_context` (a :class:`~repro.telemetry.SpanContext`) re-parents
    every worker's spans under the caller's open span and onto the run's
    clock origin; it rides the environment so the same propagation works
    in pool workers and the in-process fallback alike.
    """
    tasks = list(tasks)
    with _span_parent_env(span_context):
        if jobs > 1 and len(tasks) > 1 and _is_picklable(tasks[0]):
            import multiprocessing

            if not multiprocessing.current_process().daemon:
                results = _map_pool(worker, tasks, jobs)
                if results is not None:
                    return results
        return [worker(task) for task in tasks]


def _map_pool(worker, tasks, jobs: int):
    """Pool-backed map; None when the pool cannot run the tasks.

    Any pool-side failure — creation, submission, a broken worker —
    falls back to the in-process path; a genuine exception raised by
    `worker` itself re-raises identically there.
    """
    try:
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
    except (NotImplementedError, OSError, PermissionError, ValueError):
        return None
    try:
        futures = [executor.submit(worker, task) for task in tasks]
        return [future.result() for future in futures]
    except Exception:
        return None
    finally:
        executor.shutdown()


def _execute_serial(pending, method_factory, results, emit):
    """In-process execution of `pending` specs (the fallback path)."""
    for spec in pending:
        if spec.kind == "true":
            result = _run_true_task(spec)
        else:
            result = _run_cell_task(spec, method_factory)
        results[spec] = result
        emit(spec, result, cached=False)


def _execute_pool(pending, method_factory, results, emit, jobs) -> bool:
    """Fan `pending` out over a process pool; False if no pool exists."""
    try:
        executor = ProcessPoolExecutor(max_workers=jobs)
    except (NotImplementedError, OSError, PermissionError, ValueError):
        return False
    try:
        futures = {}
        for spec in pending:
            if spec.kind == "true":
                future = executor.submit(_run_true_task, spec)
            else:
                future = executor.submit(_run_cell_task, spec,
                                         method_factory)
            futures[future] = spec
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                spec = futures[future]
                result = future.result()
                results[spec] = result
                emit(spec, result, cached=False)
    finally:
        executor.shutdown()
    return True


def merged_telemetry(
    grid: dict[str, WorkloadExperiment],
) -> TelemetrySnapshot:
    """Fold every cell's telemetry snapshot into one run-level profile.

    Each traced sampled run carries a picklable
    :class:`~repro.telemetry.TelemetrySnapshot` in
    ``SampledRunResult.extra`` — it crosses the worker process boundary
    with the result, so merging here yields exactly the totals a serial
    run of the same grid would accumulate (counters and phase seconds
    sum; trace records are re-sorted into deterministic order).

    Always returns a snapshot: an untraced grid — or one with zero
    successful cells — folds to the shared
    :data:`~repro.telemetry.EMPTY_SNAPSHOT` sentinel (falsy, read-only),
    so callers can iterate or merge without a None guard and use plain
    truthiness to decide whether anything was collected.
    """
    merged = merge_snapshots(
        outcome.run.extra.get("telemetry")
        for experiment in grid.values()
        for outcome in experiment.outcomes.values()
    )
    return EMPTY_SNAPSHOT if merged is None else merged


def matrix_specs(
    method_names: Iterable[str],
    workload_names: Iterable[str],
    scale: ExperimentScale,
    configs: SimulatorConfigs,
    cluster_jobs: int = 1,
) -> list:
    """The full deterministic task list for one grid (true runs first)."""
    specs: list = [
        TrueRunSpec(workload_name=name, scale=scale, configs=configs)
        for name in workload_names
    ]
    specs.extend(
        CellSpec(workload_name=workload_name, method_name=method_name,
                 scale=scale, configs=configs, cluster_jobs=cluster_jobs)
        for workload_name in workload_names
        for method_name in method_names
    )
    return specs


def run_matrix_parallel(
    method_factory,
    workload_names: tuple[str, ...] = PAPER_WORKLOADS,
    scale: ExperimentScale | None = None,
    configs: SimulatorConfigs | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: ProgressHook | None = None,
    cluster_jobs: int = 1,
) -> dict[str, WorkloadExperiment]:
    """Run a methods-by-workloads grid, fanned out over processes.

    Drop-in parallel equivalent of :func:`~.experiment.run_matrix`: the
    same `method_factory` contract (zero-argument callable returning
    fresh methods), the same grid shape, and — because every cell builds
    its own simulator from the shared regimen seed — bit-identical
    cluster IPCs and estimates.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1``
        executes in-process (no pool, no pickling requirements).
    cache:
        Optional on-disk :class:`ResultCache`; hits skip execution
        entirely and count toward progress as ``cached`` events.
    progress:
        Optional hook called with a :class:`CellProgress` per finished
        task, in completion order.
    cluster_jobs:
        Shard workers for the two-phase pipeline *inside* each cell
        (see :mod:`repro.sampling.pipeline`); with ``jobs > 1`` the
        cells themselves already occupy the CPUs, so shard fan-out
        inside pool workers degrades to in-process execution with
        identical results.
    """
    scale = scale if scale is not None else scale_from_env()
    configs = configs if configs is not None else scale.configs()
    if jobs is None:
        jobs = os.cpu_count() or 1
    method_names = [method.name for method in method_factory()]
    specs = matrix_specs(method_names, workload_names, scale, configs,
                         cluster_jobs=cluster_jobs)

    # The matrix driver's own span recorder: the "matrix" span is the
    # trace root every cell's "run" span parents under (the context
    # rides the environment into pool workers and in-process cells
    # alike); cache lookup/store get their own spans so a warm cache is
    # visible on the timeline.  Null when REPRO_SPANS is off.
    recorder = recorder_from_env()
    events_path = events_path_from_env()

    results: dict = {}
    completed = 0

    def emit(spec, result, cached: bool) -> None:
        nonlocal completed
        completed += 1
        emit_event(
            events_path,
            EVENT_CELL,
            completed=completed,
            total=len(specs),
            kind=spec.kind,
            workload=spec.workload_name,
            method=spec.method_name,
            cached=cached,
            wall_seconds=0.0 if cached else result.wall_seconds,
        )
        if progress is None:
            return
        progress(CellProgress(
            completed=completed,
            total=len(specs),
            kind=spec.kind,
            workload_name=spec.workload_name,
            method_name=spec.method_name,
            wall_seconds=0.0 if cached else result.wall_seconds,
            cached=cached,
            cost=getattr(result, "cost", None),
        ))

    with recorder.span("matrix", cells=len(specs), jobs=jobs,
                       cluster_jobs=cluster_jobs):
        pending = []
        with recorder.span("cache_lookup", cat="cache"):
            for spec in specs:
                if cache is not None:
                    hit = cache.get(spec.key())
                    if hit is not None:
                        results[spec] = hit
                        emit(spec, hit, cached=True)
                        continue
                pending.append(spec)

        if pending:
            with _span_parent_env(recorder.context()
                                  if recorder.enabled else None):
                use_pool = jobs > 1 and _is_picklable(method_factory)
                ran_in_pool = use_pool and _execute_pool(
                    pending, method_factory, results, emit, jobs
                )
                if not ran_in_pool:
                    _execute_serial(pending, method_factory, results, emit)
            if cache is not None:
                with recorder.span("cache_store", cat="cache",
                                   entries=len(pending)):
                    for spec in pending:
                        cache.put(spec.key(), results[spec])
    recorder.flush()

    grid: dict[str, WorkloadExperiment] = {}
    for workload_name in workload_names:
        true_run = results[TrueRunSpec(workload_name, scale, configs)]
        experiment = WorkloadExperiment(
            workload_name=workload_name, true_run=true_run
        )
        for method_name in method_names:
            run = results[CellSpec(workload_name, method_name, scale,
                                   configs, cluster_jobs)]
            experiment.outcomes[method_name] = MethodOutcome(
                run=run, true_ipc=true_run.ipc
            )
        grid[workload_name] = experiment
    return grid
