"""Parallel experiment execution engine.

The evaluation grid behind every figure and table is a (workload x
method) matrix whose cells are mutually independent: each sampled run
builds its own machine, hierarchy, and predictor, and the regimen seed —
not execution order — determines cluster placement.  This module fans
those cells out as small picklable task specs through the pluggable
:class:`~.executor.Executor` protocol (``inprocess``, ``threads``,
``pool``, ``subprocess-queue``; see :mod:`~.executor`) and
deterministically reassembles the same
:class:`~.experiment.WorkloadExperiment` grids the serial
:func:`~.experiment.run_matrix` produces: same regimen seed, same
cluster IPCs, bit-identical estimates — whichever backend ran the
cells.

Two task kinds exist per grid:

- one **true-run** task per workload (the full-trace baseline, shared by
  every method outcome of that workload), and
- one **cell** task per (workload, method) pair.

Both are pure functions of their spec, so both are memoised through the
optional on-disk :class:`~.cache.ResultCache`; a warm cache turns a grid
into pure deserialisation.  The engine degrades gracefully: ``jobs=1``,
an unpicklable method factory, or a platform without working process
pools all fall back to in-process serial execution of the same task
list (cache and progress reporting included).
"""

from __future__ import annotations

import contextlib
import os
import sys
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from ..sampling import SampledRunResult, SampledSimulator, SimulatorConfigs, TrueRunResult
from ..telemetry import (
    EMPTY_SNAPSHOT,
    EVENT_CELL,
    RUN_ID_ENV_VAR,
    SPAN_PARENT_ENV_VAR,
    TelemetrySnapshot,
    audit_enabled,
    collection_enabled,
    emit_event,
    events_path_from_env,
    merge_snapshots,
    recorder_from_env,
    spans_enabled,
)
from ..warmup.base import WarmupCost
from ..workloads import PAPER_WORKLOADS, build_workload
from .cache import ResultCache, cache_key
from .executor import Executor, resolve_executor
from .experiment import (
    ExperimentScale,
    MethodOutcome,
    WorkloadExperiment,
    scale_from_env,
    true_run_for,
)


@dataclass(frozen=True)
class TrueRunSpec:
    """Picklable description of one full-trace baseline task."""

    workload_name: str
    scale: ExperimentScale
    configs: SimulatorConfigs

    @property
    def kind(self) -> str:
        return "true"

    @property
    def method_name(self) -> str:
        return "<true>"

    def key(self) -> str:
        return cache_key("true", self.workload_name, self.scale,
                         self.configs)


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one (workload, method) grid cell."""

    workload_name: str
    method_name: str
    scale: ExperimentScale
    configs: SimulatorConfigs
    #: Shard workers for the two-phase pipeline inside this cell
    #: (1 = the serial walk; see repro.sampling.pipeline).
    cluster_jobs: int = 1

    @property
    def kind(self) -> str:
        return "cell"

    def key(self) -> str:
        # Traced and untraced runs are cached under distinct keys: a
        # result computed without telemetry carries no snapshot, and
        # serving it to a traced grid would silently drop that cell from
        # the merged profile (and vice versa would waste snapshot bytes).
        # Audited runs are distinct again — their snapshots carry audit
        # records a merely-traced run lacks.  Sharded runs are distinct
        # too: shards start clusters from reconstruction-only state, so
        # their IPCs legitimately differ from the serial walk's (but the
        # key deliberately ignores *how many* workers sharded a run —
        # any jobs > 1 executes the identical two-phase schedule).
        kind = "cell+telemetry" if collection_enabled() else "cell"
        if audit_enabled():
            kind += "+audit"
        if spans_enabled():
            kind += "+spans"
        if self.cluster_jobs > 1:
            kind += "+shards"
        return cache_key(kind, self.workload_name, self.scale,
                         self.configs, self.method_name)


@dataclass(frozen=True)
class CellProgress:
    """One progress event, emitted as each task finishes.

    `wall_seconds` is the simulation's own wall time (as recorded in the
    result, independent of pool queueing); `cost` is the run's
    :class:`~..warmup.base.WarmupCost` (None for true-run tasks),
    surfacing reconstruction statistics — log records buffered,
    cache/predictor updates replayed — alongside timing.
    """

    completed: int
    total: int
    kind: str
    workload_name: str
    method_name: str
    wall_seconds: float
    cached: bool
    cost: WarmupCost | None = None

    def describe(self) -> str:
        label = (self.workload_name if self.kind == "true"
                 else f"{self.workload_name} x {self.method_name}")
        origin = "cache" if self.cached else f"{self.wall_seconds:.2f}s"
        line = (f"[{self.completed}/{self.total}] "
                f"{self.kind:<5} {label}: {origin}")
        if self.cost is not None and not self.cached:
            line += (f" (warm updates {self.cost.warm_updates():,}, "
                     f"log records {self.cost.log_records:,})")
        return line


ProgressHook = Callable[[CellProgress], None]


def console_progress(event: CellProgress) -> None:
    """A ready-made progress hook printing one line per finished task."""
    print(event.describe(), flush=True)


class LiveProgress:
    """Streaming progress display: done/total, cells/sec, and ETA.

    On a terminal the line rewrites in place (carriage return); on a
    pipe each update is its own line, so logs stay readable.  Rate and
    ETA count *all* finished tasks (cache hits included) against wall
    time since construction — a warm cache legitimately reads as a very
    fast run.
    """

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self._start = time.perf_counter()
        self._is_tty = bool(getattr(self._stream, "isatty", lambda: False)())

    def __call__(self, event: CellProgress) -> None:
        elapsed = max(time.perf_counter() - self._start, 1e-9)
        rate = event.completed / elapsed
        left = event.total - event.completed
        eta = left / rate if rate > 0 else 0.0
        percent = 100.0 * event.completed / max(event.total, 1)
        label = (event.workload_name if event.kind == "true"
                 else f"{event.workload_name} x {event.method_name}")
        if event.cached:
            label += " (cache)"
        line = (f"[{event.completed}/{event.total}] {percent:3.0f}% | "
                f"{rate:.2f} cells/s | ETA {eta:.0f}s | {label}")
        if self._is_tty:
            # Pad to erase a longer previous line before rewriting.
            self._stream.write("\r" + line.ljust(78))
            if left == 0:
                self._stream.write("\n")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()


def _run_true_task(spec: TrueRunSpec) -> TrueRunResult:
    """Worker: compute one full-trace baseline."""
    return true_run_for(spec.workload_name, spec.scale, spec.configs)


def _run_cell_task(spec: CellSpec, method_factory) -> SampledRunResult:
    """Worker: run one warm-up method on one workload."""
    methods = {method.name: method for method in method_factory()}
    try:
        method = methods[spec.method_name]
    except KeyError:
        known = ", ".join(sorted(methods))
        raise ValueError(
            f"method factory produced no method named "
            f"{spec.method_name!r}; known: {known}"
        ) from None
    workload = build_workload(spec.workload_name,
                              mem_scale=spec.scale.mem_scale)
    simulator = SampledSimulator(
        workload, spec.scale.regimen(), spec.configs,
        warmup_prefix=spec.scale.warmup_prefix,
        detail_ramp=spec.scale.detail_ramp,
        cluster_jobs=spec.cluster_jobs,
    )
    return simulator.run(method)


@dataclass(frozen=True)
class _MatrixTask:
    """One grid task plus the factory that rebuilds its method suite.

    Bundling the factory into the task (instead of partial-applying it
    into the worker) keeps the executor contract uniform — a
    module-level worker function and a list of picklable tasks — so the
    pickling probe inside process-based backends covers the factory
    automatically.
    """

    spec: object
    method_factory: object


def _run_matrix_task(task: _MatrixTask):
    """Worker: one grid task (true-run or cell), any backend."""
    if task.spec.kind == "true":
        return _run_true_task(task.spec)
    return _run_cell_task(task.spec, task.method_factory)


@contextlib.contextmanager
def _propagation_env(span_context, run_id):
    """Plant cross-process observability context for task workers.

    Pool workers inherit the environment at executor creation (fork or
    spawn both copy it), and in-process fallbacks read it live — one
    mechanism covers both execution paths.  Two values ride it: the
    span parent context (:data:`~repro.telemetry.SPAN_PARENT_ENV_VAR`)
    and the correlation id (:data:`~repro.telemetry.RUN_ID_ENV_VAR`).
    ``None`` values are no-ops (an ambient ``REPRO_RUN_ID`` already in
    the environment propagates untouched); previous values are always
    restored.
    """
    plants = {}
    if span_context is not None:
        plants[SPAN_PARENT_ENV_VAR] = span_context.encode()
    if run_id is not None:
        plants[RUN_ID_ENV_VAR] = run_id
    if not plants:
        yield
        return
    previous = {name: os.environ.get(name) for name in plants}
    os.environ.update(plants)
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _span_parent_env(span_context):
    """Back-compat alias: span-context-only propagation."""
    return _propagation_env(span_context, None)


def map_tasks(worker, tasks, jobs: int, span_context=None,
              executor: "str | Executor | None" = None,
              run_id: "str | None" = None,
              on_result=None) -> list:
    """Order-preserving parallel map: ``[worker(t) for t in tasks]``.

    The generic fan-out underneath the two-phase pipeline's shard
    dispatch (and any future fixed-task-list parallelism), routed
    through the :class:`~.executor.Executor` protocol.  `executor`
    names a registered backend or passes a ready instance; ``None``
    resolves ``REPRO_EXECUTOR`` and falls back to the historical
    ``pool`` behavior, whose in-process degradations (``jobs <= 1``,
    unpicklable work, daemonic caller, pool-less platform) are
    preserved bit for bit.  Whatever the backend, results come back in
    task order, so folds stay deterministic.

    `span_context` (a :class:`~repro.telemetry.SpanContext`) re-parents
    every worker's spans under the caller's open span and onto the run's
    clock origin; it rides the environment so the same propagation works
    in subprocess workers and in-process fallbacks alike.  `run_id`
    rides the same mechanism: ``None`` defers to the ambient
    ``REPRO_RUN_ID`` (the common case — the CLI and the service plant
    it once per run), an explicit value pins the fan-out's correlation
    id for library callers.

    `on_result` is forwarded to the backend's ``map``: called as
    ``on_result(index, result)`` from the calling thread in completion
    order, it lets callers fold results as they land (streaming folds)
    instead of waiting for the full ordered list.  Backends that do not
    stream simply return the list; callers must treat ``on_result`` as
    best-effort and fall back to the return value.

    An interrupted or crashing fan-out closes the backend with
    ``cancel=True`` — pending work is abandoned and live worker
    processes are terminated, never orphaned.
    """
    tasks = list(tasks)
    owned = not isinstance(executor, Executor)
    backend = resolve_executor(executor, jobs=jobs)
    with _propagation_env(span_context, run_id):
        try:
            return backend.map(worker, tasks, on_result=on_result)
        except BaseException:
            backend.close(cancel=True)
            raise
        finally:
            if owned:
                backend.close()


def merged_telemetry(
    grid: dict[str, WorkloadExperiment],
) -> TelemetrySnapshot:
    """Fold every cell's telemetry snapshot into one run-level profile.

    Each traced sampled run carries a picklable
    :class:`~repro.telemetry.TelemetrySnapshot` in
    ``SampledRunResult.extra`` — it crosses the worker process boundary
    with the result, so merging here yields exactly the totals a serial
    run of the same grid would accumulate (counters and phase seconds
    sum; trace records are re-sorted into deterministic order).

    Always returns a snapshot: an untraced grid — or one with zero
    successful cells — folds to the shared
    :data:`~repro.telemetry.EMPTY_SNAPSHOT` sentinel (falsy, read-only),
    so callers can iterate or merge without a None guard and use plain
    truthiness to decide whether anything was collected.
    """
    merged = merge_snapshots(
        outcome.run.extra.get("telemetry")
        for experiment in grid.values()
        for outcome in experiment.outcomes.values()
    )
    return EMPTY_SNAPSHOT if merged is None else merged


def matrix_specs(
    method_names: Iterable[str],
    workload_names: Iterable[str],
    scale: ExperimentScale,
    configs: SimulatorConfigs,
    cluster_jobs: int = 1,
) -> list:
    """The full deterministic task list for one grid (true runs first)."""
    specs: list = [
        TrueRunSpec(workload_name=name, scale=scale, configs=configs)
        for name in workload_names
    ]
    specs.extend(
        CellSpec(workload_name=workload_name, method_name=method_name,
                 scale=scale, configs=configs, cluster_jobs=cluster_jobs)
        for workload_name in workload_names
        for method_name in method_names
    )
    return specs


def execute_matrix(
    method_factory,
    workload_names: tuple[str, ...] = PAPER_WORKLOADS,
    scale: ExperimentScale | None = None,
    configs: SimulatorConfigs | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: ProgressHook | None = None,
    cluster_jobs: int = 1,
    executor: "str | Executor | None" = None,
) -> dict[str, WorkloadExperiment]:
    """Run a methods-by-workloads grid through an executor backend.

    Drop-in parallel equivalent of :func:`~.experiment.run_matrix`: the
    same `method_factory` contract (zero-argument callable returning
    fresh methods), the same grid shape, and — because every cell builds
    its own simulator from the shared regimen seed — bit-identical
    cluster IPCs and estimates, whichever backend runs the cells.

    Parameters
    ----------
    jobs:
        Worker parallelism; ``None`` means ``os.cpu_count()``.  ``1``
        executes in-process (no pool, no pickling requirements).
    cache:
        Optional on-disk :class:`ResultCache`; hits skip execution
        entirely and count toward progress as ``cached`` events.
    progress:
        Optional hook called with a :class:`CellProgress` per finished
        task, in completion order.
    cluster_jobs:
        Shard workers for the two-phase pipeline *inside* each cell
        (see :mod:`repro.sampling.pipeline`); with ``jobs > 1`` the
        cells themselves already occupy the CPUs, so shard fan-out
        inside pool workers degrades to in-process execution with
        identical results.
    executor:
        Registered backend name (``"inprocess"``, ``"threads"``,
        ``"pool"``, ``"subprocess-queue"``) or a ready
        :class:`~.executor.Executor`; ``None`` resolves
        ``REPRO_EXECUTOR`` and defaults to ``"pool"``.
    """
    scale = scale if scale is not None else scale_from_env()
    configs = configs if configs is not None else scale.configs()
    if jobs is None:
        jobs = os.cpu_count() or 1
    method_names = [method.name for method in method_factory()]
    specs = matrix_specs(method_names, workload_names, scale, configs,
                         cluster_jobs=cluster_jobs)

    # The matrix driver's own span recorder: the "matrix" span is the
    # trace root every cell's "run" span parents under (the context
    # rides the environment into pool workers and in-process cells
    # alike); cache lookup/store get their own spans so a warm cache is
    # visible on the timeline.  Null when REPRO_SPANS is off.
    recorder = recorder_from_env()
    events_path = events_path_from_env()

    results: dict = {}
    completed = 0

    def emit(spec, result, cached: bool) -> None:
        nonlocal completed
        completed += 1
        emit_event(
            events_path,
            EVENT_CELL,
            completed=completed,
            total=len(specs),
            kind=spec.kind,
            workload=spec.workload_name,
            method=spec.method_name,
            cached=cached,
            wall_seconds=0.0 if cached else result.wall_seconds,
        )
        if progress is None:
            return
        progress(CellProgress(
            completed=completed,
            total=len(specs),
            kind=spec.kind,
            workload_name=spec.workload_name,
            method_name=spec.method_name,
            wall_seconds=0.0 if cached else result.wall_seconds,
            cached=cached,
            cost=getattr(result, "cost", None),
        ))

    with recorder.span("matrix", cells=len(specs), jobs=jobs,
                       cluster_jobs=cluster_jobs):
        pending = []
        with recorder.span("cache_lookup", cat="cache"):
            for spec in specs:
                if cache is not None:
                    hit = cache.get(spec.key())
                    if hit is not None:
                        results[spec] = hit
                        emit(spec, hit, cached=True)
                        continue
                pending.append(spec)

        if pending:
            tasks = [_MatrixTask(spec, method_factory) for spec in pending]

            def on_result(index: int, result) -> None:
                spec = pending[index]
                results[spec] = result
                emit(spec, result, cached=False)

            owned = not isinstance(executor, Executor)
            backend = resolve_executor(executor, jobs=jobs)
            with _span_parent_env(recorder.context()
                                  if recorder.enabled else None):
                try:
                    backend.map(_run_matrix_task, tasks,
                                on_result=on_result)
                except BaseException:
                    backend.close(cancel=True)
                    raise
                finally:
                    if owned:
                        backend.close()
            if cache is not None:
                with recorder.span("cache_store", cat="cache",
                                   entries=len(pending)):
                    for spec in pending:
                        cache.put(spec.key(), results[spec])
    recorder.flush()

    grid: dict[str, WorkloadExperiment] = {}
    for workload_name in workload_names:
        true_run = results[TrueRunSpec(workload_name, scale, configs)]
        experiment = WorkloadExperiment(
            workload_name=workload_name, true_run=true_run
        )
        for method_name in method_names:
            run = results[CellSpec(workload_name, method_name, scale,
                                   configs, cluster_jobs)]
            experiment.outcomes[method_name] = MethodOutcome(
                run=run, true_ipc=true_run.ipc
            )
        grid[workload_name] = experiment
    return grid


def run_matrix_parallel(*args, **kwargs) -> dict[str, WorkloadExperiment]:
    """Deprecated name for :func:`execute_matrix`.

    Kept as a thin shim over the executor protocol so existing callers
    keep working unchanged; new code should go through
    :func:`repro.api.run_matrix` / :func:`repro.api.submit` (the
    supported facade) or :func:`execute_matrix` directly.
    """
    warnings.warn(
        "run_matrix_parallel is deprecated; use repro.api.run_matrix / "
        "repro.api.submit, or repro.harness.execute_matrix",
        DeprecationWarning, stacklevel=2,
    )
    return execute_matrix(*args, **kwargs)
