"""Content-addressed on-disk cache for experiment results.

The evaluation grid is expensive but perfectly reproducible: every cell
is a pure function of (workload, scale, simulator configuration, warm-up
method, simulator code).  This module derives a stable key from exactly
those inputs and memoises :class:`~..sampling.TrueRunResult` /
:class:`~..sampling.SampledRunResult` pickles on disk, so re-running a
figure bench after an unrelated edit (docs, benches, analysis scripts)
is a cache hit while any edit under ``src/repro`` invalidates everything
automatically via the code-version component of the key.

Control knob: the ``REPRO_RESULT_CACHE`` environment variable.

- ``off`` / ``0`` / ``none`` / ``false`` / empty — caching disabled;
- ``on`` / ``auto`` / ``1`` — enabled at the default directory
  (``$XDG_CACHE_HOME/repro/results`` or ``~/.cache/repro/results``);
- any other value — treated as the cache directory path.

Writes are atomic (temp file + :func:`os.replace` in the same
directory), so concurrent workers and concurrent processes can share one
cache without torn entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from ..store.serialization import (
    atomic_write_pickle,
    directory_stats,
    evict_lru,
    safe_read_pickle,
    stable_payload,
)

#: Environment variable controlling the default cache location.
CACHE_ENV_VAR = "REPRO_RESULT_CACHE"

_OFF_VALUES = {"off", "0", "none", "no", "false", "disabled", ""}
_ON_VALUES = {"on", "auto", "1", "default", "yes", "true"}


def default_cache_dir() -> Path:
    """The XDG-style default location for the on-disk result cache."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "results"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file (the cache's code key).

    Any edit under ``src/repro`` changes this digest and therefore every
    cache key, guaranteeing stale results are never served after a
    simulator change; edits outside the package (benches, docs, tests)
    leave it untouched, which is what makes warm re-runs cheap.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


#: Canonical JSON-stable rendering now lives with the shared
#: serialization helpers (`repro.store.serialization.stable_payload`);
#: the historical private name stays importable for in-package callers.
_stable = stable_payload


def cache_key(
    kind: str,
    workload_name: str,
    scale,
    configs,
    method_name: str = "",
) -> str:
    """Stable content hash identifying one experiment result.

    `kind` distinguishes result families sharing the same inputs
    (``"true"`` for full-trace baselines, ``"cell"`` for sampled runs);
    `scale` and `configs` are serialised field-by-field so any change to
    regimen sizing, seeds, or microarchitecture produces a new key.
    """
    payload = json.dumps(
        {
            "kind": kind,
            "workload": workload_name,
            "scale": _stable(scale),
            "configs": _stable(configs),
            "method": method_name,
            "code": code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


@dataclass
class ResultCache:
    """A directory of pickled experiment results addressed by key.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``; the two-character
    fan-out keeps directories small for full-scale grids.  Unreadable or
    corrupt entries are treated as misses, never as errors.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached value for `key`, or None on a miss.

        A cache must never fail a run: a missing entry is a silent
        miss, and an unreadable or truncated one degrades to a miss
        with a warn-once stderr note (shared helper, same discipline as
        the checkpoint store).
        """
        value, _ = safe_read_pickle(self._path(key),
                                    category="result-cache entry")
        if value is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Atomically persist `value` under `key` (temp file + rename)."""
        atomic_write_pickle(self._path(key), value)
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def total_bytes(self) -> int:
        """Bytes on disk across every entry."""
        return directory_stats(self.root, "*/*.pkl")[1]

    def gc(self, max_bytes: int) -> list[Path]:
        """Evict oldest-mtime entries until the cache fits `max_bytes`;
        returns the removed paths."""
        return evict_lru(self.root, max_bytes, "*/*.pkl")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(
    setting: "str | Path | ResultCache | None" = None,
    *,
    default: "str | None" = None,
) -> ResultCache | None:
    """Turn a cache setting into a :class:`ResultCache` (or None).

    Precedence: an explicit `setting` wins; otherwise the
    ``REPRO_RESULT_CACHE`` environment variable; otherwise `default`.
    Recognised values are documented in the module docstring.
    """
    if isinstance(setting, ResultCache):
        return setting
    if isinstance(setting, Path):
        return ResultCache(setting)
    if setting is None:
        setting = os.environ.get(CACHE_ENV_VAR)
    if setting is None:
        setting = default
    if setting is None:
        return None
    lowered = str(setting).strip().lower()
    if lowered in _OFF_VALUES:
        return None
    if lowered in _ON_VALUES:
        return ResultCache(default_cache_dir())
    return ResultCache(Path(setting))
