"""Self-contained HTML run report (stdlib only, inline SVG).

``repro report`` fuses three observability artifacts into one file that
opens anywhere with no server and no external assets:

- the **span timeline** from a ``REPRO_SPANS`` JSONL file — one lane per
  (pid, tid), nested spans stacked by depth, phase spans colored by a
  fixed categorical palette, structural spans (run / phase_a / phase_b /
  cluster / cache) recessive gray; native SVG tooltips carry exact
  durations;
- **per-cluster audit error bars** from ``repro audit --json`` output —
  the cold-start vs sampling decomposition of each cluster's IPC error,
  mirrored around a zero baseline;
- the **benchmark trajectory** from ``benchmarks/TRAJECTORY.json`` — the
  headline metrics the reproduction is gated on.

Sections whose input is absent are skipped with a small notice, so the
report renders usefully from any subset of the three inputs.
"""

from __future__ import annotations

import html

from ..telemetry import RECORD_SPAN, build_span_tree

#: Fixed categorical palette (slot order is the CVD-safety mechanism —
#: never reassigned per chart).  Phase spans take the first four slots;
#: the audit chart's two series take slots 1 and 2.
_SERIES = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")

#: Phase-name -> palette-slot mapping for the timeline.
_PHASE_COLORS = {
    "cold_skip": _SERIES[0],
    "reconstruct": _SERIES[1],
    "hot_sim": _SERIES[2],
    "audit": _SERIES[3],
}

#: Recessive fill for structural (non-phase) spans.
_STRUCTURAL = "#c3c2b7"

_CSS = """
:root { color-scheme: light; }
body {
  margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  background: #f9f9f7; color: #0b0b0b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}
.panel {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 6px; padding: 1rem 1.25rem; margin: 1rem 0;
}
h1 { font-size: 1.4rem; }
h2 { font-size: 1.05rem; }
p.note, td.num, .lane-label { color: #52514e; }
p.missing { color: #898781; font-style: italic; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.25rem 0.9rem 0.25rem 0; }
th { color: #52514e; font-weight: 600;
     border-bottom: 1px solid #e1e0d9; }
td.num { font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 1.25rem; flex-wrap: wrap;
          font-size: 0.8rem; margin: 0.5rem 0; color: #52514e; }
.legend span.swatch {
  display: inline-block; width: 0.7rem; height: 0.7rem;
  border-radius: 2px; margin-right: 0.35rem; vertical-align: -0.05rem;
}
svg text { fill: #898781; font-size: 10px;
           font-family: system-ui, sans-serif; }
svg text.lane-label { fill: #52514e; }
"""


def _fmt_ns(ns: float) -> str:
    """Human duration for tooltips (ns -> us/ms/s as magnitude fits)."""
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} us"
    return f"{ns:.0f} ns"


def _span_color(record: dict) -> str:
    return _PHASE_COLORS.get(record["name"], _STRUCTURAL)


def _walk(nodes, depth, visit) -> None:
    for node in nodes:
        visit(node, depth)
        _walk(node["children"], depth + 1, visit)


def _timeline_svg(spans: list[dict]) -> str:
    """The lane timeline: one band per (pid, tid), nested spans stacked
    by tree depth, width proportional to duration."""
    roots = build_span_tree(spans)
    if not roots:
        return ""
    flat: list[tuple] = []
    _walk(roots, 0, lambda node, depth: flat.append((node, depth)))
    t0 = min(node["ts"] for node, _ in flat)
    t1 = max(node["ts"] + node["dur"] for node, _ in flat)
    extent = max(t1 - t0, 1)

    lanes: dict[tuple, list] = {}
    for node, depth in flat:
        lanes.setdefault((node["pid"], node["tid"]), []).append(
            (node, depth)
        )
    # Root process first (the lane owning the earliest span), workers
    # after it in pid order — matches the Perfetto export's lane naming.
    ordered = sorted(lanes, key=lambda lane: (
        min(node["ts"] for node, _ in lanes[lane]), lane
    ))

    width, left, row, gap = 960.0, 150.0, 16.0, 10.0
    plot = width - left - 10.0

    def x_of(ts: float) -> float:
        return left + (ts - t0) / extent * plot

    parts = []
    y = 18.0
    for lane in ordered:
        entries = lanes[lane]
        depth_count = max(depth for _, depth in entries) + 1
        label = f"pid {lane[0]} / tid {lane[1]}"
        parts.append(
            f'<text class="lane-label" x="4" '
            f'y="{y + row - 4:.1f}">{html.escape(label)}</text>'
        )
        for node, depth in entries:
            bar_x = x_of(node["ts"])
            bar_w = max(node["dur"] / extent * plot, 1.0)
            bar_y = y + depth * row
            tip = f"{node['name']} — {_fmt_ns(node['dur'])}"
            args = node.get("args")
            if args:
                detail = ", ".join(f"{k}={v}" for k, v in args.items())
                tip += f" ({detail})"
            parts.append(
                f'<rect x="{bar_x:.2f}" y="{bar_y:.1f}" '
                f'width="{bar_w:.2f}" height="{row - 3:.1f}" rx="2" '
                f'fill="{_span_color(node)}">'
                f'<title>{html.escape(tip)}</title></rect>'
            )
        y += depth_count * row + gap

    # One axis: elapsed run time along the bottom, hairline baseline.
    parts.append(
        f'<line x1="{left}" y1="{y:.1f}" x2="{width - 10}" '
        f'y2="{y:.1f}" stroke="#c3c2b7" stroke-width="1"/>'
    )
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        tick_x = left + fraction * plot
        parts.append(
            f'<line x1="{tick_x:.1f}" y1="{y:.1f}" x2="{tick_x:.1f}" '
            f'y2="{y + 4:.1f}" stroke="#c3c2b7" stroke-width="1"/>'
            f'<text x="{tick_x:.1f}" y="{y + 15:.1f}" '
            f'text-anchor="middle">'
            f'{html.escape(_fmt_ns(fraction * extent))}</text>'
        )
    height = y + 22.0
    return (
        f'<svg viewBox="0 0 {width:.0f} {height:.0f}" width="100%" '
        f'role="img" aria-label="span timeline">'
        + "".join(parts) + "</svg>"
    )


def _timeline_section(spans: list[dict]) -> str:
    span_records = [r for r in spans if r.get("type") == RECORD_SPAN]
    if not span_records:
        return ('<section class="panel"><h2>Span timeline</h2>'
                '<p class="missing">no spans recorded — run with '
                'REPRO_SPANS=&lt;path&gt; (or repro matrix --spans)'
                '</p></section>')
    processes = len({r["pid"] for r in span_records})
    legend = "".join(
        f'<span><span class="swatch" style="background:{color}">'
        f'</span>{html.escape(name)}</span>'
        for name, color in list(_PHASE_COLORS.items())
        + [("structural (run / phases / clusters / cache)", _STRUCTURAL)]
    )
    return (
        '<section class="panel"><h2>Span timeline</h2>'
        f'<p class="note">{len(span_records)} spans across '
        f'{processes} process(es); hover a bar for its exact '
        f'duration.</p>'
        f'<div class="legend">{legend}</div>'
        + _timeline_svg(span_records)
        + "</section>"
    )


def _audit_chart(rows: list[dict]) -> str:
    """Mirrored per-cluster bars: cold-start vs sampling IPC error."""
    width, left, height = 960.0, 60.0, 180.0
    mid = height / 2.0
    plot = width - left - 10.0
    peak = max(
        (abs(row.get(name) or 0.0)
         for row in rows for name in ("cold_start_error",
                                      "sampling_error")),
        default=0.0,
    ) or 1e-9
    scale = (mid - 24.0) / peak
    slot = plot / max(len(rows), 1)
    bar = max(min((slot - 6.0) / 2.0, 16.0), 1.5)

    parts = [
        # Recessive zero baseline (the one axis) + hairline peak grid.
        f'<line x1="{left}" y1="{mid}" x2="{width - 10}" y2="{mid}" '
        f'stroke="#c3c2b7" stroke-width="1"/>',
        f'<text x="{left - 6}" y="{mid + 3}" text-anchor="end">0</text>',
    ]
    for sign in (+1, -1):
        grid_y = mid - sign * peak * scale
        parts.append(
            f'<line x1="{left}" y1="{grid_y:.1f}" x2="{width - 10}" '
            f'y2="{grid_y:.1f}" stroke="#e1e0d9" stroke-width="1"/>'
            f'<text x="{left - 6}" y="{grid_y + 3:.1f}" '
            f'text-anchor="end">{sign * peak:+.4f}</text>'
        )
    for position, row in enumerate(rows):
        base_x = left + position * slot + slot / 2.0
        for offset, (name, color) in enumerate(
            (("cold_start_error", _SERIES[0]),
             ("sampling_error", _SERIES[1]))
        ):
            value = row.get(name) or 0.0
            bar_h = abs(value) * scale
            bar_y = mid - bar_h if value >= 0 else mid
            bar_x = base_x + (offset - 1) * bar + offset * 2.0
            tip = (f"cluster {row.get('cluster')}: {name} = "
                   f"{value:+.5f} IPC")
            parts.append(
                f'<rect x="{bar_x:.2f}" y="{bar_y:.2f}" '
                f'width="{bar:.2f}" height="{max(bar_h, 0.5):.2f}" '
                f'rx="1.5" fill="{color}">'
                f'<title>{html.escape(tip)}</title></rect>'
            )
        if len(rows) <= 32:
            parts.append(
                f'<text x="{base_x:.1f}" y="{height - 4:.1f}" '
                f'text-anchor="middle">{row.get("cluster")}</text>'
            )
    return (
        f'<svg viewBox="0 0 {width:.0f} {height:.0f}" width="100%" '
        f'role="img" aria-label="per-cluster error decomposition">'
        + "".join(parts) + "</svg>"
    )


def _fmt_bias(value) -> str:
    return "-" if value is None else f"{value:+.5f}"


def _audit_section(audit: dict | None) -> str:
    header = '<section class="panel"><h2>Accuracy audit</h2>'
    if not audit or not audit.get("clusters"):
        return (header + '<p class="missing">no audit data — generate '
                'with repro audit &lt;workload&gt; --json '
                '&lt;path&gt;</p></section>')
    legend = (
        f'<div class="legend">'
        f'<span><span class="swatch" style="background:{_SERIES[0]}">'
        f'</span>cold-start error</span>'
        f'<span><span class="swatch" style="background:{_SERIES[1]}">'
        f'</span>sampling error</span></div>'
    )
    groups: dict[tuple, list] = {}
    for row in audit["clusters"]:
        groups.setdefault((row.get("workload"), row.get("method")),
                          []).append(row)
    charts = []
    for (workload, method), rows in sorted(groups.items()):
        rows.sort(key=lambda row: row.get("cluster", 0))
        charts.append(
            f'<h2>{html.escape(str(workload))} × '
            f'{html.escape(str(method))}</h2>'
            + _audit_chart(rows)
        )
    summary_rows = "".join(
        '<tr>'
        f'<td>{html.escape(str(entry.get("workload")))}</td>'
        f'<td>{html.escape(str(entry.get("method")))}</td>'
        f'<td class="num">{entry.get("clusters")}</td>'
        f'<td class="num">{_fmt_bias(entry.get("cold_start_bias"))}</td>'
        f'<td class="num">{_fmt_bias(entry.get("sampling_bias"))}</td>'
        '</tr>'
        for entry in audit.get("summary", [])
    )
    table = (
        '<table><tr><th>workload</th><th>method</th><th>clusters</th>'
        '<th>cold-start bias</th><th>sampling bias</th></tr>'
        + summary_rows + "</table>"
    ) if summary_rows else ""
    return (
        header
        + '<p class="note">Per-cluster IPC error split into its '
        'cold-start component (reconstruction imperfection) and its '
        'sampling component (cluster placement), mirrored around '
        'zero.</p>' + legend + table + "".join(charts) + "</section>"
    )


def _trajectory_section(trajectory: dict | None) -> str:
    header = '<section class="panel"><h2>Benchmark trajectory</h2>'
    if not trajectory or not trajectory.get("benches"):
        return (header + '<p class="missing">no trajectory data — see '
                'benchmarks/TRAJECTORY.json</p></section>')
    rows = []
    for tag, bench in sorted(trajectory["benches"].items()):
        bench_name = str(bench.get("bench", ""))
        for name, value in sorted(bench.get("metrics", {}).items()):
            if isinstance(value, bool):
                shown = "yes" if value else "no"
            elif isinstance(value, float):
                shown = f"{value:g}"
            else:
                shown = str(value)
            rows.append(
                '<tr>'
                f'<td>{html.escape(tag)}</td>'
                f'<td>{html.escape(bench_name)}</td>'
                f'<td>{html.escape(name)}</td>'
                f'<td class="num">{html.escape(shown)}</td>'
                '</tr>'
            )
    return (
        header
        + '<p class="note">Gated headline metrics accumulated across '
        'the reproduction&#x27;s perf PRs (benchmarks/trajectory.py).'
        '</p><table><tr><th>tag</th><th>bench</th><th>metric</th>'
        '<th>value</th></tr>' + "".join(rows) + "</table></section>"
    )


def render_report(spans: list[dict], audit: dict | None = None,
                  trajectory: dict | None = None,
                  title: str = "repro run report") -> str:
    """The full self-contained HTML document (no external assets)."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        + _timeline_section(spans)
        + _audit_section(audit)
        + _trajectory_section(trajectory)
        + "</body></html>\n"
    )
