"""One validated options object for the whole ``REPRO_*`` surface.

Before this module, a dozen environment variables were read — and
error-checked — at a dozen different depths of the stack: the scale in
the harness, cluster jobs in the pipeline, compaction in the core,
telemetry switches in four telemetry modules.  A typo surfaced wherever
the first consumer happened to live, sometimes deep inside a worker
process.  :class:`RunOptions` consolidates the reads: entry points (the
CLI's ``main``, the simulation service) construct it **once**, every
value is validated up front with a readable ``ValueError`` naming the
offending variable (the CLI maps it to exit status 2), and the object
is threaded explicitly from there.

Environment variables remain the override mechanism — nothing changes
for users — and the engine-internal readers
(:func:`~repro.telemetry.collection_enabled` and friends) keep working:
:meth:`RunOptions.apply` exports the validated values back into the
environment for the dynamic extent of a run, which is how the service
pins per-job settings without re-plumbing every constructor.

The consolidated variables::

    REPRO_EXPERIMENT_SCALE   experiment tier (ci/bench/default/full)
    REPRO_MATRIX_JOBS        matrix-cell workers (0 = one per CPU)
    REPRO_CLUSTER_JOBS       Phase B shard workers (0 = one per CPU)
    REPRO_EXECUTOR           fan-out backend name (see `repro executors`)
    REPRO_RESULT_CACHE       result cache: off/on/<directory>
    REPRO_CHECKPOINT_STORE   Phase A checkpoint store: off/on/<directory>
    REPRO_TRACE              per-cluster JSONL trace path
    REPRO_TELEMETRY          in-memory telemetry collection switch
    REPRO_SPANS              span recording: off/1/<jsonl path>
    REPRO_EVENTS             live progress event JSONL path
    REPRO_AUDIT              accuracy-audit probes switch
    REPRO_LOG_COMPACTION     skip-log source: auto/raw/compacted
    REPRO_BATCH_CORE         vectorized hot-path core switch
    REPRO_RUN_ID             correlation id stamped on telemetry output
    REPRO_SERVICE_LOG        structured service log JSONL path

(``REPRO_SPAN_PARENT`` is deliberately absent: it is cross-process
plumbing owned by the executor layer, not user configuration.)
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields, replace

#: Truthy/falsy spellings shared by the boolean switches.  The engine's
#: own readers treat "anything not in the off-set" as on; validation
#: here is stricter so ``REPRO_AUDIT=ture`` fails loudly instead of
#: silently enabling audit probes.
_OFF_VALUES = frozenset({"", "0", "off", "none", "no", "false", "disabled"})
_ON_VALUES = frozenset({"1", "on", "yes", "true", "enabled"})

_COMPACTION_VALUES = frozenset({"auto", "raw", "compacted",
                                "off", "0", "false", "no"})


def _parse_bool(name: str, raw: str, *, default: bool) -> bool:
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return False if raw.strip() else default
    if value in _ON_VALUES:
        return True
    raise ValueError(
        f"{name} must be a boolean switch "
        f"({'/'.join(sorted(_ON_VALUES))} or "
        f"{'/'.join(sorted(v for v in _OFF_VALUES if v))}), got {raw!r}"
    )


def _parse_jobs(name: str, raw) -> "int | None":
    if raw is None:
        return None
    if isinstance(raw, int):
        value = raw
    else:
        text = str(raw).strip()
        if not text:
            return None
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"{name} must be an integer (got {raw!r})") from None
    if value < 0:
        raise ValueError(
            f"{name} must be >= 0 (0 = one per CPU), got {value}")
    return value


@dataclass(frozen=True)
class RunOptions:
    """Validated run configuration, constructed once at an entry point.

    ``None`` for the job counts means "not configured" (callers apply
    their own defaults: all CPUs for matrix cells, serial for cluster
    shards); ``0`` means one worker per CPU, resolved by
    :meth:`resolved_matrix_jobs` / :meth:`resolved_cluster_jobs`.
    """

    scale: str = "bench"
    matrix_jobs: "int | None" = None
    cluster_jobs: "int | None" = None
    executor: "str | None" = None
    result_cache: "str | None" = None
    checkpoint_store: "str | None" = None
    trace: "str | None" = None
    telemetry: bool = False
    spans: "str | None" = None
    events: "str | None" = None
    audit: bool = False
    log_compaction: str = "auto"
    batch_core: bool = True
    run_id: "str | None" = None
    service_log: "str | None" = None

    def __post_init__(self) -> None:
        from .experiment import SCALES

        if self.scale not in SCALES:
            known = ", ".join(sorted(SCALES))
            raise ValueError(
                f"REPRO_EXPERIMENT_SCALE={self.scale!r} unknown; "
                f"known: {known}")
        _parse_jobs("REPRO_MATRIX_JOBS", self.matrix_jobs)
        _parse_jobs("REPRO_CLUSTER_JOBS", self.cluster_jobs)
        if self.executor is not None:
            from .executor import executor_factory

            executor_factory(self.executor)  # readable ValueError
        if self.log_compaction.strip().lower() not in _COMPACTION_VALUES:
            raise ValueError(
                f"REPRO_LOG_COMPACTION must be one of auto, raw, "
                f"compacted, got {self.log_compaction!r}")
        if self.run_id is not None:
            from ..telemetry.runid import validate_run_id

            validate_run_id(self.run_id)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_env(cls, **overrides) -> "RunOptions":
        """Read and validate every ``REPRO_*`` variable, once.

        `overrides` (field name -> value) win over the environment —
        the CLI threads its ``--scale`` / ``--jobs`` / ``--executor``
        flags through here so flags and env vars share one validation
        path.  An override of ``None`` means "no opinion" (keep the
        environment's value).
        """

        def env(name: str) -> str:
            return os.environ.get(name, "").strip()

        values = {
            "scale": env("REPRO_EXPERIMENT_SCALE") or "bench",
            "matrix_jobs": _parse_jobs("REPRO_MATRIX_JOBS",
                                       env("REPRO_MATRIX_JOBS")),
            "cluster_jobs": _parse_jobs("REPRO_CLUSTER_JOBS",
                                        env("REPRO_CLUSTER_JOBS")),
            "executor": env("REPRO_EXECUTOR") or None,
            "result_cache": env("REPRO_RESULT_CACHE") or None,
            "checkpoint_store": env("REPRO_CHECKPOINT_STORE") or None,
            "trace": env("REPRO_TRACE") or None,
            "telemetry": _parse_bool("REPRO_TELEMETRY",
                                     env("REPRO_TELEMETRY"),
                                     default=False),
            "spans": env("REPRO_SPANS") or None,
            "events": env("REPRO_EVENTS") or None,
            "audit": _parse_bool("REPRO_AUDIT", env("REPRO_AUDIT"),
                                 default=False),
            "log_compaction": (env("REPRO_LOG_COMPACTION") or "auto"),
            # "scalar" is the batch core's historical off-spelling.
            "batch_core": (False
                           if env("REPRO_BATCH_CORE").lower() == "scalar"
                           else _parse_bool("REPRO_BATCH_CORE",
                                            env("REPRO_BATCH_CORE"),
                                            default=True)),
            "run_id": env("REPRO_RUN_ID") or None,
            "service_log": env("REPRO_SERVICE_LOG") or None,
        }
        for name, value in overrides.items():
            if value is not None:
                values[name] = value
        return cls(**values)

    def with_overrides(self, **overrides) -> "RunOptions":
        """A copy with non-``None`` overrides applied (re-validated)."""
        concrete = {name: value for name, value in overrides.items()
                    if value is not None}
        return replace(self, **concrete) if concrete else self

    # -- resolution helpers ------------------------------------------------

    def scale_obj(self):
        """The :class:`~.experiment.ExperimentScale` behind ``scale``."""
        from .experiment import SCALES

        return SCALES[self.scale]

    def cache(self, setting=None, *, default: "str | None" = None):
        """A :class:`~.cache.ResultCache` (or None) for this run."""
        from .cache import resolve_cache

        if setting is None:
            setting = self.result_cache
        return resolve_cache(setting, default=default)

    def store(self, setting=None, *, default: "str | None" = None):
        """A :class:`~repro.store.CheckpointStore` (or None) for this run."""
        from ..store import resolve_store

        if setting is None:
            setting = self.checkpoint_store
        return resolve_store(setting, default=default)

    def resolved_matrix_jobs(self) -> int:
        """Matrix-cell workers: configured value, else one per CPU."""
        jobs = self.matrix_jobs
        if jobs is None or jobs == 0:
            return os.cpu_count() or 1
        return jobs

    def resolved_cluster_jobs(self) -> int:
        """Phase B shard workers: configured value, else serial."""
        jobs = self.cluster_jobs
        if jobs is None:
            return 1
        if jobs == 0:
            return os.cpu_count() or 1
        return jobs

    # -- environment round-trip --------------------------------------------

    def environ(self) -> dict[str, str]:
        """The validated values as their environment-variable spelling."""
        mapping = {
            "REPRO_EXPERIMENT_SCALE": self.scale,
            "REPRO_MATRIX_JOBS": ("" if self.matrix_jobs is None
                                  else str(self.matrix_jobs)),
            "REPRO_CLUSTER_JOBS": ("" if self.cluster_jobs is None
                                   else str(self.cluster_jobs)),
            "REPRO_EXECUTOR": self.executor or "",
            "REPRO_RESULT_CACHE": self.result_cache or "",
            "REPRO_CHECKPOINT_STORE": self.checkpoint_store or "",
            "REPRO_TRACE": self.trace or "",
            "REPRO_TELEMETRY": "1" if self.telemetry else "",
            "REPRO_SPANS": self.spans or "",
            "REPRO_EVENTS": self.events or "",
            "REPRO_AUDIT": "1" if self.audit else "",
            "REPRO_LOG_COMPACTION": ("" if self.log_compaction == "auto"
                                     else self.log_compaction),
            "REPRO_BATCH_CORE": "" if self.batch_core else "0",
            "REPRO_RUN_ID": self.run_id or "",
            "REPRO_SERVICE_LOG": self.service_log or "",
        }
        return {name: value for name, value in mapping.items() if value}

    @contextlib.contextmanager
    def apply(self):
        """Export the validated values into the environment for a block.

        The bridge to the engine's internal env readers (and to worker
        processes, which inherit the environment at launch): the service
        wraps each job's execution in ``with options.apply():`` so the
        job runs under exactly the validated configuration, and the
        previous environment is restored afterwards — including
        *removing* variables the options leave unset, so a stale
        ``REPRO_AUDIT`` from the parent shell cannot leak into a job
        that did not ask for it.
        """
        owned = [
            "REPRO_EXPERIMENT_SCALE", "REPRO_MATRIX_JOBS",
            "REPRO_CLUSTER_JOBS", "REPRO_EXECUTOR", "REPRO_RESULT_CACHE",
            "REPRO_CHECKPOINT_STORE",
            "REPRO_TRACE", "REPRO_TELEMETRY", "REPRO_SPANS",
            "REPRO_EVENTS", "REPRO_AUDIT", "REPRO_LOG_COMPACTION",
            "REPRO_BATCH_CORE", "REPRO_RUN_ID", "REPRO_SERVICE_LOG",
        ]
        saved = {name: os.environ.get(name) for name in owned}
        target = self.environ()
        try:
            for name in owned:
                if name in target:
                    os.environ[name] = target[name]
                else:
                    os.environ.pop(name, None)
            yield self
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    def describe(self) -> list[tuple[str, str]]:
        """``(field, value)`` rows for status displays."""
        return [(f.name, repr(getattr(self, f.name))) for f in fields(self)]


def options_from_env(**overrides) -> RunOptions:
    """Module-level convenience for :meth:`RunOptions.from_env`."""
    return RunOptions.from_env(**overrides)
