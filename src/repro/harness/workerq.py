"""Spooled file-queue worker: ``python -m repro.harness.workerq SPOOL``.

The wire format behind the ``subprocess-queue`` executor backend (see
:mod:`~.executor`).  A *spool* is a plain directory:

- ``task-<index>.pkl`` — one pickled ``(worker, task)`` pair per task,
  written atomically (temp file + rename) by the parent before any
  worker launches;
- ``claim-<index>-<pid>.pkl`` — a task a worker has claimed, via
  ``os.rename`` (atomic on POSIX, so two workers can never execute the
  same task);
- ``result-<index>.pkl`` — the pickled outcome, ``("ok", value)`` or
  ``("error", exception)``, written atomically when the task finishes.

A worker process loops: claim any task file, execute it, write the
result, repeat; when no task files remain it exits 0.  Everything it
needs beyond the directory rides the inherited environment
(``REPRO_SPAN_PARENT``, telemetry flags, ``PYTHONPATH``), which is
exactly the contract a remote job scheduler can reproduce by shipping
the spool directory and the environment to another machine.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile


def _atomic_write(directory: str, name: str, payload: bytes) -> None:
    handle, temp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(temp, os.path.join(directory, name))
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def spool_task(spool: str, index: int, worker, task) -> None:
    """Write one ``task-<index>.pkl`` file atomically."""
    _atomic_write(spool, f"task-{index:06d}.pkl",
                  pickle.dumps((worker, task),
                               protocol=pickle.HIGHEST_PROTOCOL))


def write_result(spool: str, index: int, status: str, payload) -> None:
    """Write one ``result-<index>.pkl`` outcome atomically.

    An unpicklable payload (a result or exception holding live state)
    degrades to a picklable stand-in rather than wedging the queue.
    """
    try:
        blob = pickle.dumps((status, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        if status == "ok":
            status, payload = "error", RuntimeError(
                f"task {index} produced an unpicklable result "
                f"({type(payload).__name__})")
        else:
            payload = RuntimeError(
                f"task {index} raised an unpicklable "
                f"{type(payload).__name__}: {payload!r}")
        blob = pickle.dumps((status, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
    _atomic_write(spool, f"result-{index:06d}.pkl", blob)


def drain_results(spool: str, seen: "set[int]"):
    """Yield ``(index, (status, payload))`` for new result files."""
    try:
        names = os.listdir(spool)
    except FileNotFoundError:
        return
    for name in sorted(names):
        if not (name.startswith("result-") and name.endswith(".pkl")):
            continue
        index = int(name[len("result-"):-len(".pkl")])
        if index in seen:
            continue
        with open(os.path.join(spool, name), "rb") as stream:
            yield index, pickle.load(stream)


def claim_next(spool: str) -> "tuple[int, str] | None":
    """Atomically claim one task file; None when the queue is empty."""
    pid = os.getpid()
    try:
        names = sorted(os.listdir(spool))
    except FileNotFoundError:
        return None
    for name in names:
        if not (name.startswith("task-") and name.endswith(".pkl")):
            continue
        index = int(name[len("task-"):-len(".pkl")])
        claimed = os.path.join(spool, f"claim-{index:06d}-{pid}.pkl")
        try:
            os.rename(os.path.join(spool, name), claimed)
        except OSError:
            continue  # another worker won the rename race
        return index, claimed
    return None


def serve(spool: str) -> int:
    """Worker main loop: claim, execute, write result, until drained."""
    while True:
        claim = claim_next(spool)
        if claim is None:
            return 0
        index, path = claim
        try:
            with open(path, "rb") as stream:
                worker, task = pickle.load(stream)
            result = worker(task)
        except BaseException as exc:  # ship the failure, keep serving
            write_result(spool, index, "error", exc)
        else:
            write_result(spool, index, "ok", result)


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.harness.workerq SPOOL_DIR",
              file=sys.stderr)
        return 2
    return serve(argv[0])


if __name__ == "__main__":
    sys.exit(main())
