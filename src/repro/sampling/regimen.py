"""Sampling regimens: how many clusters, how large, where they land.

A regimen "simply defines the number of clusters and the size of the
clusters for a particular workload" (paper §1).  Cluster starting
positions are drawn uniformly at random (paper §5) and — as in the paper —
the *same* starting positions are reused for every warm-up method so the
sampling bias is held constant and only non-sampling bias varies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SamplingRegimen:
    """A cluster-sampling design for one workload.

    Attributes
    ----------
    total_instructions:
        Population size: the instruction stream [0, total_instructions).
    num_clusters:
        Number of sampling units.
    cluster_size:
        Contiguous instructions per sampling unit.
    seed:
        Seed for the uniform placement of cluster starts.
    """

    total_instructions: int
    num_clusters: int
    cluster_size: int
    seed: int = 12345
    #: "uniform" draws cluster positions uniformly over the population
    #: (the paper's design); "stratified" places one cluster at a random
    #: offset inside each of `num_clusters` equal strata (paper §2's
    #: stratified sampling — lower variance when IPC drifts slowly).
    placement: str = "uniform"

    def __post_init__(self) -> None:
        if self.total_instructions <= 0:
            raise ValueError("total_instructions must be positive")
        if self.num_clusters <= 0 or self.cluster_size <= 0:
            raise ValueError("clusters and cluster size must be positive")
        if self.num_clusters * self.cluster_size * 2 > self.total_instructions:
            raise ValueError(
                "sample too large: clusters must cover at most half of the "
                "population for non-overlapping placement to be practical"
            )
        if self.placement not in ("uniform", "stratified"):
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                "use 'uniform' or 'stratified'"
            )

    @property
    def sampled_instructions(self) -> int:
        """Instructions executed in detail (hot)."""
        return self.num_clusters * self.cluster_size

    @property
    def sampling_fraction(self) -> float:
        return self.sampled_instructions / self.total_instructions

    def cluster_starts(self) -> list[int]:
        """Random, non-overlapping, sorted cluster start offsets.

        Uniform placement uses the classical spacing construction: draw
        the free space between clusters from a uniform simplex, which
        yields exact uniform placement of non-overlapping intervals.
        Stratified placement draws one uniform offset per equal stratum.
        """
        if self.placement == "stratified":
            return self._stratified_starts()
        rng = np.random.default_rng(self.seed)
        free = self.total_instructions - self.sampled_instructions
        # num_clusters + 1 gaps (before first, between, after last) summing
        # to `free`: order statistics of uniform draws give the split.
        cuts = np.sort(rng.integers(0, free + 1, size=self.num_clusters))
        starts = []
        position = 0
        previous_cut = 0
        for cluster_index in range(self.num_clusters):
            gap = int(cuts[cluster_index]) - previous_cut
            previous_cut = int(cuts[cluster_index])
            position += gap
            starts.append(position)
            position += self.cluster_size
        return starts

    def _stratified_starts(self) -> list[int]:
        rng = np.random.default_rng(self.seed)
        # The constructor guarantees total >= 2 * n * cluster_size, so a
        # stratum is always at least twice the cluster size.
        stratum_length = self.total_instructions // self.num_clusters
        starts = []
        for stratum in range(self.num_clusters):
            slack = stratum_length - self.cluster_size
            offset = int(rng.integers(0, slack + 1)) if slack else 0
            starts.append(stratum * stratum_length + offset)
        return starts

    def describe(self) -> str:
        return (
            f"{self.num_clusters} clusters x {self.cluster_size} "
            f"instructions over {self.total_instructions} "
            f"({100 * self.sampling_fraction:.2f}% sampled)"
        )
