"""Statistical cluster sampling: regimens, estimators, controller."""

from .regimen import SamplingRegimen
from .statistics import (
    SampleEstimate,
    cluster_estimate,
    relative_error,
    Z_95,
)
from .design import (
    RegimenRecommendation,
    clusters_for_error,
    pilot_study,
    recommend_regimen,
)
from .controller import (
    SampledSimulator,
    SampledRunResult,
    TrueRunResult,
    SimulationStack,
    SimulatorConfigs,
    build_simulation,
    measure_true_ipc,
)
from .pipeline import (
    CLUSTER_JOBS_ENV_VAR,
    ClusterShard,
    ShardResult,
    cluster_geometry,
    resolve_cluster_jobs,
)

__all__ = [
    "SamplingRegimen",
    "SampleEstimate",
    "cluster_estimate",
    "relative_error",
    "Z_95",
    "RegimenRecommendation",
    "clusters_for_error",
    "pilot_study",
    "recommend_regimen",
    "SampledSimulator",
    "SampledRunResult",
    "TrueRunResult",
    "SimulationStack",
    "SimulatorConfigs",
    "build_simulation",
    "measure_true_ipc",
    "CLUSTER_JOBS_ENV_VAR",
    "ClusterShard",
    "ShardResult",
    "cluster_geometry",
    "resolve_cluster_jobs",
]
