"""Statistical cluster sampling: regimens, estimators, controller."""

from .regimen import SamplingRegimen
from .statistics import (
    SampleEstimate,
    cluster_estimate,
    relative_error,
    Z_95,
)
from .design import (
    RegimenRecommendation,
    clusters_for_error,
    pilot_study,
    recommend_regimen,
)
from .controller import (
    SampledSimulator,
    SampledRunResult,
    TrueRunResult,
    SimulatorConfigs,
    measure_true_ipc,
)

__all__ = [
    "SamplingRegimen",
    "SampleEstimate",
    "cluster_estimate",
    "relative_error",
    "Z_95",
    "RegimenRecommendation",
    "clusters_for_error",
    "pilot_study",
    "recommend_regimen",
    "SampledSimulator",
    "SampledRunResult",
    "TrueRunResult",
    "SimulatorConfigs",
    "measure_true_ipc",
]
