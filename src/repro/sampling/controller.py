"""The sampled-simulation controller: hot, cold, and warm phases.

Execution follows the paper's Figure 1: for each cluster of the regimen,
the controller (1) hands the inter-cluster gap to the warm-up method —
which runs cold functional simulation plus whatever state repair it
implements — and (2) runs the detailed timing simulator over the cluster,
collecting its IPC as one sampling unit.  Cache and branch-predictor state
flow continuously through the whole run; the architectural state is always
exact because every skipped instruction is functionally executed.

This module owns the run-level data model (results, configurations) and
the shared simulator factory; the execution loops themselves live in
:mod:`repro.sampling.pipeline`, which offers two strategies behind
:meth:`SampledSimulator.run` — the classic continuous serial walk and
the two-phase cluster-sharded pipeline (``REPRO_CLUSTER_JOBS`` /
``cluster_jobs``).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from ..branch import BranchPredictor, PredictorConfig, paper_predictor_config
from ..cache import HierarchyConfig, MemoryHierarchy, paper_hierarchy_config
from ..telemetry import telemetry_from_env
from ..timing import CoreConfig, TimingSimulator, paper_core_config
from ..warmup.base import WarmupCost, WarmupMethod
from ..workloads import Workload
from .regimen import SamplingRegimen
from .statistics import SampleEstimate, relative_error


@dataclass
class SampledRunResult:
    """Everything measured from one (workload, warm-up method) run."""

    workload_name: str
    method_name: str
    regimen: SamplingRegimen
    cluster_ipcs: list[float]
    estimate: SampleEstimate
    cost: WarmupCost
    wall_seconds: float
    extra: dict = field(default_factory=dict)

    def relative_error(self, true_ipc: float) -> float:
        return relative_error(true_ipc, self.estimate.mean)

    def passes_confidence_test(self, true_ipc: float) -> bool:
        return self.estimate.contains(true_ipc)

    def work_units(self) -> float:
        return self.cost.work_units()


@dataclass
class TrueRunResult:
    """Full-trace detailed simulation (the paper's "true IPC" baseline)."""

    workload_name: str
    instructions: int
    cycles: int
    wall_seconds: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class SimulatorConfigs:
    """The microarchitecture under simulation (shared by all methods).

    Frozen (hence hashable and safely picklable) so a configuration can
    key the harness's true-run and on-disk result caches and cross
    process boundaries in the parallel experiment engine unchanged.
    """

    hierarchy: HierarchyConfig = field(default_factory=paper_hierarchy_config)
    predictor: PredictorConfig = field(default_factory=paper_predictor_config)
    core: CoreConfig = field(default_factory=paper_core_config)


def steady_state_prefix(machine, hierarchy, predictor, count: int) -> None:
    """Run `count` instructions with full functional warming.

    Used to start measurement from steady state: the paper's 6-billion-
    instruction populations make the initial cold-start region negligible,
    but at laptop scale it would contaminate the true-IPC baseline.  Both
    the full-trace run and every sampled run execute the same warmed
    prefix before instruction 0 of the measured population, so all
    simulators start from identical state (see DESIGN.md §2).
    """
    if count <= 0:
        return
    machine.run(
        count,
        mem_hook=lambda pc, np_, a, w: hierarchy.warm_access(a, w, False),
        branch_hook=lambda pc, np_, inst, taken: predictor.update(
            pc, inst, taken, np_),
        ifetch_hook=lambda a: hierarchy.warm_access(a, False, True),
        ifetch_block_bytes=hierarchy.l1i.config.line_bytes,
    )


@dataclass
class SimulationStack:
    """The per-run simulator quartet over one workload.

    Built by :func:`build_simulation` — the single construction path
    shared by the serial controller loop, the true-IPC baseline, the
    audit reference trajectory, and the two-phase pipeline's shard
    workers, so every execution path simulates exactly the same
    microarchitecture wiring.
    """

    machine: object            # FunctionalMachine
    hierarchy: MemoryHierarchy
    predictor: BranchPredictor
    timing: TimingSimulator

    def warm_prefix(self, count: int) -> None:
        """Functionally warm `count` instructions (steady-state prefix)."""
        steady_state_prefix(self.machine, self.hierarchy, self.predictor,
                            count)


def build_simulation(
    workload: Workload,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
) -> SimulationStack:
    """Construct a fresh machine + hierarchy + predictor + timing stack.

    `warmup_prefix` > 0 additionally runs the steady-state prefix; paths
    that need the prefix under their own phase timer (or skip it, like
    shard workers restoring a checkpoint) pass 0 and call
    :meth:`SimulationStack.warm_prefix` themselves.
    """
    configs = configs if configs is not None else SimulatorConfigs()
    machine = workload.make_machine()
    hierarchy = MemoryHierarchy(configs.hierarchy)
    predictor = BranchPredictor(configs.predictor)
    timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
    stack = SimulationStack(machine=machine, hierarchy=hierarchy,
                            predictor=predictor, timing=timing)
    if warmup_prefix:
        stack.warm_prefix(warmup_prefix)
    return stack


class SampledSimulator:
    """Runs one workload under a sampling regimen with a warm-up method.

    The same regimen (hence the same uniformly random cluster starting
    positions) is used for every method, holding sampling bias constant —
    the comparison then isolates non-sampling bias, as in the paper.
    """

    def __init__(
        self,
        workload: Workload,
        regimen: SamplingRegimen,
        configs: SimulatorConfigs | None = None,
        warmup_prefix: int = 0,
        detail_ramp: int = 0,
        telemetry=None,
        cluster_jobs: int | None = None,
    ) -> None:
        self.workload = workload
        self.regimen = regimen
        self.configs = configs if configs is not None else SimulatorConfigs()
        self.warmup_prefix = warmup_prefix
        #: SMARTS-style detailed warming: each cluster simulates this many
        #: extra leading instructions in full detail but excludes them from
        #: the measured IPC, hiding the empty-pipeline restart transient.
        self.detail_ramp = detail_ramp
        #: Telemetry source: ``None`` resolves ``REPRO_TRACE`` /
        #: ``REPRO_TELEMETRY`` per run; a zero-argument callable (e.g. the
        #: :class:`~repro.telemetry.Telemetry` class itself) yields a
        #: fresh session per run, so snapshots stay per-run even when the
        #: same simulator runs several methods; a session instance is
        #: shared across runs as-is (the caller owns its lifecycle).
        self.telemetry = telemetry
        #: Shard workers for the two-phase pipeline: ``None`` resolves
        #: ``REPRO_CLUSTER_JOBS`` per run (unset means 1 = serial), ``0``
        #: means one worker per CPU, ``1`` forces the serial loop.  Only
        #: :attr:`~repro.warmup.base.WarmupMethod.shardable` methods fan
        #: out; others fall back to serial with a notice.
        self.cluster_jobs = cluster_jobs

    def _telemetry_session(self):
        source = self.telemetry
        if source is None:
            return telemetry_from_env()
        if callable(source):
            return source()
        return source

    def run(self, method: WarmupMethod) -> SampledRunResult:
        """Execute the full sampled simulation with `method`.

        Dispatches between the two execution strategies in
        :mod:`repro.sampling.pipeline`: the continuous serial walk
        (reference semantics) and, for ``cluster_jobs > 1`` with a
        :attr:`~repro.warmup.base.WarmupMethod.shardable` method, the
        two-phase cold-scan + hot-shard pipeline.  A non-shardable
        method with parallelism requested falls back to serial with a
        notice on stderr rather than failing the run.
        """
        # Imported lazily: pipeline imports this module at top level
        # (results, factory), so the dependency must point one way only
        # at import time.
        from .pipeline import resolve_cluster_jobs, run_serial, run_sharded

        jobs = resolve_cluster_jobs(self.cluster_jobs)
        if jobs > 1:
            if method.shardable:
                return run_sharded(self, method, jobs)
            print(
                f"note: warm-up method {method.name!r} warms continuously "
                f"across cluster boundaries and cannot be sharded; "
                f"running serially (cluster-jobs={jobs} ignored)",
                file=sys.stderr,
            )
        return run_serial(self, method)


def measure_true_ipc(
    workload: Workload,
    total_instructions: int,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
) -> TrueRunResult:
    """Detailed simulation of the full instruction stream (no sampling).

    `warmup_prefix` functionally warms that many instructions before
    measurement starts, so the baseline begins from the same steady state
    as sampled runs constructed with the same prefix.
    """
    stack = build_simulation(workload, configs, warmup_prefix=warmup_prefix)
    start_time = time.perf_counter()
    result = stack.timing.run(total_instructions)
    wall_seconds = time.perf_counter() - start_time
    return TrueRunResult(
        workload_name=workload.name,
        instructions=result.instructions,
        cycles=result.cycles,
        wall_seconds=wall_seconds,
    )
