"""The sampled-simulation controller: hot, cold, and warm phases.

Execution follows the paper's Figure 1: for each cluster of the regimen,
the controller (1) hands the inter-cluster gap to the warm-up method —
which runs cold functional simulation plus whatever state repair it
implements — and (2) runs the detailed timing simulator over the cluster,
collecting its IPC as one sampling unit.  Cache and branch-predictor state
flow continuously through the whole run; the architectural state is always
exact because every skipped instruction is functionally executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..branch import BranchPredictor, PredictorConfig, paper_predictor_config
from ..cache import HierarchyConfig, MemoryHierarchy, paper_hierarchy_config
from ..telemetry import (
    PHASE_COLD_SKIP,
    PHASE_HOT_SIM,
    PHASE_RECONSTRUCT,
    audit_enabled,
    telemetry_from_env,
)
from ..timing import CoreConfig, TimingSimulator, paper_core_config
from ..warmup.base import SimulationContext, WarmupCost, WarmupMethod
from ..workloads import Workload
from .regimen import SamplingRegimen
from .statistics import SampleEstimate, cluster_estimate, relative_error


@dataclass
class SampledRunResult:
    """Everything measured from one (workload, warm-up method) run."""

    workload_name: str
    method_name: str
    regimen: SamplingRegimen
    cluster_ipcs: list[float]
    estimate: SampleEstimate
    cost: WarmupCost
    wall_seconds: float
    extra: dict = field(default_factory=dict)

    def relative_error(self, true_ipc: float) -> float:
        return relative_error(true_ipc, self.estimate.mean)

    def passes_confidence_test(self, true_ipc: float) -> bool:
        return self.estimate.contains(true_ipc)

    def work_units(self) -> float:
        return self.cost.work_units()


@dataclass
class TrueRunResult:
    """Full-trace detailed simulation (the paper's "true IPC" baseline)."""

    workload_name: str
    instructions: int
    cycles: int
    wall_seconds: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class SimulatorConfigs:
    """The microarchitecture under simulation (shared by all methods).

    Frozen (hence hashable and safely picklable) so a configuration can
    key the harness's true-run and on-disk result caches and cross
    process boundaries in the parallel experiment engine unchanged.
    """

    hierarchy: HierarchyConfig = field(default_factory=paper_hierarchy_config)
    predictor: PredictorConfig = field(default_factory=paper_predictor_config)
    core: CoreConfig = field(default_factory=paper_core_config)


def steady_state_prefix(machine, hierarchy, predictor, count: int) -> None:
    """Run `count` instructions with full functional warming.

    Used to start measurement from steady state: the paper's 6-billion-
    instruction populations make the initial cold-start region negligible,
    but at laptop scale it would contaminate the true-IPC baseline.  Both
    the full-trace run and every sampled run execute the same warmed
    prefix before instruction 0 of the measured population, so all
    simulators start from identical state (see DESIGN.md §2).
    """
    if count <= 0:
        return
    machine.run(
        count,
        mem_hook=lambda pc, np_, a, w: hierarchy.warm_access(a, w, False),
        branch_hook=lambda pc, np_, inst, taken: predictor.update(
            pc, inst, taken, np_),
        ifetch_hook=lambda a: hierarchy.warm_access(a, False, True),
        ifetch_block_bytes=hierarchy.l1i.config.line_bytes,
    )


class SampledSimulator:
    """Runs one workload under a sampling regimen with a warm-up method.

    The same regimen (hence the same uniformly random cluster starting
    positions) is used for every method, holding sampling bias constant —
    the comparison then isolates non-sampling bias, as in the paper.
    """

    def __init__(
        self,
        workload: Workload,
        regimen: SamplingRegimen,
        configs: SimulatorConfigs | None = None,
        warmup_prefix: int = 0,
        detail_ramp: int = 0,
        telemetry=None,
    ) -> None:
        self.workload = workload
        self.regimen = regimen
        self.configs = configs if configs is not None else SimulatorConfigs()
        self.warmup_prefix = warmup_prefix
        #: SMARTS-style detailed warming: each cluster simulates this many
        #: extra leading instructions in full detail but excludes them from
        #: the measured IPC, hiding the empty-pipeline restart transient.
        self.detail_ramp = detail_ramp
        #: Telemetry source: ``None`` resolves ``REPRO_TRACE`` /
        #: ``REPRO_TELEMETRY`` per run; a zero-argument callable (e.g. the
        #: :class:`~repro.telemetry.Telemetry` class itself) yields a
        #: fresh session per run, so snapshots stay per-run even when the
        #: same simulator runs several methods; a session instance is
        #: shared across runs as-is (the caller owns its lifecycle).
        self.telemetry = telemetry

    def _telemetry_session(self):
        source = self.telemetry
        if source is None:
            return telemetry_from_env()
        if callable(source):
            return source()
        return source

    def run(self, method: WarmupMethod) -> SampledRunResult:
        """Execute the full sampled simulation with `method`."""
        configs = self.configs
        telemetry = self._telemetry_session()
        traced = telemetry.enabled
        machine = self.workload.make_machine()
        hierarchy = MemoryHierarchy(configs.hierarchy)
        predictor = BranchPredictor(configs.predictor)
        timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
        with telemetry.phase("prefix"):
            steady_state_prefix(machine, hierarchy, predictor,
                                self.warmup_prefix)
        context = SimulationContext(
            machine=machine,
            hierarchy=hierarchy,
            predictor=predictor,
            regimen=self.regimen,
            telemetry=telemetry,
        )
        method.bind(context)

        # REPRO_AUDIT: per-cluster divergence probes against a cached
        # perfectly-warmed reference trajectory.  Imported lazily — the
        # analysis package depends on this module — and resolved per
        # run, so the audit-off hot path pays one env check and a None
        # test per cluster.  Audit data rides the telemetry session;
        # with an explicit null session there is nowhere to put it, so
        # the probe is skipped.
        audit = None
        if audit_enabled() and traced:
            from ..analysis.audit import AuditProbe

            audit = AuditProbe.for_run(self, hierarchy, predictor,
                                       telemetry)

        cluster_size = self.regimen.cluster_size
        detail_ramp = self.detail_ramp
        cluster_ipcs: list[float] = []
        position = 0
        cost = method.cost
        start_time = time.perf_counter()

        for index, cluster_start in enumerate(self.regimen.cluster_starts()):
            # The detailed ramp borrows its instructions from the end of
            # the gap so cluster positions stay comparable across methods.
            ramp = min(detail_ramp, max(0, cluster_start - position))
            gap = cluster_start - position - ramp
            if traced:
                telemetry.begin_cluster()
                cost_before = cost.as_dict()
            with telemetry.phase(PHASE_COLD_SKIP):
                if gap > 0:
                    method.skip(gap)
            position = cluster_start - ramp
            with telemetry.phase(PHASE_RECONSTRUCT):
                hook = method.pre_cluster()
            if audit is not None:
                audit.before_cluster(index, method)
            with telemetry.phase(PHASE_HOT_SIM):
                result = timing.run(
                    cluster_size + ramp, pre_branch_hook=hook,
                    measure_after=ramp,
                )
            with telemetry.phase(PHASE_RECONSTRUCT):
                method.post_cluster()
            position += result.instructions
            cost.hot_instructions += result.instructions
            cluster_ipcs.append(result.ipc)
            if audit is not None:
                # Emitted before end_cluster so the audit record sorts
                # (stably) ahead of its cluster record after any merge.
                audit.after_cluster(index, method, result.ipc)
            if traced:
                cost_now = cost.as_dict()
                deltas = {
                    name: cost_now[name] - cost_before[name]
                    for name in cost_now
                }
                telemetry.observe("cluster.ipc", result.ipc)
                telemetry.observe("cluster.gap", gap)
                telemetry.end_cluster({
                    "workload": self.workload.name,
                    "method": method.name,
                    "cluster": index,
                    "start": cluster_start,
                    "gap": gap,
                    "ramp": ramp,
                    "instructions": result.instructions,
                    "ipc": result.ipc,
                    "warm_updates": (deltas["cache_updates"]
                                     + deltas["predictor_updates"]),
                    **deltas,
                })

        wall_seconds = time.perf_counter() - start_time
        # Diagnostic: the instruction-weighted (harmonic / CPI-based)
        # estimate; the paper's estimator is the plain mean of cluster
        # IPCs, which is what `estimate` reports.  A zero-cluster regimen
        # (or any zero-IPC cluster) has no meaningful harmonic mean.
        harmonic = (
            len(cluster_ipcs) / sum(1.0 / ipc for ipc in cluster_ipcs)
            if cluster_ipcs and all(ipc > 0 for ipc in cluster_ipcs)
            else 0.0
        )
        extra = {"harmonic_mean_ipc": harmonic,
                 "warmup_prefix": self.warmup_prefix}
        if traced:
            telemetry.set_gauge("run.wall_seconds", wall_seconds)
            telemetry.set_gauge("run.clusters", len(cluster_ipcs))
            extra["telemetry"] = telemetry.snapshot()
            telemetry.flush_trace()
        return SampledRunResult(
            workload_name=self.workload.name,
            method_name=method.name,
            regimen=self.regimen,
            cluster_ipcs=cluster_ipcs,
            estimate=cluster_estimate(cluster_ipcs),
            cost=cost,
            wall_seconds=wall_seconds,
            extra=extra,
        )


def measure_true_ipc(
    workload: Workload,
    total_instructions: int,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
) -> TrueRunResult:
    """Detailed simulation of the full instruction stream (no sampling).

    `warmup_prefix` functionally warms that many instructions before
    measurement starts, so the baseline begins from the same steady state
    as sampled runs constructed with the same prefix.
    """
    configs = configs if configs is not None else SimulatorConfigs()
    machine = workload.make_machine()
    hierarchy = MemoryHierarchy(configs.hierarchy)
    predictor = BranchPredictor(configs.predictor)
    timing = TimingSimulator(machine, hierarchy, predictor, configs.core)
    steady_state_prefix(machine, hierarchy, predictor, warmup_prefix)
    start_time = time.perf_counter()
    result = timing.run(total_instructions)
    wall_seconds = time.perf_counter() - start_time
    return TrueRunResult(
        workload_name=workload.name,
        instructions=result.instructions,
        cycles=result.cycles,
        wall_seconds=wall_seconds,
    )
