"""Two-phase execution pipeline: cold scan + cluster-sharded hot simulation.

The classic controller loop (:func:`run_serial`) interleaves three kinds
of work per cluster — cold functional skip, reconstruction, detailed
timing — on one continuously evolving simulator.  Only the detailed
timing is expensive, and for Reverse State Reconstruction it depends on
nothing but (a) the architectural state at cluster entry and (b) the
just-logged gap: exactly the locality the paper's §3 design buys.  The
two-phase pipeline (:func:`run_sharded`) exploits it:

- **Phase A — cold scan** (serial, fast): walk the regimen once doing
  cold functional simulation only.  For every cluster, skip the gap with
  the method's logging hooks, capture a picklable
  :class:`~repro.functional.FunctionalCheckpoint`, detach the gap's
  filled :class:`~repro.core.source.ReconstructionSource`, and advance
  the machine cold across the cluster region.  Each cluster becomes one
  :class:`ClusterShard`.
- **Phase B — hot shards** (parallel): each shard independently restores
  its checkpoint onto a fresh simulator stack, adopts the gap source,
  runs the method's reconstruction plus the detailed ramp + cluster, and
  returns its IPC, cost deltas, and telemetry snapshot.  Shards fan out
  over :func:`repro.harness.parallel.map_tasks`
  (``REPRO_CLUSTER_JOBS`` / ``--cluster-jobs``) and fold back through a
  **streaming fold**: results are consumed via the executor's
  ``on_result`` callback in completion order and folded deterministically
  in cluster order with a pending-heap (:class:`_ShardFold`), so each
  cluster's trace/audit records land as soon as every earlier cluster
  has — no barrier, identical results whatever order shards finish.

Phase A is additionally **read-through** against the optional
:class:`~repro.store.CheckpointStore` (``REPRO_CHECKPOINT_STORE`` /
``--store``): on a store hit the shards materialise from disk — after a
digest + geometry cross-check proving they match what a live scan would
produce — without executing the cold scan or the warm-up prefix; on a
miss the scan runs as usual and its shards are captured into the store
for the next run.  Store hits are bit-identical to cold runs by
construction (the shards *are* the cold scan's output), which is what
makes core-parameter sweeps O(sampled instructions).

Exactness: architectural state in every shard is exact by construction
(the checkpoint), so cluster positions, gap logs, and instruction counts
match the serial walk bit for bit (the fold asserts the counts).  What a
shard cannot reproduce is the *stale* microarchitectural state a serial
run carries into each cluster underneath the method's reconstruction —
shards start from empty caches/predictors plus the reconstruction alone.
The residual per-cluster IPC bias is measured, not assumed: the
``REPRO_AUDIT`` probes ride into the shard workers with per-cluster
reference states, so audit records attribute it exactly as in serial
runs.  Methods that warm continuously across cluster boundaries (SMARTS,
fixed period, MRRL/BLRL) declare ``shardable = False`` and stay serial.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import pickle
import time
from dataclasses import dataclass, field

from ..functional import FunctionalCheckpoint
from ..store.checkpoint import GLOBAL_STORE_STATS, resolve_store, shard_store_key
from ..store.serialization import warn_once
from ..telemetry import (
    EVENT_RUN_END,
    EVENT_RUN_START,
    PHASE_COLD_SKIP,
    PHASE_HOT_SIM,
    PHASE_RECONSTRUCT,
    TelemetrySnapshot,
    audit_enabled,
    emit_event,
    merge_snapshots,
    telemetry_from_env,
)
from ..warmup.base import SimulationContext
from .controller import SampledRunResult, build_simulation
from .statistics import cluster_estimate

#: Environment variable resolved when ``SampledSimulator.cluster_jobs``
#: is None: shard workers for the two-phase pipeline (1 = serial,
#: 0 = one worker per CPU).
CLUSTER_JOBS_ENV_VAR = "REPRO_CLUSTER_JOBS"


def resolve_cluster_jobs(explicit: int | None = None) -> int:
    """Effective shard-worker count: explicit setting, else the env var.

    ``0`` means one worker per CPU; anything below zero (or a
    non-integer environment value) raises ``ValueError`` so the CLI can
    exit 2 with a readable message.
    """
    if explicit is None:
        raw = os.environ.get(CLUSTER_JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            explicit = int(raw)
        except ValueError:
            raise ValueError(
                f"{CLUSTER_JOBS_ENV_VAR} must be an integer "
                f"(got {raw!r})"
            ) from None
    jobs = int(explicit)
    if jobs < 0:
        raise ValueError(
            f"cluster jobs must be >= 0 (0 = one per CPU), got {jobs}"
        )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def cluster_geometry(position: int, cluster_start: int,
                     detail_ramp: int) -> tuple[int, int]:
    """The controller's ramp-borrowing arithmetic for one cluster.

    The detailed ramp borrows its instructions from the end of the gap
    so cluster positions stay comparable across methods; returns
    ``(ramp, gap)``.  Single-sourced here so the serial walk, the cold
    scan, and the audit reference trajectory can never drift apart.
    """
    ramp = min(detail_ramp, max(0, cluster_start - position))
    gap = cluster_start - position - ramp
    return ramp, gap


# ---------------------------------------------------------------------------
# shard data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterShard:
    """Phase A's hand-off for one cluster: everything Phase B needs.

    `checkpoint` is the architectural state at cluster entry (before the
    detailed ramp); `source` is the gap's filled reconstruction source,
    telemetry-stripped for pickling; `skip_cost` carries the gap's
    cold-scan cost deltas (functional instructions, log records) so the
    shard's trace record shows the same per-cluster totals as a serial
    run; `cold_instructions` is how far the cold scan advanced across
    the cluster region — the fold cross-checks the shard retired exactly
    that many.
    """

    index: int
    cluster_start: int
    gap: int
    ramp: int
    checkpoint: FunctionalCheckpoint
    source: object
    skip_cost: dict = field(default_factory=dict)
    cold_instructions: int = 0
    #: Single-state reference trajectory for the audit probe, or None
    #: when auditing is off for this run.
    audit_slice: object = None


@dataclass(frozen=True)
class ShardTask:
    """Picklable unit of Phase B work (one cluster on one worker)."""

    workload: object
    configs: object
    regimen: object
    #: One unbound method clone, pickled once per run and shared by
    #: every task; each worker unpickles a private copy.
    method_blob: bytes
    shard: ClusterShard


@dataclass(frozen=True)
class ShardResult:
    """What one shard sends back for the deterministic fold."""

    index: int
    ipc: float
    instructions: int
    #: The worker-side WarmupCost as a dict: reconstruction updates,
    #: on-demand counter writes, hot instructions.  Skip-side cost lives
    #: on the parent's method already.
    cost_delta: dict
    snapshot: TelemetrySnapshot | None = None


# ---------------------------------------------------------------------------
# serial strategy (reference semantics)
# ---------------------------------------------------------------------------


def run_serial(simulator, method) -> SampledRunResult:
    """The continuous serial walk (the paper's Figure 1 loop).

    Cache and branch-predictor state flow continuously through the whole
    run; this is the reference semantics every other strategy is
    measured against.
    """
    configs = simulator.configs
    telemetry = simulator._telemetry_session()
    traced = telemetry.enabled
    stack = build_simulation(simulator.workload, configs)
    machine = stack.machine
    timing = stack.timing
    emit_event(telemetry.events_path, EVENT_RUN_START,
               workload=simulator.workload.name, method=method.name,
               strategy="serial")
    run_span = telemetry.span(
        "run", workload=simulator.workload.name, method=method.name,
        strategy="serial",
    )
    run_span.__enter__()
    with telemetry.span("prefix", cat="phase"), telemetry.phase("prefix"):
        stack.warm_prefix(simulator.warmup_prefix)
    context = SimulationContext(
        machine=machine,
        hierarchy=stack.hierarchy,
        predictor=stack.predictor,
        regimen=simulator.regimen,
        telemetry=telemetry,
    )
    method.bind(context)

    # REPRO_AUDIT: per-cluster divergence probes against a cached
    # perfectly-warmed reference trajectory.  Imported lazily — the
    # analysis package depends on the controller — and resolved per
    # run, so the audit-off hot path pays one env check and a None
    # test per cluster.  Audit data rides the telemetry session; with
    # an explicit null session there is nowhere to put it, so the
    # probe is skipped.
    audit = None
    if audit_enabled() and traced:
        from ..analysis.audit import AuditProbe

        audit = AuditProbe.for_run(simulator, stack.hierarchy,
                                   stack.predictor, telemetry)

    cluster_size = simulator.regimen.cluster_size
    detail_ramp = simulator.detail_ramp
    cluster_ipcs: list[float] = []
    position = 0
    cost = method.cost
    start_time = time.perf_counter()

    for index, cluster_start in enumerate(simulator.regimen.cluster_starts()):
        ramp, gap = cluster_geometry(position, cluster_start, detail_ramp)
        if traced:
            telemetry.begin_cluster()
            cost_before = cost.as_dict()
        cluster_span = telemetry.span(f"cluster {index}", cluster=index)
        cluster_span.__enter__()
        with telemetry.span(PHASE_COLD_SKIP, cat="phase"), \
                telemetry.phase(PHASE_COLD_SKIP):
            if gap > 0:
                method.skip(gap)
        position = cluster_start - ramp
        with telemetry.span(PHASE_RECONSTRUCT, cat="phase"), \
                telemetry.phase(PHASE_RECONSTRUCT):
            hook = method.pre_cluster()
        if audit is not None:
            with telemetry.span("audit", cat="phase"):
                audit.before_cluster(index, method)
        with telemetry.span(PHASE_HOT_SIM, cat="phase"), \
                telemetry.phase(PHASE_HOT_SIM):
            result = timing.run(
                cluster_size + ramp, pre_branch_hook=hook,
                measure_after=ramp,
            )
        with telemetry.span(PHASE_RECONSTRUCT, cat="phase"), \
                telemetry.phase(PHASE_RECONSTRUCT):
            method.post_cluster()
        # The hot cluster fetched instruction blocks outside machine.run,
        # so the ifetch-continuity marker no longer names the last block
        # the caches saw; drop it so the next skip re-reports its first
        # block (and logs stay identical to the sharded cold scan).
        machine.invalidate_fetch_block()
        position += result.instructions
        cost.hot_instructions += result.instructions
        cluster_ipcs.append(result.ipc)
        if audit is not None:
            # Emitted before end_cluster so the audit record sorts
            # (stably) ahead of its cluster record after any merge.
            with telemetry.span("audit", cat="phase"):
                audit.after_cluster(index, method, result.ipc)
        if traced:
            cost_now = cost.as_dict()
            deltas = {
                name: cost_now[name] - cost_before[name]
                for name in cost_now
            }
            telemetry.observe("cluster.ipc", result.ipc)
            telemetry.observe("cluster.gap", gap)
            telemetry.end_cluster({
                "workload": simulator.workload.name,
                "method": method.name,
                "cluster": index,
                "start": cluster_start,
                "gap": gap,
                "ramp": ramp,
                "instructions": result.instructions,
                "ipc": result.ipc,
                "warm_updates": (deltas["cache_updates"]
                                 + deltas["predictor_updates"]),
                **deltas,
            })
        cluster_span.__exit__(None, None, None)

    run_span.__exit__(None, None, None)
    wall_seconds = time.perf_counter() - start_time
    extra = {"harmonic_mean_ipc": _harmonic_mean(cluster_ipcs),
             "warmup_prefix": simulator.warmup_prefix}
    if traced:
        telemetry.set_gauge("run.wall_seconds", wall_seconds)
        telemetry.set_gauge("run.clusters", len(cluster_ipcs))
        extra["telemetry"] = telemetry.snapshot()
        telemetry.flush_trace()
        telemetry.flush_spans()
    emit_event(telemetry.events_path, EVENT_RUN_END,
               workload=simulator.workload.name, method=method.name,
               strategy="serial", clusters=len(cluster_ipcs),
               wall_seconds=wall_seconds)
    return SampledRunResult(
        workload_name=simulator.workload.name,
        method_name=method.name,
        regimen=simulator.regimen,
        cluster_ipcs=cluster_ipcs,
        estimate=cluster_estimate(cluster_ipcs),
        cost=cost,
        wall_seconds=wall_seconds,
        extra=extra,
    )


# ---------------------------------------------------------------------------
# two-phase sharded strategy
# ---------------------------------------------------------------------------


def run_sharded(simulator, method, jobs: int) -> SampledRunResult:
    """Phase A cold scan, Phase B parallel hot shards, deterministic fold.

    Requires ``method.shardable``; the caller
    (:meth:`~repro.sampling.controller.SampledSimulator.run`) enforces
    that and the serial fallback for everything else.
    """
    configs = simulator.configs
    telemetry = simulator._telemetry_session()
    traced = telemetry.enabled
    store, store_key = _shard_store_for(simulator, method)
    emit_event(telemetry.events_path, EVENT_RUN_START,
               workload=simulator.workload.name, method=method.name,
               strategy="sharded", cluster_jobs=jobs)
    run_span = telemetry.span(
        "run", workload=simulator.workload.name, method=method.name,
        strategy="sharded", cluster_jobs=jobs,
    )
    run_span.__enter__()

    # Read-through: a validated store hit replaces the entire cold scan
    # (including the warm-up prefix — the stored checkpoints already
    # embody it); any corruption or geometry mismatch degrades to the
    # live scan below.
    stored_shards = None
    if store is not None:
        stored_shards = _load_stored_shards(store, store_key, simulator,
                                            telemetry)

    stack = build_simulation(simulator.workload, configs)
    machine = stack.machine
    if stored_shards is None:
        with telemetry.span("prefix", cat="phase"), \
                telemetry.phase("prefix"):
            stack.warm_prefix(simulator.warmup_prefix)
    # The clone template is pickled before bind, while the method holds
    # configuration only; every shard worker unpickles a private copy
    # and binds it to its own context.
    method_blob = pickle.dumps(method.clone_unbound())
    context = SimulationContext(
        machine=machine,
        hierarchy=stack.hierarchy,
        predictor=stack.predictor,
        regimen=simulator.regimen,
        telemetry=telemetry,
    )
    method.bind(context)

    audit_slices = None
    if audit_enabled() and traced:
        from ..analysis.audit import (
            ReferenceTrajectory,
            reference_trajectory_for,
        )

        trajectory = reference_trajectory_for(
            simulator.workload, simulator.regimen, configs,
            warmup_prefix=simulator.warmup_prefix,
            detail_ramp=simulator.detail_ramp,
        )
        # Each shard receives only its own cluster's reference state,
        # wrapped as a single-state trajectory (the probe keys states by
        # cluster index, not position).
        audit_slices = {
            state.cluster_index: ReferenceTrajectory(
                workload_name=trajectory.workload_name,
                true_ipc=trajectory.true_ipc,
                states=(state,),
            )
            for state in trajectory.states
        }

    cluster_size = simulator.regimen.cluster_size
    detail_ramp = simulator.detail_ramp
    cost = method.cost
    start_time = time.perf_counter()

    # -- Phase A: read-through cold scan, one ClusterShard per cluster ----
    if stored_shards is not None:
        # Store hit: materialise the shards without executing anything.
        # The parent cost ledger replays the stored per-cluster cold-scan
        # deltas, so `WarmupCost` is bit-identical to a live scan's.
        with telemetry.span("phase_a", cat="phase", store="hit"):
            shards = _materialize_shards(stored_shards, audit_slices, cost)
    else:
        phase_a_span = telemetry.span("phase_a", cat="phase")
        phase_a_span.__enter__()
        shards = []
        position = 0
        for index, cluster_start in enumerate(
                simulator.regimen.cluster_starts()):
            ramp, gap = cluster_geometry(position, cluster_start,
                                         detail_ramp)
            functional_before = cost.functional_instructions
            records_before = cost.log_records
            with telemetry.span(f"cluster {index}", cluster=index), \
                    telemetry.span(PHASE_COLD_SKIP, cat="phase"), \
                    telemetry.phase(PHASE_COLD_SKIP):
                if gap > 0:
                    method.skip(gap)
                position = cluster_start - ramp
                checkpoint = FunctionalCheckpoint.capture(machine)
                source = method.detach_source()
                # Advance cold across the cluster region the shard will
                # simulate in detail; hook-less execution invalidates the
                # ifetch marker itself, but do it explicitly so a halted
                # machine behaves like the serial walk too.
                cold = machine.run(cluster_size + ramp)
                machine.invalidate_fetch_block()
            position += cold
            shards.append(ClusterShard(
                index=index,
                cluster_start=cluster_start,
                gap=gap,
                ramp=ramp,
                checkpoint=checkpoint,
                source=source,
                skip_cost={
                    "functional_instructions":
                        cost.functional_instructions - functional_before,
                    "log_records": cost.log_records - records_before,
                },
                cold_instructions=cold,
                audit_slice=(audit_slices.get(index)
                             if audit_slices is not None else None),
            ))
        phase_a_span.__exit__(None, None, None)
        if store is not None:
            _capture_shards(store, store_key, shards, simulator, telemetry)

    # -- Phase B: hot shards in parallel ----------------------------------
    tasks = [
        ShardTask(
            workload=simulator.workload,
            configs=configs,
            regimen=simulator.regimen,
            method_blob=method_blob,
            shard=shard,
        )
        for shard in shards
    ]
    # Lazy: harness.parallel imports the sampling package at top level.
    from ..harness.parallel import map_tasks

    # Workers re-parent their cluster spans under phase_b: the context
    # (parent id + run clock origin) travels via the environment and is
    # captured while the phase_b span is open.  The fold is streaming:
    # each completion lands through `on_result` and folds (deterministic
    # cluster order, pending-heap) while later shards still execute.
    fold = _ShardFold(shards, cost, telemetry, traced)
    with telemetry.span("phase_b", cat="phase"):
        results = map_tasks(run_shard, tasks, jobs,
                            span_context=telemetry.spans.context(),
                            on_result=fold.on_result)
    fold.finish(results)
    cluster_ipcs = fold.cluster_ipcs
    worker_snapshots = fold.snapshots

    run_span.__exit__(None, None, None)
    wall_seconds = time.perf_counter() - start_time
    extra = {
        "harmonic_mean_ipc": _harmonic_mean(cluster_ipcs),
        "warmup_prefix": simulator.warmup_prefix,
        "sharded": True,
        "cluster_jobs": jobs,
    }
    if store is not None:
        extra["checkpoint_store"] = ("hit" if stored_shards is not None
                                     else "miss")
    if traced:
        telemetry.set_gauge("run.wall_seconds", wall_seconds)
        telemetry.set_gauge("run.clusters", len(cluster_ipcs))
        telemetry.set_gauge("run.cluster_jobs", jobs)
        # ... while their counters/histograms/phase timers merge into
        # the run snapshot, records-stripped (trace *and* spans, both
        # re-emitted above) to avoid double counting.
        merged = merge_snapshots(
            [telemetry.snapshot()]
            + [_without_records(s) for s in worker_snapshots]
        )
        extra["telemetry"] = merged
        telemetry.flush_trace()
        telemetry.flush_spans()
    emit_event(telemetry.events_path, EVENT_RUN_END,
               workload=simulator.workload.name, method=method.name,
               strategy="sharded", clusters=len(cluster_ipcs),
               wall_seconds=wall_seconds)
    return SampledRunResult(
        workload_name=simulator.workload.name,
        method_name=method.name,
        regimen=simulator.regimen,
        cluster_ipcs=cluster_ipcs,
        estimate=cluster_estimate(cluster_ipcs),
        cost=cost,
        wall_seconds=wall_seconds,
        extra=extra,
    )


def run_shard(task: ShardTask) -> ShardResult:
    """Phase B worker: one cluster, restored from its shard.

    Module-level and driven purely by the picklable `task`, so it runs
    identically in a pool worker or in-process (the fallback when no
    pool is available — e.g. sharding inside a matrix worker).
    """
    shard = task.shard
    telemetry = telemetry_from_env()
    traced = telemetry.enabled
    stack = build_simulation(task.workload, task.configs)
    shard.checkpoint.restore(stack.machine)
    context = SimulationContext(
        machine=stack.machine,
        hierarchy=stack.hierarchy,
        predictor=stack.predictor,
        regimen=task.regimen,
        telemetry=telemetry,
    )
    method = pickle.loads(task.method_blob)
    method.bind(context)
    method.adopt_source(shard.source)

    audit = None
    if shard.audit_slice is not None and traced:
        from ..analysis.audit import AuditProbe

        audit = AuditProbe(shard.audit_slice, stack.hierarchy,
                           stack.predictor, telemetry)

    cost = method.cost
    if traced:
        telemetry.begin_cluster()
    # The worker's root span: its parent (the run's phase_b span) and
    # the run clock origin arrive via the propagated span context, so
    # this subtree lands directly inside the run's trace at fold time.
    cluster_span = telemetry.span(f"cluster {shard.index}",
                                  cluster=shard.index)
    cluster_span.__enter__()
    with telemetry.span(PHASE_RECONSTRUCT, cat="phase"), \
            telemetry.phase(PHASE_RECONSTRUCT):
        hook = method.pre_cluster()
    if audit is not None:
        with telemetry.span("audit", cat="phase"):
            audit.before_cluster(shard.index, method)
    with telemetry.span(PHASE_HOT_SIM, cat="phase"), \
            telemetry.phase(PHASE_HOT_SIM):
        result = stack.timing.run(
            task.regimen.cluster_size + shard.ramp,
            pre_branch_hook=hook,
            measure_after=shard.ramp,
        )
    with telemetry.span(PHASE_RECONSTRUCT, cat="phase"), \
            telemetry.phase(PHASE_RECONSTRUCT):
        method.post_cluster()
    cost.hot_instructions += result.instructions
    if audit is not None:
        with telemetry.span("audit", cat="phase"):
            audit.after_cluster(shard.index, method, result.ipc)
    if traced:
        # The record shows the cluster's full per-phase cost: the
        # worker's own (reconstruction, hot) plus the gap's cold-scan
        # share handed over by Phase A.
        deltas = cost.as_dict()
        for name, value in shard.skip_cost.items():
            deltas[name] += value
        telemetry.observe("cluster.ipc", result.ipc)
        telemetry.observe("cluster.gap", shard.gap)
        telemetry.end_cluster({
            "workload": task.workload.name,
            "method": method.name,
            "cluster": shard.index,
            "start": shard.cluster_start,
            "gap": shard.gap,
            "ramp": shard.ramp,
            "instructions": result.instructions,
            "ipc": result.ipc,
            "warm_updates": (deltas["cache_updates"]
                             + deltas["predictor_updates"]),
            **deltas,
        })
    cluster_span.__exit__(None, None, None)
    return ShardResult(
        index=shard.index,
        ipc=result.ipc,
        instructions=result.instructions,
        cost_delta=cost.as_dict(),
        snapshot=telemetry.snapshot() if traced else None,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _harmonic_mean(cluster_ipcs: list[float]) -> float:
    """Instruction-weighted (harmonic / CPI-based) diagnostic estimate.

    The paper's estimator is the plain mean of cluster IPCs, which is
    what ``SampledRunResult.estimate`` reports.  A zero-cluster regimen
    (or any zero-IPC cluster) has no meaningful harmonic mean.
    """
    if cluster_ipcs and all(ipc > 0 for ipc in cluster_ipcs):
        return len(cluster_ipcs) / sum(1.0 / ipc for ipc in cluster_ipcs)
    return 0.0


def _without_records(snapshot: TelemetrySnapshot) -> TelemetrySnapshot:
    """A copy of `snapshot` minus trace/span records (already re-emitted
    through the parent session and its span recorder)."""
    return TelemetrySnapshot(
        counters=snapshot.counters,
        gauges=snapshot.gauges,
        histograms=snapshot.histograms,
        phase_seconds=snapshot.phase_seconds,
        trace_records=[],
        spans=[],
    )


# ---------------------------------------------------------------------------
# checkpoint-store read-through (Phase A)
# ---------------------------------------------------------------------------


def _shard_store_for(simulator, method):
    """``(store, key)`` for this run, or ``(None, None)``.

    Both conditions must hold: a store is configured
    (``REPRO_CHECKPOINT_STORE``) *and* the method declares a storable
    identity (:meth:`~repro.warmup.base.WarmupMethod.store_identity` —
    None for methods whose Phase A output depends on unserialisable
    state, e.g. a callable source factory).
    """
    store = resolve_store()
    if store is None:
        return None, None
    identity = method.store_identity()
    if identity is None:
        return None, None
    key = shard_store_key(
        simulator.workload, simulator.regimen, simulator.configs,
        warmup_prefix=simulator.warmup_prefix,
        detail_ramp=simulator.detail_ramp,
        method_identity=identity,
    )
    return store, key


def _load_stored_shards(store, key, simulator, telemetry):
    """Validated stored shards for this run, or None (→ live scan).

    Beyond the store's own digest/manifest cross-check, the shard list
    is re-walked against the regimen geometry — every shard must sit
    exactly where :func:`cluster_geometry` would place it given the
    previous shards' cold advances — so a stale or mismatched entry can
    never silently replace a cold scan.
    """
    starts = [int(start) for start in simulator.regimen.cluster_starts()]
    expect = {"clusters": len(starts), "cluster_starts": starts}
    with telemetry.span("store_lookup", cat="cache", kind="shards"):
        stored = store.get(key, kind="shards", expect=expect)
    if stored is None:
        return None
    problem = _validate_stored_shards(stored, starts, simulator.detail_ramp)
    if problem is None:
        return stored
    # Demote the counted hit: a geometry failure is corruption, and the
    # run degrades to the live scan exactly as for an unreadable blob.
    store.stats.hits -= 1
    GLOBAL_STORE_STATS.hits -= 1
    store._corrupt(store._blob_path(key, "shards"), problem)
    return None


def _validate_stored_shards(stored, starts, detail_ramp):
    """None when `stored` walks the regimen geometry exactly, else a
    description of the first mismatch."""
    if not isinstance(stored, (list, tuple)):
        return f"expected a shard list, got {type(stored).__name__}"
    if len(stored) != len(starts):
        return (f"{len(stored)} shards stored but the regimen has "
                f"{len(starts)} clusters")
    position = 0
    for index, (shard, cluster_start) in enumerate(zip(stored, starts)):
        ramp, gap = cluster_geometry(position, cluster_start, detail_ramp)
        if (getattr(shard, "index", None) != index
                or getattr(shard, "cluster_start", None) != cluster_start
                or getattr(shard, "gap", None) != gap
                or getattr(shard, "ramp", None) != ramp):
            return f"shard {index} geometry does not match the regimen"
        position = cluster_start - ramp + shard.cold_instructions
    return None


def _materialize_shards(stored, audit_slices, cost):
    """Stored shards re-armed for this run.

    Replays each shard's cold-scan cost deltas into the parent ledger —
    ``WarmupCost`` stays bit-identical to a live scan's — and attaches
    this run's audit slices (shards are captured audit-stripped; the
    reference trajectory is core-config-dependent and rides separately).
    """
    shards = []
    for shard in stored:
        cost.functional_instructions += shard.skip_cost.get(
            "functional_instructions", 0)
        cost.log_records += shard.skip_cost.get("log_records", 0)
        if audit_slices is not None:
            shard = dataclasses.replace(
                shard, audit_slice=audit_slices.get(shard.index))
        elif shard.audit_slice is not None:
            shard = dataclasses.replace(shard, audit_slice=None)
        shards.append(shard)
    return shards


def _capture_shards(store, key, shards, simulator, telemetry):
    """Persist a live scan's shards (audit-stripped) for future runs.

    A store must never fail a run: any write error degrades to a
    warn-once stderr note and the run proceeds with its in-memory
    shards.
    """
    starts = [int(start) for start in simulator.regimen.cluster_starts()]
    stored = [dataclasses.replace(shard, audit_slice=None)
              for shard in shards]
    meta = {
        "workload": simulator.workload.name,
        "clusters": len(starts),
        "cluster_starts": starts,
        "warmup_prefix": int(simulator.warmup_prefix),
        "detail_ramp": int(simulator.detail_ramp),
        "cold_instructions": int(sum(s.cold_instructions for s in shards)),
    }
    try:
        with telemetry.span("store_capture", cat="cache", kind="shards"):
            store.put(key, stored, kind="shards", meta=meta)
    except Exception as exc:  # pragma: no cover - defensive
        warn_once("checkpoint-store capture", str(store.root),
                  f"warning: failed to persist Phase A shards to "
                  f"{store.root} ({exc}); continuing without the store")


# ---------------------------------------------------------------------------
# streaming fold (Phase B)
# ---------------------------------------------------------------------------


class _ShardFold:
    """Deterministic streaming fold over Phase B completions.

    ``on_result`` fires in completion order — whatever order the
    executor's workers finish.  Results queue on a pending-heap keyed by
    cluster index and fold strictly in cluster order, so the IPC list,
    cost accumulation, and trace/span re-emission are bit-identical to a
    barrier fold while each cluster's records land as soon as every
    earlier cluster has.  :meth:`finish` folds anything the executor
    returned without signalling (the ordered-list fallback for backends
    that skip ``on_result``) and verifies completeness.
    """

    def __init__(self, shards, cost, telemetry, traced):
        self._shards = shards
        self._cost = cost
        self._telemetry = telemetry
        self._traced = traced
        self._pending: list = []
        self._queued: set[int] = set()
        self._next = 0
        self.cluster_ipcs: list[float] = []
        self.snapshots: list[TelemetrySnapshot] = []

    def on_result(self, index: int, result) -> None:
        del index  # task position == result.index for shard tasks
        self._push(result)

    def _push(self, result) -> None:
        if result is None or result.index in self._queued:
            return
        self._queued.add(result.index)
        heapq.heappush(self._pending, (result.index, result))
        while self._pending and self._pending[0][0] == self._next:
            _, ready = heapq.heappop(self._pending)
            self._fold_one(self._shards[ready.index], ready)
            self._next += 1

    def _fold_one(self, shard: ClusterShard, result: ShardResult) -> None:
        if result.instructions != shard.cold_instructions:
            raise RuntimeError(
                f"cluster shard {shard.index} retired "
                f"{result.instructions} instructions but the cold scan "
                f"advanced {shard.cold_instructions}; the checkpoint "
                f"hand-off is corrupt"
            )
        self.cluster_ipcs.append(result.ipc)
        delta = result.cost_delta
        self._cost.hot_instructions += delta["hot_instructions"]
        self._cost.cache_updates += delta["cache_updates"]
        self._cost.predictor_updates += delta["predictor_updates"]
        if result.snapshot is not None:
            self.snapshots.append(result.snapshot)
            if self._traced:
                # Worker trace records flow through the parent session
                # (a REPRO_TRACE file contains every cluster exactly
                # once), and worker spans are adopted into the parent
                # recorder — already parented under phase_b and stamped
                # on the run timeline by the propagated context.
                for record in result.snapshot.trace_records:
                    self._telemetry.emit(record)
                self._telemetry.spans.adopt(result.snapshot.spans)

    def finish(self, results) -> None:
        """Fold any undelivered results and verify every shard landed."""
        for result in results:
            self._push(result)
        if self._next != len(self._shards):
            missing = [shard.index for shard in self._shards
                       if shard.index not in self._queued]
            raise RuntimeError(
                f"phase B returned no result for clusters {missing}; "
                f"the shard hand-off is corrupt"
            )
