"""Sample statistics for cluster-sampled IPC estimates (paper §5).

Implements the estimators the paper uses verbatim:

- the cluster-sample standard deviation over per-cluster mean IPCs,
- the standard error  S_ipc / sqrt(N_cluster),
- the 95% confidence interval  mean ± 1.96 * standard error,
- relative error against the true (full-trace) IPC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Two-sided 95% normal quantile used by the paper.
Z_95 = 1.96


@dataclass(frozen=True)
class SampleEstimate:
    """A cluster-sample estimate with its confidence interval."""

    mean: float
    std_dev: float
    std_error: float
    num_clusters: int
    confidence: float = 0.95

    @property
    def error_bound(self) -> float:
        """Half-width of the confidence interval (±1.96 * SE at 95%)."""
        return Z_95 * self.std_error

    @property
    def interval(self) -> tuple[float, float]:
        bound = self.error_bound
        return self.mean - bound, self.mean + bound

    def contains(self, true_value: float) -> bool:
        """Does the confidence interval cover `true_value`?

        This is the paper's per-workload "confidence test" (appendix):
        a warm-up method passes when the true IPC falls inside the
        sample's 95% interval.
        """
        low, high = self.interval
        return low <= true_value <= high

    def __str__(self) -> str:
        low, high = self.interval
        return (
            f"{self.mean:.4f} ± {self.error_bound:.4f} "
            f"[{low:.4f}, {high:.4f}] (n={self.num_clusters})"
        )


def cluster_estimate(cluster_means: list[float]) -> SampleEstimate:
    """Estimate the population mean from per-cluster means.

    Uses the paper's formulas: S = sqrt(sum((mu_i - mu)^2) / (N - 1)),
    SE = S / sqrt(N).
    """
    n = len(cluster_means)
    if n == 0:
        raise ValueError("no clusters")
    mean = sum(cluster_means) / n
    if n == 1:
        return SampleEstimate(mean=mean, std_dev=0.0, std_error=0.0,
                              num_clusters=1)
    variance = sum((m - mean) ** 2 for m in cluster_means) / (n - 1)
    std_dev = math.sqrt(variance)
    return SampleEstimate(
        mean=mean,
        std_dev=std_dev,
        std_error=std_dev / math.sqrt(n),
        num_clusters=n,
    )


def relative_error(true_value: float, sample_value: float) -> float:
    """|true - sample| / true (paper's RE(IPC))."""
    if true_value == 0:
        raise ValueError("true value must be non-zero")
    return abs(true_value - sample_value) / abs(true_value)
