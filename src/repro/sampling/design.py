"""Sampling-regimen design: choosing cluster counts from a pilot study.

"The larger the sample, the more likely the estimates obtained from that
sample will be correct.  However, as the sample size increases, so does
the simulation time.  Conversely, a sample that is too small can lead to
inaccurate estimates.  Care must be taken to select an appropriate
sampling regimen." (paper §1)

This module automates that care with the standard sample-size
calculation: a small pilot run estimates the between-cluster IPC
standard deviation; the cluster count needed for a target relative error
bound at 95% confidence follows from

    n = (z * sigma / (epsilon * mu))^2 .
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..warmup.base import WarmupMethod
from ..warmup.fixed_period import SmartsWarmup
from ..workloads import Workload
from .controller import SampledSimulator, SimulatorConfigs
from .regimen import SamplingRegimen
from .statistics import Z_95, cluster_estimate


@dataclass
class RegimenRecommendation:
    """Outcome of a pilot-driven regimen design."""

    workload_name: str
    cluster_size: int
    pilot_clusters: int
    pilot_mean_ipc: float
    pilot_std_dev: float
    target_relative_error: float
    recommended_clusters: int

    @property
    def predicted_error_bound(self) -> float:
        """Predicted ±95% half-width at the recommended cluster count."""
        if self.recommended_clusters <= 0:
            return 0.0
        return Z_95 * self.pilot_std_dev / math.sqrt(
            self.recommended_clusters
        )

    def regimen(self, total_instructions: int,
                seed: int = 12345) -> SamplingRegimen:
        """Materialise the recommended design over a population."""
        return SamplingRegimen(
            total_instructions=total_instructions,
            num_clusters=self.recommended_clusters,
            cluster_size=self.cluster_size,
            seed=seed,
        )


def clusters_for_error(mean: float, std_dev: float,
                       target_relative_error: float,
                       confidence_z: float = Z_95) -> int:
    """Clusters needed so that z*SE <= target_relative_error * mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    if not 0 < target_relative_error < 1:
        raise ValueError("target_relative_error must be in (0, 1)")
    if std_dev == 0:
        return 1
    needed = (confidence_z * std_dev / (target_relative_error * mean)) ** 2
    return max(1, math.ceil(needed))


def pilot_study(
    workload: Workload,
    total_instructions: int,
    cluster_size: int,
    pilot_clusters: int = 8,
    configs: SimulatorConfigs | None = None,
    warmup: WarmupMethod | None = None,
    warmup_prefix: int = 0,
    seed: int = 97,
) -> tuple[float, float]:
    """Run a small warmed sample; return (mean IPC, cluster std-dev)."""
    regimen = SamplingRegimen(
        total_instructions=total_instructions,
        num_clusters=pilot_clusters,
        cluster_size=cluster_size,
        seed=seed,
    )
    simulator = SampledSimulator(
        workload, regimen, configs, warmup_prefix=warmup_prefix,
    )
    method = warmup if warmup is not None else SmartsWarmup()
    result = simulator.run(method)
    estimate = cluster_estimate(result.cluster_ipcs)
    return estimate.mean, estimate.std_dev


def recommend_regimen(
    workload: Workload,
    total_instructions: int,
    cluster_size: int,
    target_relative_error: float = 0.03,
    pilot_clusters: int = 8,
    configs: SimulatorConfigs | None = None,
    warmup_prefix: int = 0,
    seed: int = 97,
) -> RegimenRecommendation:
    """Design a regimen hitting `target_relative_error` at 95% confidence.

    The recommendation is capped so the sample still fits the population
    (at most half of it, per :class:`SamplingRegimen`'s constraint).
    """
    mean, std_dev = pilot_study(
        workload, total_instructions, cluster_size,
        pilot_clusters=pilot_clusters, configs=configs,
        warmup_prefix=warmup_prefix, seed=seed,
    )
    recommended = clusters_for_error(mean, std_dev, target_relative_error)
    maximum = total_instructions // (2 * cluster_size)
    recommended = min(recommended, maximum)
    return RegimenRecommendation(
        workload_name=workload.name,
        cluster_size=cluster_size,
        pilot_clusters=pilot_clusters,
        pilot_mean_ipc=mean,
        pilot_std_dev=std_dev,
        target_relative_error=target_relative_error,
        recommended_clusters=recommended,
    )
