"""Name-based warm-up method registry (the API redesign's lookup layer).

Every entry point that accepts a method *name* — the CLI, the harness,
:mod:`repro.api` — resolves it here.  The paper's sixteen Table 2
configurations are pre-registered lazily from the suite catalogue;
third-party code adds its own with :func:`register_method`:

    from repro.warmup import register_method
    register_method("MyWarmup", MyWarmup, aliases=("mine",))
    method = resolve_method("mine")

Canonical names are the paper's Table 2 labels (``"R$BP (100%)"``,
``"S$BP"``, ...).  Aliases are case-insensitive; ``"rsr"`` and
``"smarts"`` point at the headline configurations so the stable facade
can say ``simulate(workload, method="rsr")``.
"""

from __future__ import annotations

from typing import Callable

from .base import WarmupMethod

#: canonical name -> zero-argument factory returning a fresh method.
_REGISTRY: dict[str, Callable[[], WarmupMethod]] = {}
#: lowercase alias -> canonical name.
_ALIASES: dict[str, str] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Populate the registry with the Table 2 suite, once, lazily.

    Lazy so that importing :mod:`repro.warmup` does not drag in the
    reconstruction stack; the suite module itself resolves through this
    registry, so the import happens at function level.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from .suite import _catalogue

    for prototype, factory in _catalogue():
        _REGISTRY.setdefault(prototype.name, factory)
        _ALIASES.setdefault(prototype.name.lower(), prototype.name)
    # Headline aliases for the stable facade.
    _ALIASES.setdefault("rsr", "R$BP (100%)")
    _ALIASES.setdefault("smarts", "S$BP")


def _canonical(name: str) -> str:
    if name in _REGISTRY:
        return name
    target = _ALIASES.get(name) or _ALIASES.get(name.strip().lower())
    if target is not None and target in _REGISTRY:
        return target
    known = ", ".join(sorted(_REGISTRY))
    raise ValueError(f"unknown method {name!r}; known: {known}")


def register_method(name: str, factory: Callable[[], WarmupMethod], *,
                    aliases: tuple[str, ...] = (),
                    replace: bool = False) -> None:
    """Register `factory` (zero-argument, fresh method per call) as `name`.

    `aliases` are additional case-insensitive lookup keys.  Re-registering
    an existing name raises unless `replace=True`.
    """
    _ensure_builtins()
    if not callable(factory):
        raise TypeError("factory must be a zero-argument callable")
    if not replace and name in _REGISTRY:
        raise ValueError(f"method {name!r} is already registered; "
                         "pass replace=True to override")
    _REGISTRY[name] = factory
    _ALIASES[name.lower()] = name
    for alias in aliases:
        _ALIASES[alias.lower()] = name


def unregister_method(name: str) -> None:
    """Remove a registered method and all aliases pointing at it."""
    _ensure_builtins()
    canonical = _canonical(name)
    del _REGISTRY[canonical]
    for alias, target in list(_ALIASES.items()):
        if target == canonical:
            del _ALIASES[alias]


def method_factory(name: str) -> Callable[[], WarmupMethod]:
    """The registered factory behind `name` (canonical or alias).

    Raises a readable ValueError for unknown names — the CLI maps it to
    exit status 2.
    """
    _ensure_builtins()
    return _REGISTRY[_canonical(name)]


def resolve_method(name: str) -> WarmupMethod:
    """Build a fresh warm-up method from a registered name or alias."""
    return method_factory(name)()


def registered_method_names() -> list[str]:
    """Canonical names currently registered, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)
