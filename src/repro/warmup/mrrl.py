"""MRRL: Memory Reference Reuse Latency warm-up (Haskins & Skadron, 2003).

A related-work baseline the paper compares against conceptually (§2):
MRRL profiles each skip-region/cluster pair to find, for every memory
reference the cluster makes, how far back its previous use lies; the
warm-up window is then sized to cover a chosen percentile of those reuse
latencies, and only that window is functionally warmed.

Unlike RSR, MRRL "pins down the cluster locations and requires profiling
analysis whenever the cluster positions are changed" — reproduced here by
a look-ahead profiling pass over each gap+cluster: the functional machine
is checkpointed, run ahead to collect reuse latencies, and restored before
the real cold/warm execution.
"""

from __future__ import annotations

from .base import WarmupMethod
from .fixed_period import FixedPeriodWarmup


def reuse_latency_percentile(latencies: list[int], percentile: float) -> int:
    """Smallest latency covering `percentile` of the references."""
    if not latencies:
        return 0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, int(percentile * len(ordered)))
    return ordered[rank]


class MRRLWarmup(WarmupMethod):
    """Profile-driven warm-up window sized by reuse-latency percentile."""

    warms_cache = True
    warms_predictor = True

    def __init__(self, percentile: float = 0.99,
                 line_bytes: int = 64) -> None:
        super().__init__()
        if not 0.0 < percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        self.percentile = percentile
        self.line_bytes = line_bytes
        self.name = f"MRRL ({int(round(percentile * 100))}%)"
        #: Chosen warm-up window per gap (diagnostics).
        self.window_history: list[int] = []

    def _profile_window(self, gap: int) -> int:
        """Look ahead over gap + cluster; return the warm-up window size.

        Reuse latencies are collected at cache-line granularity for every
        reference in the gap and cluster, measured in instructions between
        successive touches of the same line, following the MRRL recipe of
        covering a percentile of reuse behaviour.
        """
        context = self.context
        machine = context.machine
        cluster_size = context.regimen.cluster_size if context.regimen else 0
        horizon = gap + cluster_size

        checkpoint = machine.checkpoint()
        line_shift = self.line_bytes.bit_length() - 1
        last_touch: dict[int, int] = {}
        latencies: list[int] = []
        cluster_start = gap

        def mem_hook(pc, next_pc, address, is_store):
            position = machine.instructions_retired - base_retired
            line = address >> line_shift
            previous = last_touch.get(line)
            if previous is not None and position >= cluster_start:
                latencies.append(position - previous)
            last_touch[line] = position

        base_retired = machine.instructions_retired
        machine.run(horizon, mem_hook=mem_hook)
        machine.restore(checkpoint)

        window = reuse_latency_percentile(latencies, self.percentile)
        return min(window, gap)

    def skip(self, count: int) -> None:
        window = self._profile_window(count)
        self.window_history.append(window)
        fraction = window / count if count else 1.0
        if fraction <= 0.0:
            executed = self.context.machine.run(count)
            self.cost.functional_instructions += executed
            return
        # Reuse the fixed-period machinery for the cold + warm split.
        delegate = FixedPeriodWarmup(fraction=min(1.0, fraction))
        delegate.context = self.context
        delegate.cost = self.cost
        delegate.skip(count)
