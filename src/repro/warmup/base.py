"""Warm-up method interface.

A warm-up method owns the *skip region*: everything that happens between
the end of one cluster and the start of the next.  It must keep
architectural state correct (by functionally executing every skipped
instruction) and may additionally repair microarchitectural state — that
repair policy is what distinguishes the methods the paper compares.

Lifecycle per sampled run::

    method.bind(context)          # once, before the first cluster
    for each cluster:
        method.skip(count)        # cold (+ warm) execution of the gap
        hook = method.pre_cluster()   # eager reconstruction, if any
        <hot simulation of the cluster, with optional pre-branch hook>
        method.post_cluster()     # discard per-gap data
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..telemetry import NULL_TELEMETRY


@dataclass
class WarmupCost:
    """Deterministic work accounting for one sampled run.

    `cache_updates` and `predictor_updates` count state-changing
    operations applied to microarchitectural structures during warm-up
    (the cost SMARTS pays for every skipped reference and that RSR
    avoids); `log_records` counts references buffered by logging methods;
    `functional_instructions` counts skip-region instructions executed
    (identical across methods by construction).
    """

    functional_instructions: int = 0
    hot_instructions: int = 0
    log_records: int = 0
    cache_updates: int = 0
    predictor_updates: int = 0

    #: Relative weights for the scalar work metric.  Functional execution
    #: of one instruction is the unit; a detailed (hot) instruction costs
    #: an order of magnitude more; log appends are cheaper than state
    #: updates, matching the paper's observation that "reducing the total
    #: number of updates ... results in faster simulation times".
    WEIGHT_FUNCTIONAL = 1.0
    WEIGHT_HOT = 12.0
    WEIGHT_LOG = 0.5
    WEIGHT_CACHE_UPDATE = 2.0
    WEIGHT_PREDICTOR_UPDATE = 1.0

    def work_units(self) -> float:
        """Scalar simulation-work metric (see DESIGN.md §2)."""
        return (
            self.functional_instructions * self.WEIGHT_FUNCTIONAL
            + self.hot_instructions * self.WEIGHT_HOT
            + self.log_records * self.WEIGHT_LOG
            + self.cache_updates * self.WEIGHT_CACHE_UPDATE
            + self.predictor_updates * self.WEIGHT_PREDICTOR_UPDATE
        )

    def warm_updates(self) -> int:
        return self.cache_updates + self.predictor_updates

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering (telemetry snapshots, trace records)."""
        return {
            "functional_instructions": self.functional_instructions,
            "hot_instructions": self.hot_instructions,
            "log_records": self.log_records,
            "cache_updates": self.cache_updates,
            "predictor_updates": self.predictor_updates,
        }


@dataclass
class SimulationContext:
    """Everything a warm-up method may touch during the skip region."""

    machine: object      # FunctionalMachine
    hierarchy: object    # MemoryHierarchy
    predictor: object    # BranchPredictor
    regimen: object = None
    #: Telemetry session for the current run (null backend by default);
    #: methods and the core reconstruction paths report event counts
    #: through it, the controller owns phase timers and trace records.
    telemetry: object = field(default=NULL_TELEMETRY)

    @property
    def program(self):
        return self.machine.program


class WarmupMethod:
    """Base class; concrete methods override :meth:`skip` and optionally
    :meth:`pre_cluster` / :meth:`post_cluster`."""

    #: Short identifier used in tables (paper Table 2 naming).
    name = "abstract"
    #: Does the method repair cache state?
    warms_cache = False
    #: Does the method repair branch-predictor state?
    warms_predictor = False
    #: Can the method's clusters run as independent shards?  True only
    #: when everything :meth:`pre_cluster` needs is localized to the
    #: current gap (RSR: the skip-region log), so a shard that restores
    #: the gap-end architectural checkpoint and adopts the gap's
    #: reconstruction source reproduces the method's state repair.
    #: Methods that warm *continuously* through the run (SMARTS, fixed
    #: period, MRRL/BLRL) carry microarchitectural state across cluster
    #: boundaries and must stay on the serial path.  A shardable method
    #: must implement :meth:`detach_source` and :meth:`adopt_source`.
    shardable = False

    def __init__(self) -> None:
        self.context: SimulationContext | None = None
        self.cost = WarmupCost()
        self.telemetry = NULL_TELEMETRY

    def bind(self, context: SimulationContext) -> None:
        """Attach to a fresh simulation; resets cost accounting."""
        self.context = context
        self.cost = WarmupCost()
        self.telemetry = getattr(context, "telemetry", NULL_TELEMETRY)

    # -- skip-region handling ------------------------------------------------

    def skip(self, count: int) -> None:
        """Advance the functional machine by `count` instructions."""
        raise NotImplementedError

    def pre_cluster(self):
        """Eager state repair immediately before the next cluster.

        Returns an optional ``hook(pc, inst)`` the timing simulator calls
        before predicting each control transfer (used for on-demand
        reconstruction), or None.
        """
        return None

    def post_cluster(self) -> None:
        """Discard any per-gap data (paper: logs are kept only for the
        current skip region)."""

    def finalize_pending(self) -> None:
        """Force any lazily deferred state repair to complete now.

        A no-op for eager methods.  Analysis tooling (state-fidelity
        scoring) calls this at cluster entry so on-demand methods can be
        compared on the state their probes *would* observe."""

    # -- cluster sharding (two-phase pipeline) -------------------------------

    def clone_unbound(self) -> "WarmupMethod":
        """A fresh, unbound copy carrying only this method's configuration.

        The two-phase pipeline pickles one clone per run and unpickles it
        in every shard worker, where :meth:`bind` rebuilds all per-run
        state.  The default shallow-copies and re-runs the base
        bookkeeping reset; subclasses holding per-run state that
        :meth:`bind` does not fully rebuild (or that is expensive or
        unsafe to pickle) must extend this to purge it.
        """
        clone = copy.copy(self)
        WarmupMethod.__init__(clone)
        return clone

    def detach_source(self):
        """Surrender the just-logged gap's reconstruction source.

        Called by the cold-scan phase after :meth:`skip`, instead of
        :meth:`pre_cluster`: the returned source travels (pickled) to the
        shard worker that simulates the following cluster, and the method
        must swap in a fresh, empty source for the next gap.  Only
        meaningful when :attr:`shardable` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not shardable"
        )

    def adopt_source(self, source) -> None:
        """Install a handed-off gap source (shard-worker side).

        The worker calls this on its freshly bound method clone before
        :meth:`pre_cluster`, so reconstruction consumes the gap logged by
        the cold scan.  Only meaningful when :attr:`shardable` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not shardable"
        )

    def store_identity(self) -> "dict | None":
        """JSON-stable identity for checkpoint-store keys, or None.

        The two-phase pipeline persists Phase A shards only when the
        method can describe every configuration knob that affects what
        its cold scan produces (skip-region logging included) as stable
        primitives.  The default — None — declares the method not
        storable, which is always safe: runs merely skip the store.
        Shardable methods should override this; anything unserialisable
        in their configuration (e.g. a callable source factory) must
        resolve to None as well.
        """
        return None

    # -- shared helpers ------------------------------------------------------

    def _updates_now(self) -> tuple[int, int]:
        context = self.context
        return context.hierarchy.total_updates(), context.predictor.total_updates()

    def _charge_updates(self, before: tuple[int, int]) -> None:
        cache_now, predictor_now = self._updates_now()
        cache_delta = cache_now - before[0]
        predictor_delta = predictor_now - before[1]
        self.cost.cache_updates += cache_delta
        self.cost.predictor_updates += predictor_delta
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("warmup.cache_updates", cache_delta)
            telemetry.count("warmup.predictor_updates", predictor_delta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
