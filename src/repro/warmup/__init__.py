"""Warm-up methods: the interface, baselines, and the Table 2 suite."""

from .base import WarmupMethod, WarmupCost, SimulationContext
from .none import NoWarmup
from .fixed_period import FixedPeriodWarmup, SmartsWarmup
from .mrrl import MRRLWarmup, reuse_latency_percentile
from .blrl import BLRLWarmup
from .suite import (
    paper_method_suite,
    paper_method_names,
    make_method,
    PAPER_FRACTIONS,
    REVERSE_FRACTIONS,
)
from .registry import (
    register_method,
    unregister_method,
    resolve_method,
    method_factory,
    registered_method_names,
)

__all__ = [
    "WarmupMethod",
    "WarmupCost",
    "SimulationContext",
    "NoWarmup",
    "FixedPeriodWarmup",
    "SmartsWarmup",
    "MRRLWarmup",
    "BLRLWarmup",
    "reuse_latency_percentile",
    "paper_method_suite",
    "paper_method_names",
    "make_method",
    "PAPER_FRACTIONS",
    "REVERSE_FRACTIONS",
    "register_method",
    "unregister_method",
    "resolve_method",
    "method_factory",
    "registered_method_names",
]
