"""Factories for the paper's Table 2 warm-up configurations.

Sixteen configurations are evaluated in the paper's appendix:

====================  =====================================================
name                  meaning
====================  =====================================================
None                  no state repair
FP (20/40/80%)        fixed period: warm the trailing x% of each gap
S$ / SBP / S$BP       SMARTS full functional warming (cache / BP / both)
R$ (20/40/80/100%)    reverse cache reconstruction from the log tail
RBP                   reverse on-demand branch-predictor reconstruction
R$BP (20/40/80/100%)  reverse reconstruction of both
====================  =====================================================
"""

from __future__ import annotations

from ..core.method import ReverseStateReconstruction
from .base import WarmupMethod
from .fixed_period import FixedPeriodWarmup, SmartsWarmup
from .none import NoWarmup

#: Warm-up percentages swept by the paper.
PAPER_FRACTIONS = (0.2, 0.4, 0.8)
REVERSE_FRACTIONS = (0.2, 0.4, 0.8, 1.0)


def make_method(name: str) -> WarmupMethod:
    """Build a warm-up method from its paper Table 2 name.

    Compatibility shim: lookup now lives in the method registry
    (:mod:`repro.warmup.registry`), which also accepts registered
    aliases and third-party methods; prefer
    :func:`repro.warmup.resolve_method`.
    """
    from .registry import resolve_method

    return resolve_method(name)


def _catalogue():
    """(prototype instance, factory) pairs for every Table 2 entry."""
    entries = [
        (NoWarmup, ()),
        *(
            (FixedPeriodWarmup, (fraction,))
            for fraction in PAPER_FRACTIONS
        ),
        (SmartsWarmup, (True, False)),
        (SmartsWarmup, (False, True)),
        (SmartsWarmup, (True, True)),
        *(
            (ReverseStateReconstruction, (fraction, True, False))
            for fraction in REVERSE_FRACTIONS
        ),
        (ReverseStateReconstruction, (1.0, False, True)),
        *(
            (ReverseStateReconstruction, (fraction, True, True))
            for fraction in REVERSE_FRACTIONS
        ),
    ]
    pairs = []
    for cls, args in entries:
        pairs.append((cls(*args), lambda cls=cls, args=args: cls(*args)))
    return pairs


def paper_method_suite() -> list[WarmupMethod]:
    """Fresh instances of all sixteen Table 2 configurations."""
    return [factory() for _prototype, factory in _catalogue()]


def paper_method_names() -> list[str]:
    """Table 2 names in canonical order."""
    return [prototype.name for prototype, _factory in _catalogue()]
