"""Fixed-period and SMARTS-style full functional warm-up.

Both methods *functionally apply* skipped references to the cache
hierarchy and/or branch predictor; they differ only in how much of the
skip region they warm:

- **Fixed period** (paper "FP (x%)"): the last x% of each skip region is
  executed warm, the rest cold.
- **SMARTS** (paper "S$", "SBP", "S$BP"): the entire skip region is warm —
  the fixed-period method with a 100% period.  "Every branch and memory
  operation is functionally applied to the branch predictor and cache
  hierarchy" (paper §2).

Instruction-cache warming applies one access per fetched 64-byte block
(consecutive same-block fetches cannot change cache state; see DESIGN.md).
"""

from __future__ import annotations

from .base import WarmupMethod


class FixedPeriodWarmup(WarmupMethod):
    """Warm the trailing `fraction` of every skip region."""

    warms_cache = True
    warms_predictor = True

    def __init__(self, fraction: float, warm_cache: bool = True,
                 warm_predictor: bool = True, name: str | None = None) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not (warm_cache or warm_predictor):
            raise ValueError("at least one structure must be warmed")
        self.fraction = fraction
        self.warm_cache = warm_cache
        self.warm_predictor = warm_predictor
        self.warms_cache = warm_cache
        self.warms_predictor = warm_predictor
        if name is not None:
            self.name = name
        else:
            self.name = f"FP ({int(round(fraction * 100))}%)"

    def skip(self, count: int) -> None:
        context = self.context
        machine = context.machine
        hierarchy = context.hierarchy
        predictor = context.predictor

        warm_count = int(round(count * self.fraction))
        cold_count = count - warm_count
        if cold_count > 0:
            executed = machine.run(cold_count)
            self.cost.functional_instructions += executed
        if warm_count <= 0:
            return

        before = self._updates_now()
        mem_hook = None
        ifetch_hook = None
        branch_hook = None
        if self.warm_cache:
            warm_access = hierarchy.warm_access

            def mem_hook(pc, next_pc, address, is_store,
                         _access=warm_access):
                _access(address, is_store, False)

            def ifetch_hook(address, _access=warm_access):
                _access(address, False, True)

        if self.warm_predictor:
            update = predictor.update

            def branch_hook(pc, next_pc, inst, taken, _update=update):
                _update(pc, inst, taken, next_pc)

        executed = machine.run(
            warm_count,
            mem_hook=mem_hook,
            branch_hook=branch_hook,
            ifetch_hook=ifetch_hook,
            ifetch_block_bytes=hierarchy.l1i.config.line_bytes,
        )
        self.cost.functional_instructions += executed
        self._charge_updates(before)


class SmartsWarmup(FixedPeriodWarmup):
    """Full functional warming of the entire skip region (paper's most
    accurate warm-up baseline)."""

    def __init__(self, warm_cache: bool = True,
                 warm_predictor: bool = True) -> None:
        if warm_cache and warm_predictor:
            name = "S$BP"
        elif warm_cache:
            name = "S$"
        else:
            name = "SBP"
        super().__init__(
            fraction=1.0,
            warm_cache=warm_cache,
            warm_predictor=warm_predictor,
            name=name,
        )
