"""BLRL: Boundary Line Reuse Latency warm-up (Eeckhout et al., 2005).

Refines MRRL: "BLRL only considers memory references from instructions
that originate in the cluster ... Only references in the pre-cluster that
affect memory operations in the cluster are applied to the cache" (paper
§2).  The reuse latency of a cluster reference is measured backwards from
the *cluster boundary* to its previous touch inside the skip region;
references whose previous touch is also inside the cluster are ignored
(they warm themselves).
"""

from __future__ import annotations

from .base import WarmupMethod
from .fixed_period import FixedPeriodWarmup
from .mrrl import reuse_latency_percentile


class BLRLWarmup(WarmupMethod):
    """Boundary-crossing reuse-latency warm-up window."""

    warms_cache = True
    warms_predictor = True

    def __init__(self, percentile: float = 0.99,
                 line_bytes: int = 64) -> None:
        super().__init__()
        if not 0.0 < percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        self.percentile = percentile
        self.line_bytes = line_bytes
        self.name = f"BLRL ({int(round(percentile * 100))}%)"
        self.window_history: list[int] = []

    def _profile_window(self, gap: int) -> int:
        """Look ahead; return how deep into the gap warm-up must start.

        Only boundary-crossing reuses count: a cluster reference whose
        previous touch happened at gap position p needs the warm-up window
        to start at or before p, i.e. a window of (gap - p) instructions.
        """
        context = self.context
        machine = context.machine
        cluster_size = context.regimen.cluster_size if context.regimen else 0
        horizon = gap + cluster_size

        checkpoint = machine.checkpoint()
        line_shift = self.line_bytes.bit_length() - 1
        last_touch: dict[int, int] = {}
        boundary_latencies: list[int] = []
        cluster_start = gap

        def mem_hook(pc, next_pc, address, is_store):
            position = machine.instructions_retired - base_retired
            line = address >> line_shift
            previous = last_touch.get(line)
            if (
                previous is not None
                and position >= cluster_start
                and previous < cluster_start
            ):
                # Window must reach back to the previous touch.
                boundary_latencies.append(cluster_start - previous)
            last_touch[line] = position

        base_retired = machine.instructions_retired
        machine.run(horizon, mem_hook=mem_hook)
        machine.restore(checkpoint)

        window = reuse_latency_percentile(
            boundary_latencies, self.percentile
        )
        return min(window, gap)

    def skip(self, count: int) -> None:
        window = self._profile_window(count)
        self.window_history.append(window)
        fraction = window / count if count else 1.0
        if fraction <= 0.0:
            executed = self.context.machine.run(count)
            self.cost.functional_instructions += executed
            return
        delegate = FixedPeriodWarmup(fraction=min(1.0, fraction))
        delegate.context = self.context
        delegate.cost = self.cost
        delegate.skip(count)
