"""No warm-up: pure cold simulation of the skip region.

The caches and branch predictor are left stale — the state present after
the previous cluster.  Cheapest possible skip, largest non-sampling bias
(paper Figure 7: lowest time, highest error at ~23%).
"""

from __future__ import annotations

from .base import WarmupMethod


class NoWarmup(WarmupMethod):
    """Paper Table 2 entry "None"."""

    name = "None"
    warms_cache = False
    warms_predictor = False

    def skip(self, count: int) -> None:
        executed = self.context.machine.run(count)
        self.cost.functional_instructions += executed
