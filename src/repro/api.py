"""Stable high-level facade for sampled-simulation experiments.

Two calls cover the common workflows:

- :func:`simulate` — one workload, one warm-up method, one sampled run::

      from repro.api import simulate
      result = simulate("gcc", method="rsr")
      print(result.estimate.mean)

- :func:`run_matrix` — a methods-by-workloads grid with the parallel
  harness (process fan-out, optional on-disk result cache)::

      from repro.api import run_matrix
      grid = run_matrix(methods=["S$BP", "R$BP (100%)"],
                        workloads=["gcc", "twolf"], design="ci")

Methods are named: anything registered in the warm-up registry resolves,
including the case-insensitive aliases ``"rsr"`` (R$BP at 100%) and
``"smarts"`` (S$BP); pass a :class:`~repro.warmup.WarmupMethod` instance
to :func:`simulate` for full control.  The *design* selects the sampling
regimen and microarchitecture: a scale preset name (``"ci"``,
``"bench"``, ``"default"``, ``"full"``), an
:class:`~repro.harness.ExperimentScale`, a bare
:class:`~repro.sampling.SamplingRegimen` (paper-default
microarchitecture, no warm-up prefix), or ``None`` for the
``REPRO_EXPERIMENT_SCALE`` environment default.
"""

from __future__ import annotations

from .harness.cache import resolve_cache
from .harness.experiment import (
    ExperimentScale,
    SCALES,
    scale_from_env,
    true_run_for,
)
from .harness.parallel import run_matrix_parallel
from .sampling import SampledRunResult, SampledSimulator, SamplingRegimen
from .warmup import WarmupMethod, method_factory, resolve_method
from .workloads import PAPER_WORKLOADS, Workload, build_workload


def _resolve_design(design) -> ExperimentScale | SamplingRegimen:
    if design is None:
        return scale_from_env()
    if isinstance(design, str):
        try:
            return SCALES[design]
        except KeyError:
            known = ", ".join(sorted(SCALES))
            raise ValueError(
                f"unknown design {design!r}; known: {known}"
            ) from None
    if isinstance(design, (ExperimentScale, SamplingRegimen)):
        return design
    raise TypeError(
        "design must be a scale name, ExperimentScale, SamplingRegimen, "
        f"or None, not {type(design).__name__}")


class _RegistrySuite:
    """Picklable method-suite factory resolving registry names per call.

    The parallel harness ships the factory to worker processes, so it
    must be a module-level class (closures do not pickle) and must
    re-resolve names on the worker side (methods themselves may not
    pickle).  Names are validated eagerly at construction so a typo
    fails before any process fan-out.
    """

    def __init__(self, names: tuple[str, ...]) -> None:
        for name in names:
            method_factory(name)
        self.names = tuple(names)

    def __call__(self) -> list[WarmupMethod]:
        return [resolve_method(name) for name in self.names]


def simulate(workload, method="rsr", design=None, *,
             configs=None, telemetry=None) -> SampledRunResult:
    """Run one sampled simulation and return its
    :class:`~repro.sampling.SampledRunResult`.

    `workload` is a name or a :class:`~repro.workloads.Workload`;
    `method` a registry name/alias or a ready
    :class:`~repro.warmup.WarmupMethod` instance; `design` as described
    in the module docstring.  `configs` overrides the design's
    microarchitecture; `telemetry` is passed through to
    :class:`~repro.sampling.SampledSimulator`.
    """
    design = _resolve_design(design)
    if isinstance(design, ExperimentScale):
        regimen = design.regimen()
        configs = configs if configs is not None else design.configs()
        warmup_prefix = design.warmup_prefix
        detail_ramp = design.detail_ramp
        mem_scale = design.mem_scale
    else:
        regimen = design
        warmup_prefix = 0
        detail_ramp = 0
        mem_scale = 1
    if not isinstance(workload, Workload):
        workload = build_workload(workload, mem_scale=mem_scale)
    if isinstance(method, str):
        method = resolve_method(method)
    simulator = SampledSimulator(
        workload, regimen, configs,
        warmup_prefix=warmup_prefix,
        detail_ramp=detail_ramp,
        telemetry=telemetry,
    )
    return simulator.run(method)


def true_run(workload_name: str, design=None, *, configs=None):
    """The full-trace detailed baseline for `workload_name` under a
    design (scale presets only), cached per process."""
    design = _resolve_design(design)
    if not isinstance(design, ExperimentScale):
        raise TypeError("true_run needs an ExperimentScale design "
                        "(a preset name or instance)")
    return true_run_for(workload_name, design, configs)


def run_matrix(methods=None, workloads=PAPER_WORKLOADS, design=None, *,
               configs=None, jobs=None, cache=None, progress=None):
    """Run a methods-by-workloads grid through the parallel harness.

    `methods` is a list of registry names (``None`` means the full
    sixteen-method Table 2 suite); names are validated before any
    worker process launches.  `design` must resolve to an
    :class:`~repro.harness.ExperimentScale`.  `cache` accepts a
    :class:`~repro.harness.ResultCache`, a directory path, or ``None``
    (the ``REPRO_RESULT_CACHE`` environment default).  Returns
    ``{workload_name: WorkloadExperiment}``.
    """
    design = _resolve_design(design)
    if not isinstance(design, ExperimentScale):
        raise TypeError("run_matrix needs an ExperimentScale design "
                        "(a preset name or instance)")
    if methods is None:
        from .warmup import paper_method_suite

        factory = paper_method_suite
    else:
        factory = _RegistrySuite(tuple(methods))
    return run_matrix_parallel(
        factory,
        tuple(workloads),
        scale=design,
        configs=configs,
        jobs=jobs,
        cache=resolve_cache(cache),
        progress=progress,
    )
