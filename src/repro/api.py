"""Stable high-level facade for sampled-simulation experiments.

Three levels of entry cover the common workflows:

- :func:`simulate` — one workload, one warm-up method, one sampled run::

      from repro.api import simulate
      result = simulate("gcc", method="rsr")
      print(result.estimate.mean)

- :func:`run_matrix` — a methods-by-workloads grid with the parallel
  harness (executor fan-out, optional on-disk result cache)::

      from repro.api import run_matrix
      grid = run_matrix(methods=["S$BP", "R$BP (100%)"],
                        workloads=["gcc", "twolf"], design="ci")

- :class:`RunRequest` / :func:`submit` / :func:`gather` — declarative
  experiment requests with JSON-able, content-addressed results; the
  same objects the long-running simulation service
  (:mod:`repro.service`) accepts over HTTP::

      from repro.api import RunRequest, gather, submit
      handles = [submit(RunRequest(kind="sample", workloads=("gcc",))),
                 submit(RunRequest(kind="matrix", methods=("rsr",)))]
      results = gather(handles, executor="pool")

Methods are named: anything registered in the warm-up registry resolves,
including the case-insensitive aliases ``"rsr"`` (R$BP at 100%) and
``"smarts"`` (S$BP); pass a :class:`~repro.warmup.WarmupMethod` instance
to :func:`simulate` for full control.  The *design* selects the sampling
regimen and microarchitecture: a scale preset name (``"ci"``,
``"bench"``, ``"default"``, ``"full"``), an
:class:`~repro.harness.ExperimentScale`, a bare
:class:`~repro.sampling.SamplingRegimen` (paper-default
microarchitecture, no warm-up prefix), or ``None`` for the
``REPRO_EXPERIMENT_SCALE`` environment default.  ``RunRequest.design``
is restricted to preset names so requests stay JSON-serialisable.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace

from .harness.cache import ResultCache, code_version, resolve_cache
from .harness.experiment import (
    ExperimentScale,
    SCALES,
    scale_from_env,
    true_run_for,
)
from .harness.parallel import execute_matrix, map_tasks
from .sampling import SampledRunResult, SampledSimulator, SamplingRegimen
from .warmup import WarmupMethod, method_factory, resolve_method
from .workloads import PAPER_WORKLOADS, Workload, build_workload


def _resolve_design(design) -> ExperimentScale | SamplingRegimen:
    if design is None:
        return scale_from_env()
    if isinstance(design, str):
        try:
            return SCALES[design]
        except KeyError:
            known = ", ".join(sorted(SCALES))
            raise ValueError(
                f"unknown design {design!r}; known: {known}"
            ) from None
    if isinstance(design, (ExperimentScale, SamplingRegimen)):
        return design
    raise TypeError(
        "design must be a scale name, ExperimentScale, SamplingRegimen, "
        f"or None, not {type(design).__name__}")


class _RegistrySuite:
    """Picklable method-suite factory resolving registry names per call.

    The parallel harness ships the factory to worker processes, so it
    must be a module-level class (closures do not pickle) and must
    re-resolve names on the worker side (methods themselves may not
    pickle).  Names are validated eagerly at construction so a typo
    fails before any process fan-out.
    """

    def __init__(self, names: tuple[str, ...]) -> None:
        for name in names:
            method_factory(name)
        self.names = tuple(names)

    def __call__(self) -> list[WarmupMethod]:
        return [resolve_method(name) for name in self.names]


def simulate(workload, method="rsr", design=None, *,
             configs=None, telemetry=None) -> SampledRunResult:
    """Run one sampled simulation and return its
    :class:`~repro.sampling.SampledRunResult`.

    `workload` is a name or a :class:`~repro.workloads.Workload`;
    `method` a registry name/alias or a ready
    :class:`~repro.warmup.WarmupMethod` instance; `design` as described
    in the module docstring.  `configs` overrides the design's
    microarchitecture; `telemetry` is passed through to
    :class:`~repro.sampling.SampledSimulator`.
    """
    design = _resolve_design(design)
    if isinstance(design, ExperimentScale):
        regimen = design.regimen()
        configs = configs if configs is not None else design.configs()
        warmup_prefix = design.warmup_prefix
        detail_ramp = design.detail_ramp
        mem_scale = design.mem_scale
    else:
        regimen = design
        warmup_prefix = 0
        detail_ramp = 0
        mem_scale = 1
    if not isinstance(workload, Workload):
        workload = build_workload(workload, mem_scale=mem_scale)
    if isinstance(method, str):
        method = resolve_method(method)
    simulator = SampledSimulator(
        workload, regimen, configs,
        warmup_prefix=warmup_prefix,
        detail_ramp=detail_ramp,
        telemetry=telemetry,
    )
    return simulator.run(method)


def true_run(workload_name: str, design=None, *, configs=None):
    """The full-trace detailed baseline for `workload_name` under a
    design (scale presets only), cached per process."""
    design = _resolve_design(design)
    if not isinstance(design, ExperimentScale):
        raise TypeError("true_run needs an ExperimentScale design "
                        "(a preset name or instance)")
    return true_run_for(workload_name, design, configs)


def run_matrix(methods=None, workloads=PAPER_WORKLOADS, design=None, *,
               configs=None, jobs=None, cache=None, progress=None,
               cluster_jobs=1, executor=None):
    """Run a methods-by-workloads grid through the parallel harness.

    `methods` is a list of registry names (``None`` means the full
    sixteen-method Table 2 suite); names are validated before any
    worker process launches.  `design` must resolve to an
    :class:`~repro.harness.ExperimentScale`.  `cache` accepts a
    :class:`~repro.harness.ResultCache`, a directory path, or ``None``
    (the ``REPRO_RESULT_CACHE`` environment default).  `executor` names
    a registered fan-out backend (see ``repro executors``) or passes an
    :class:`~repro.harness.Executor` instance; ``None`` defers to
    ``REPRO_EXECUTOR`` / the default process pool.  Returns
    ``{workload_name: WorkloadExperiment}``.
    """
    design = _resolve_design(design)
    if not isinstance(design, ExperimentScale):
        raise TypeError("run_matrix needs an ExperimentScale design "
                        "(a preset name or instance)")
    if methods is None:
        from .warmup import paper_method_suite

        factory = paper_method_suite
    else:
        factory = _RegistrySuite(tuple(methods))
    return execute_matrix(
        factory,
        tuple(workloads),
        scale=design,
        configs=configs,
        jobs=jobs,
        cache=resolve_cache(cache),
        progress=progress,
        cluster_jobs=cluster_jobs,
        executor=executor,
    )


# ---------------------------------------------------------------------------
# Declarative requests: the JSON-able surface shared by submit()/gather()
# and the simulation service.
# ---------------------------------------------------------------------------

_REQUEST_KINDS = ("sample", "matrix", "audit")
_AUDIT_SOURCES = ("auto", "raw", "compacted")

#: matrix_rows() columns whose values depend on wall-clock timing, not
#: on the simulated machine.  Request payloads are content-addressed
#: (identical request -> identical payload, byte for byte, across
#: backends and cache hits), so timing lives on RunResult.wall_seconds
#: instead of inside the payload.
_TIMING_COLUMNS = frozenset({
    "wall_seconds", "cold_skip_seconds", "reconstruct_seconds",
    "hot_sim_seconds", "trace_records",
})


@dataclass(frozen=True)
class RunRequest:
    """One declarative, JSON-serialisable experiment request.

    `kind` selects the workflow: ``"sample"`` (per-workload sampled
    runs, one row per method), ``"matrix"`` (the methods-by-workloads
    grid), or ``"audit"`` (accuracy-audit probes, JSON report per
    workload).  `design` is a scale preset *name* (``None`` resolves
    the ``REPRO_EXPERIMENT_SCALE`` default at construction, so the
    request — and its fingerprint — is always concrete).  Empty
    `methods` means the kind's default suite; empty `workloads` means
    the paper's nine.  `source` pins the audit skip-log source.
    """

    kind: str = "sample"
    workloads: tuple = ()
    methods: tuple = ()
    design: "str | None" = None
    cluster_jobs: int = 1
    jobs: "int | None" = None
    source: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in _REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}; "
                f"known: {', '.join(_REQUEST_KINDS)}")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "methods", tuple(self.methods))
        if self.design is None:
            object.__setattr__(self, "design", scale_from_env().name)
        if self.design not in SCALES:
            known = ", ".join(sorted(SCALES))
            raise ValueError(
                f"unknown design {self.design!r}; known: {known}")
        from .workloads import available_workloads

        known_workloads = available_workloads()
        for name in self.workloads:
            if name not in known_workloads:
                raise ValueError(
                    f"unknown workload {name!r}; "
                    f"known: {', '.join(known_workloads)}")
        for name in self.methods:
            method_factory(name)  # readable registry ValueError
        if not isinstance(self.cluster_jobs, int) or self.cluster_jobs < 0:
            raise ValueError(
                f"cluster_jobs must be an integer >= 0, "
                f"got {self.cluster_jobs!r}")
        if self.jobs is not None and (
                not isinstance(self.jobs, int) or self.jobs < 0):
            raise ValueError(
                f"jobs must be an integer >= 0 or None, got {self.jobs!r}")
        if self.source not in _AUDIT_SOURCES:
            raise ValueError(
                f"unknown audit source {self.source!r}; "
                f"known: {', '.join(_AUDIT_SOURCES)}")

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> dict:
        """A plain-JSON rendering (the service's wire format)."""
        return {
            "kind": self.kind,
            "workloads": list(self.workloads),
            "methods": list(self.methods),
            "design": self.design,
            "cluster_jobs": self.cluster_jobs,
            "jobs": self.jobs,
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunRequest":
        """The inverse of :meth:`to_payload`, with readable errors."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"request payload must be a JSON object, "
                f"got {type(payload).__name__}")
        known = {"kind", "workloads", "methods", "design",
                 "cluster_jobs", "jobs", "source"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown request field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**{name: payload[name] for name in known
                      if name in payload})

    def fingerprint(self) -> str:
        """Content hash of the request plus the code version.

        Two requests share a fingerprint exactly when they are
        guaranteed to produce byte-identical payloads, which makes the
        fingerprint a safe :class:`~repro.harness.ResultCache` key.
        Execution knobs that cannot change results (`jobs`,
        `cluster_jobs` — sharded folds are bit-identical to serial)
        are excluded; the ambient checkpoint store
        (``REPRO_CHECKPOINT_STORE``) is likewise absent because store
        hits materialise exactly what a live Phase A scan would
        produce — the payload is byte-identical either way.
        """
        identity = self.to_payload()
        identity.pop("jobs")
        identity.pop("cluster_jobs")
        identity["code"] = code_version()
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def cache_key(self) -> str:
        return f"request-{self.fingerprint()}"

    def resolved_workloads(self) -> tuple:
        return self.workloads or tuple(PAPER_WORKLOADS)

    def resolved_methods(self) -> tuple:
        """The concrete method-name suite for this request's kind."""
        if self.methods:
            return self.methods
        if self.kind == "matrix":
            from .warmup import paper_method_names

            return tuple(paper_method_names())
        return ("S$BP", "R$BP (100%)")


@dataclass(frozen=True)
class RunResult:
    """The outcome of one :class:`RunRequest`.

    `payload` is plain JSON data whose shape depends on the request
    kind (see :func:`execute_request`); it is deterministic for a given
    request and code version, so `cached` results compare equal to
    freshly computed ones.  `wall_seconds` measures this call (near
    zero for cache hits).
    """

    request: RunRequest
    payload: dict
    cached: bool = False
    wall_seconds: float = 0.0

    def to_payload(self) -> dict:
        return {
            "request": self.request.to_payload(),
            "payload": self.payload,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
        }


def _sample_rows(request: RunRequest) -> list[dict]:
    rows = []
    for workload_name in request.resolved_workloads():
        true_run = true_run_for(workload_name, SCALES[request.design])
        for method_name in request.resolved_methods():
            run = simulate(
                workload_name, method=method_name, design=request.design,
            )
            rows.append({
                "workload": workload_name,
                "method": run.method_name,
                "true_ipc": true_run.ipc,
                "estimated_ipc": run.estimate.mean,
                "std_error": run.estimate.std_error,
                "ci_halfwidth": run.estimate.error_bound,
                "relative_error": run.relative_error(true_run.ipc),
                "ci_pass": run.passes_confidence_test(true_run.ipc),
                "cluster_ipcs": list(run.cluster_ipcs),
                "cost": run.cost.as_dict(),
            })
    return rows


def _matrix_rows(request: RunRequest, *, executor=None,
                 cache=None, progress=None) -> list[dict]:
    from .harness.export import matrix_rows

    grid = run_matrix(
        methods=request.methods or None,
        workloads=request.resolved_workloads(),
        design=request.design,
        jobs=request.jobs,
        cache=cache if cache is not None else "off",
        progress=progress,
        cluster_jobs=request.cluster_jobs,
        executor=executor,
    )
    rows = []
    for row in matrix_rows(grid):
        rows.append({key: value for key, value in row.items()
                     if key not in _TIMING_COLUMNS})
    return rows


def _audit_reports(request: RunRequest) -> dict:
    import os

    from .harness.export import audit_to_json
    from .telemetry import Telemetry, merge_snapshots

    overrides = {"REPRO_AUDIT": "1"}
    if request.source != "auto":
        overrides["REPRO_LOG_COMPACTION"] = request.source
    saved = {name: os.environ.get(name) for name in overrides}
    reports = {}
    try:
        os.environ.update(overrides)
        for workload_name in request.resolved_workloads():
            snapshots = []
            for method_name in request.resolved_methods():
                run = simulate(workload_name, method=method_name,
                               design=request.design, telemetry=Telemetry)
                snapshots.append(run.extra.get("telemetry"))
            merged = merge_snapshots(snapshots)
            reports[workload_name] = json.loads(audit_to_json(merged))
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return reports


def execute_request(request: RunRequest, *, executor=None,
                    cache=None, progress=None) -> RunResult:
    """Execute one :class:`RunRequest` and return its :class:`RunResult`.

    This is the single execution path shared by :func:`gather` and the
    simulation service.  `cache` (a :class:`~repro.harness.ResultCache`,
    a directory path, or ``None`` for the ``REPRO_RESULT_CACHE``
    default) is read through first: a hit returns the stored payload
    without re-running anything — in particular without re-entering
    Phase B — and a miss stores the fresh payload under the request's
    content-addressed :meth:`~RunRequest.cache_key`.
    """
    start = time.perf_counter()
    cache = resolve_cache(cache)
    key = request.cache_key()
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return RunResult(request=request, payload=hit, cached=True,
                             wall_seconds=time.perf_counter() - start)
    if request.kind == "sample":
        payload = {"kind": "sample", "design": request.design,
                   "rows": _sample_rows(request)}
    elif request.kind == "matrix":
        payload = {"kind": "matrix", "design": request.design,
                   "rows": _matrix_rows(request, executor=executor,
                                        cache=cache, progress=progress)}
    else:
        payload = {"kind": "audit", "design": request.design,
                   "source": request.source,
                   "reports": _audit_reports(request)}
    if cache is not None:
        cache.put(key, payload)
    return RunResult(request=request, payload=payload, cached=False,
                     wall_seconds=time.perf_counter() - start)


@dataclass
class RunHandle:
    """A submitted request awaiting :func:`gather` (or lazy execution)."""

    request: RunRequest
    cache_setting: "str | None" = None
    _result: "RunResult | None" = field(default=None, repr=False)

    def done(self) -> bool:
        return self._result is not None

    def result(self, *, executor=None) -> RunResult:
        """The request's result, executing inline on first access."""
        if self._result is None:
            self._result = execute_request(
                self.request, executor=executor,
                cache=self.cache_setting,
            )
        return self._result


def submit(request: RunRequest, *, cache=None) -> RunHandle:
    """Record a request for a later :func:`gather` fan-out.

    `cache` accepts a :class:`~repro.harness.ResultCache` (its root
    directory is forwarded to workers), a directory path, ``"off"``, or
    ``None`` for the environment default.
    """
    if isinstance(cache, ResultCache):
        cache = str(cache.root)
    return RunHandle(request=request, cache_setting=cache)


def _gather_task(task) -> RunResult:
    """Module-level worker for :func:`gather` (must pickle)."""
    payload, cache_setting = task
    return execute_request(RunRequest.from_payload(payload),
                           cache=cache_setting)


def gather(handles, *, executor=None, jobs=None) -> list[RunResult]:
    """Execute submitted handles through an executor backend.

    Results come back in submission order regardless of completion
    order (the executor protocol's deterministic-fold guarantee).
    Handles that already have results keep them; only pending requests
    fan out.  `executor` is a backend name, an
    :class:`~repro.harness.Executor` instance, or ``None`` for the
    ``REPRO_EXECUTOR`` / default resolution.
    """
    handles = list(handles)
    pending = [i for i, handle in enumerate(handles) if not handle.done()]
    if pending:
        tasks = [
            (handles[i].request.to_payload(), handles[i].cache_setting)
            for i in pending
        ]
        if jobs is None:
            jobs = len(tasks)
        results = map_tasks(_gather_task, tasks, jobs, executor=executor)
        for i, result in zip(pending, results):
            handles[i]._result = result
    return [handle.result() for handle in handles]
