"""Programmatic construction of :class:`~repro.isa.program.Program` objects.

The workload generators build programs through this API rather than by
emitting assembly text.  Labels may be referenced before they are defined;
all references are resolved in :meth:`ProgramBuilder.build`.
"""

from __future__ import annotations

from .instructions import Instruction
from .opcodes import Opcode
from .program import (
    Program,
    DEFAULT_CODE_BASE,
    DEFAULT_DATA_BASE,
    DEFAULT_STACK_BASE,
)


class UndefinedLabelError(KeyError):
    """A label was referenced but never defined before build()."""


class ProgramBuilder:
    """Incrementally assemble a program with forward label references.

    Example
    -------
    >>> b = ProgramBuilder("demo")
    >>> b.label("loop")
    >>> b.addi(1, 1, 1)
    >>> b.bne(1, 2, "loop")
    >>> b.halt()
    >>> program = b.build()
    """

    def __init__(
        self,
        name: str = "anonymous",
        code_base: int = DEFAULT_CODE_BASE,
        data_base: int = DEFAULT_DATA_BASE,
        stack_base: int = DEFAULT_STACK_BASE,
    ) -> None:
        self.name = name
        self.code_base = code_base
        self.data_base = data_base
        self.stack_base = stack_base
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._entry_label: str | None = None

    # -- label handling -----------------------------------------------------

    def label(self, name: str) -> str:
        """Define `name` at the current position and return it."""
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)
        return name

    def here(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def entry(self, label: str) -> None:
        """Set the program entry point to `label`."""
        self._entry_label = label

    def _target(self, where: int | str) -> int:
        """Resolve `where` now if possible, else record a fixup."""
        if isinstance(where, int):
            return where
        if where in self._labels:
            return self._labels[where]
        self._fixups.append((len(self._instructions), where))
        return -1

    # -- emission -----------------------------------------------------------

    def emit(self, instruction: Instruction) -> int:
        """Append a pre-built instruction; return its index."""
        self._instructions.append(instruction)
        return len(self._instructions) - 1

    def _emit(self, opcode: Opcode, rd=0, rs1=0, rs2=0, imm=0, target=-1) -> int:
        return self.emit(Instruction(opcode, rd, rs1, rs2, imm, target))

    def nop(self) -> int:
        return self._emit(Opcode.NOP)

    def halt(self) -> int:
        return self._emit(Opcode.HALT)

    # ALU register-register.
    def add(self, rd, rs1, rs2):
        return self._emit(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._emit(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._emit(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._emit(Opcode.DIV, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._emit(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._emit(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._emit(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._emit(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._emit(Opcode.SRL, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._emit(Opcode.SLT, rd, rs1, rs2)

    # ALU register-immediate.
    def addi(self, rd, rs1, imm):
        return self._emit(Opcode.ADDI, rd, rs1, imm=imm)

    def andi(self, rd, rs1, imm):
        return self._emit(Opcode.ANDI, rd, rs1, imm=imm)

    def ori(self, rd, rs1, imm):
        return self._emit(Opcode.ORI, rd, rs1, imm=imm)

    def xori(self, rd, rs1, imm):
        return self._emit(Opcode.XORI, rd, rs1, imm=imm)

    def slti(self, rd, rs1, imm):
        return self._emit(Opcode.SLTI, rd, rs1, imm=imm)

    def slli(self, rd, rs1, imm):
        return self._emit(Opcode.SLLI, rd, rs1, imm=imm)

    def srli(self, rd, rs1, imm):
        return self._emit(Opcode.SRLI, rd, rs1, imm=imm)

    def li(self, rd, imm):
        return self._emit(Opcode.LI, rd, imm=imm)

    # Memory.
    def load(self, rd, rs1, imm=0):
        return self._emit(Opcode.LOAD, rd, rs1, imm=imm)

    def store(self, rs2, rs1, imm=0):
        """mem[rs1 + imm] <- rs2 (note operand order: value, base)."""
        return self._emit(Opcode.STORE, rs1=rs1, rs2=rs2, imm=imm)

    # Control flow.
    def beq(self, rs1, rs2, where):
        return self._emit(Opcode.BEQ, rs1=rs1, rs2=rs2,
                          target=self._target(where))

    def bne(self, rs1, rs2, where):
        return self._emit(Opcode.BNE, rs1=rs1, rs2=rs2,
                          target=self._target(where))

    def blt(self, rs1, rs2, where):
        return self._emit(Opcode.BLT, rs1=rs1, rs2=rs2,
                          target=self._target(where))

    def bge(self, rs1, rs2, where):
        return self._emit(Opcode.BGE, rs1=rs1, rs2=rs2,
                          target=self._target(where))

    def jmp(self, where):
        return self._emit(Opcode.JMP, target=self._target(where))

    def jr(self, rs1):
        return self._emit(Opcode.JR, rs1=rs1)

    def call(self, where):
        return self._emit(Opcode.CALL, target=self._target(where))

    def callr(self, rs1):
        return self._emit(Opcode.CALLR, rs1=rs1)

    def ret(self):
        return self._emit(Opcode.RET)

    # -- finalisation ---------------------------------------------------------

    def build(self) -> Program:
        """Resolve fixups and return the finished :class:`Program`."""
        for index, label in self._fixups:
            if label not in self._labels:
                raise UndefinedLabelError(label)
            old = self._instructions[index]
            self._instructions[index] = Instruction(
                old.opcode, old.rd, old.rs1, old.rs2, old.imm,
                self._labels[label],
            )
        entry = 0
        if self._entry_label is not None:
            if self._entry_label not in self._labels:
                raise UndefinedLabelError(self._entry_label)
            entry = self._labels[self._entry_label]
        return Program(
            self._instructions,
            name=self.name,
            entry=entry,
            code_base=self.code_base,
            data_base=self.data_base,
            stack_base=self.stack_base,
            labels=self._labels,
        )
