"""A small text assembler for the synthetic RISC ISA.

Used by the examples and tests; the workload generators use the
:class:`~repro.isa.builder.ProgramBuilder` API directly.

Syntax
------
- One instruction or label per line; ``#`` starts a comment.
- Labels end with ``:`` and may share a line with an instruction.
- Registers are written ``r0``..``r31``; immediates are decimal or ``0x`` hex.
- Directives: ``.entry <label>`` sets the program entry point,
  ``.name <text>`` names the program.

Example
-------
    .name countdown
    .entry start
    start:  li   r1, 10
    loop:   addi r1, r1, -1
            bne  r1, r0, loop
            halt
"""

from __future__ import annotations

from .builder import ProgramBuilder
from .program import Program


class AssemblyError(ValueError):
    """Raised for any syntax or semantic error in assembly text."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_REG_OPS = {"add", "sub", "mul", "div", "and", "or", "xor", "sll", "srl",
            "slt"}
_IMM_OPS = {"addi", "andi", "ori", "xori", "slti", "slli", "srli"}
_BRANCH_OPS = {"beq", "bne", "blt", "bge"}


def _parse_register(token: str, line_number: int) -> int:
    token = token.strip().rstrip(",")
    if not token.startswith("r"):
        raise AssemblyError(line_number, f"expected register, got {token!r}")
    try:
        value = int(token[1:])
    except ValueError:
        raise AssemblyError(line_number, f"bad register {token!r}") from None
    if not 0 <= value <= 31:
        raise AssemblyError(line_number, f"register {token!r} out of range")
    return value


def _parse_immediate(token: str, line_number: int) -> int:
    token = token.strip().rstrip(",")
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_number, f"bad immediate {token!r}") from None


def assemble(text: str) -> Program:
    """Assemble `text` into a :class:`Program`."""
    builder = ProgramBuilder()
    name = "assembled"
    entry_label: str | None = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            argument = parts[1].strip() if len(parts) > 1 else ""
            if directive == ".name":
                name = argument or name
            elif directive == ".entry":
                if not argument:
                    raise AssemblyError(line_number, ".entry needs a label")
                entry_label = argument
            else:
                raise AssemblyError(
                    line_number, f"unknown directive {directive!r}"
                )
            continue

        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label or " " in label:
                raise AssemblyError(line_number, f"bad label {label!r}")
            try:
                builder.label(label)
            except ValueError as exc:
                raise AssemblyError(line_number, str(exc)) from None
            line = rest.strip()
        if not line:
            continue

        parts = line.replace(",", " ").split()
        mnemonic, operands = parts[0].lower(), parts[1:]
        _emit(builder, mnemonic, operands, line_number)

    if entry_label is not None:
        builder.entry(entry_label)
    builder.name = name
    try:
        return builder.build()
    except KeyError as exc:
        raise AssemblyError(0, f"undefined label {exc.args[0]!r}") from None


def _expect(operands: list[str], count: int, mnemonic: str,
            line_number: int) -> None:
    if len(operands) != count:
        raise AssemblyError(
            line_number,
            f"{mnemonic} expects {count} operands, got {len(operands)}",
        )


def _emit(builder: ProgramBuilder, mnemonic: str, operands: list[str],
          line_number: int) -> None:
    reg = lambda i: _parse_register(operands[i], line_number)  # noqa: E731
    imm = lambda i: _parse_immediate(operands[i], line_number)  # noqa: E731

    if mnemonic in _REG_OPS:
        _expect(operands, 3, mnemonic, line_number)
        method = getattr(
            builder, mnemonic + "_" if mnemonic in ("and", "or") else mnemonic
        )
        method(reg(0), reg(1), reg(2))
    elif mnemonic in _IMM_OPS:
        _expect(operands, 3, mnemonic, line_number)
        getattr(builder, mnemonic)(reg(0), reg(1), imm(2))
    elif mnemonic == "li":
        _expect(operands, 2, mnemonic, line_number)
        builder.li(reg(0), imm(1))
    elif mnemonic == "load":
        _expect(operands, 3, mnemonic, line_number)
        builder.load(reg(0), reg(1), imm(2))
    elif mnemonic == "store":
        _expect(operands, 3, mnemonic, line_number)
        builder.store(reg(0), reg(1), imm(2))
    elif mnemonic in _BRANCH_OPS:
        _expect(operands, 3, mnemonic, line_number)
        getattr(builder, mnemonic)(reg(0), reg(1), operands[2])
    elif mnemonic == "jmp":
        _expect(operands, 1, mnemonic, line_number)
        builder.jmp(operands[0])
    elif mnemonic == "jr":
        _expect(operands, 1, mnemonic, line_number)
        builder.jr(reg(0))
    elif mnemonic == "call":
        _expect(operands, 1, mnemonic, line_number)
        builder.call(operands[0])
    elif mnemonic == "callr":
        _expect(operands, 1, mnemonic, line_number)
        builder.callr(reg(0))
    elif mnemonic == "ret":
        _expect(operands, 0, mnemonic, line_number)
        builder.ret()
    elif mnemonic == "nop":
        _expect(operands, 0, mnemonic, line_number)
        builder.nop()
    elif mnemonic == "halt":
        _expect(operands, 0, mnemonic, line_number)
        builder.halt()
    else:
        raise AssemblyError(line_number, f"unknown mnemonic {mnemonic!r}")
