"""Instruction representation for the synthetic RISC ISA.

Instructions are immutable once built.  Commonly consulted classification
flags (is_load, is_cond_branch, ...) are computed once at construction time
and stored as plain attributes so the simulators' inner loops never pay for
enum lookups.
"""

from __future__ import annotations

from .opcodes import (
    Opcode,
    is_alu,
    is_conditional_branch,
    is_control,
    EXECUTION_LATENCY,
)


class Instruction:
    """One decoded instruction.

    Parameters
    ----------
    opcode:
        The operation to perform.
    rd:
        Destination register index (0 if unused).  Writes to r0 are ignored.
    rs1, rs2:
        Source register indices (0 if unused; r0 always reads zero).
    imm:
        Immediate operand (0 if unused).
    target:
        Resolved control-transfer target, as an *instruction index* into the
        owning :class:`~repro.isa.program.Program` (-1 if unused).
    """

    __slots__ = (
        "opcode", "rd", "rs1", "rs2", "imm", "target",
        "is_load", "is_store", "is_mem",
        "is_cond_branch", "is_control", "is_call", "is_ret",
        "is_indirect", "is_alu", "latency",
    )

    def __init__(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        target: int = -1,
    ) -> None:
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target

        self.is_load = opcode is Opcode.LOAD
        self.is_store = opcode is Opcode.STORE
        self.is_mem = self.is_load or self.is_store
        self.is_cond_branch = is_conditional_branch(opcode)
        self.is_control = is_control(opcode)
        self.is_call = opcode is Opcode.CALL or opcode is Opcode.CALLR
        self.is_ret = opcode is Opcode.RET
        self.is_indirect = opcode in (Opcode.JR, Opcode.CALLR, Opcode.RET)
        self.is_alu = is_alu(opcode)
        self.latency = EXECUTION_LATENCY[opcode]

    def destination(self) -> int | None:
        """Register written by this instruction, or None.

        Writes to r0 are architectural no-ops and reported as None so the
        timing model never creates a dependence on them.
        """
        if self.is_call:
            return 31  # link register
        if self.is_store or self.is_control or self.opcode is Opcode.NOP \
                or self.opcode is Opcode.HALT:
            return None
        return self.rd if self.rd != 0 else None

    def sources(self) -> tuple[int, ...]:
        """Registers read by this instruction (r0 omitted)."""
        op = self.opcode
        regs: tuple[int, ...]
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
                  Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT,
                  Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            regs = (self.rs1, self.rs2)
        elif op is Opcode.STORE:
            regs = (self.rs1, self.rs2)
        elif op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                    Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.LOAD,
                    Opcode.JR, Opcode.CALLR):
            regs = (self.rs1,)
        elif op is Opcode.RET:
            regs = (31,)
        else:
            regs = ()
        return tuple(r for r in regs if r != 0)

    def __repr__(self) -> str:
        return (
            f"Instruction({self.opcode.name}, rd={self.rd}, rs1={self.rs1}, "
            f"rs2={self.rs2}, imm={self.imm}, target={self.target})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.opcode == other.opcode
            and self.rd == other.rd
            and self.rs1 == other.rs1
            and self.rs2 == other.rs2
            and self.imm == other.imm
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash(
            (self.opcode, self.rd, self.rs1, self.rs2, self.imm, self.target)
        )
