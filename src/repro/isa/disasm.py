"""Disassembler: render instructions and programs as assembly text.

The inverse of :mod:`repro.isa.assembler`, used for debugging workload
generators and inspecting reconstruction traces.  Round-trips through
the assembler for every instruction kind (property-tested).
"""

from __future__ import annotations

from .instructions import Instruction
from .opcodes import Opcode
from .program import Program

_REG_OPS = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
    Opcode.DIV: "div", Opcode.AND: "and", Opcode.OR: "or",
    Opcode.XOR: "xor", Opcode.SLL: "sll", Opcode.SRL: "srl",
    Opcode.SLT: "slt",
}
_IMM_OPS = {
    Opcode.ADDI: "addi", Opcode.ANDI: "andi", Opcode.ORI: "ori",
    Opcode.XORI: "xori", Opcode.SLTI: "slti", Opcode.SLLI: "slli",
    Opcode.SRLI: "srli",
}
_BRANCH_OPS = {
    Opcode.BEQ: "beq", Opcode.BNE: "bne", Opcode.BLT: "blt",
    Opcode.BGE: "bge",
}


def format_instruction(inst: Instruction,
                       target_label: str | None = None) -> str:
    """One instruction as assembler-accepted text.

    `target_label` substitutes a symbolic name for the numeric target of
    control transfers (the assembler requires labels, so round-tripping
    uses generated ones).
    """
    op = inst.opcode
    if op in _REG_OPS:
        return f"{_REG_OPS[op]} r{inst.rd}, r{inst.rs1}, r{inst.rs2}"
    if op in _IMM_OPS:
        return f"{_IMM_OPS[op]} r{inst.rd}, r{inst.rs1}, {inst.imm}"
    if op is Opcode.LI:
        return f"li r{inst.rd}, {inst.imm}"
    if op is Opcode.LOAD:
        return f"load r{inst.rd}, r{inst.rs1}, {inst.imm}"
    if op is Opcode.STORE:
        return f"store r{inst.rs2}, r{inst.rs1}, {inst.imm}"
    if op in _BRANCH_OPS:
        target = target_label or f"L{inst.target}"
        return f"{_BRANCH_OPS[op]} r{inst.rs1}, r{inst.rs2}, {target}"
    if op is Opcode.JMP:
        return f"jmp {target_label or f'L{inst.target}'}"
    if op is Opcode.CALL:
        return f"call {target_label or f'L{inst.target}'}"
    if op is Opcode.JR:
        return f"jr r{inst.rs1}"
    if op is Opcode.CALLR:
        return f"callr r{inst.rs1}"
    if op is Opcode.RET:
        return "ret"
    if op is Opcode.NOP:
        return "nop"
    if op is Opcode.HALT:
        return "halt"
    raise ValueError(f"unknown opcode {op!r}")  # pragma: no cover


def disassemble(program: Program, start: int = 0,
                end: int | None = None) -> str:
    """A listing of `program` with generated labels at branch targets.

    The output assembles back into an equivalent program (for the full
    range; partial ranges are for human inspection only).
    """
    end = len(program) if end is None else min(end, len(program))
    targets = {
        inst.target
        for inst in program.instructions
        if inst.is_control and inst.target >= 0
    }
    lines = []
    if start == 0 and program.entry != 0:
        targets.add(program.entry)
        lines.append(f".entry L{program.entry}")
    for index in range(start, end):
        label = f"L{index}:" if index in targets else ""
        text = format_instruction(program.instructions[index])
        lines.append(f"{label:8s}{text}")
    return "\n".join(lines)
