"""Synthetic RISC instruction set: the ISA executed by both simulators."""

from .opcodes import (
    Opcode,
    LINK_REGISTER,
    STACK_POINTER,
    NUM_REGISTERS,
    EXECUTION_LATENCY,
    is_alu,
    is_conditional_branch,
    is_control,
    is_memory,
)
from .instructions import Instruction
from .program import (
    Program,
    BasicBlock,
    DEFAULT_CODE_BASE,
    DEFAULT_DATA_BASE,
    DEFAULT_STACK_BASE,
)
from .builder import ProgramBuilder, UndefinedLabelError
from .assembler import assemble, AssemblyError
from .disasm import disassemble, format_instruction

__all__ = [
    "Opcode",
    "LINK_REGISTER",
    "STACK_POINTER",
    "NUM_REGISTERS",
    "EXECUTION_LATENCY",
    "is_alu",
    "is_conditional_branch",
    "is_control",
    "is_memory",
    "Instruction",
    "Program",
    "BasicBlock",
    "DEFAULT_CODE_BASE",
    "DEFAULT_DATA_BASE",
    "DEFAULT_STACK_BASE",
    "ProgramBuilder",
    "UndefinedLabelError",
    "assemble",
    "AssemblyError",
    "disassemble",
    "format_instruction",
]
