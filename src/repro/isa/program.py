"""Program container: a decoded instruction image plus code-layout metadata.

A :class:`Program` is what the functional and timing simulators execute.
Instruction *indices* are the unit of control flow (``target`` fields point
at indices); *byte addresses* are derived from the index for the instruction
cache via :attr:`Program.code_base` and :attr:`Program.instruction_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction
from .opcodes import Opcode


#: Default base byte address of the code segment.
DEFAULT_CODE_BASE = 0x0040_0000

#: Default base byte address of the data segment.
DEFAULT_DATA_BASE = 0x1000_0000

#: Default base byte address of the stack segment (grows downward).
DEFAULT_STACK_BASE = 0x7FFF_0000


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    Attributes
    ----------
    start, end:
        Instruction-index range [start, end) covered by the block.
    successors:
        Instruction indices of possible successor block starts.
    """

    start: int
    end: int
    successors: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start


class Program:
    """An executable image for the synthetic ISA.

    Parameters
    ----------
    instructions:
        The decoded instruction stream; ``target`` fields must already be
        resolved to instruction indices.
    name:
        Human-readable workload name (used in reports).
    entry:
        Instruction index where execution begins.
    code_base:
        Byte address of instruction index 0.
    data_base, stack_base:
        Segment bases the workload generators use when initialising state.
    """

    instruction_bytes = 4

    def __init__(
        self,
        instructions: list[Instruction],
        name: str = "anonymous",
        entry: int = 0,
        code_base: int = DEFAULT_CODE_BASE,
        data_base: int = DEFAULT_DATA_BASE,
        stack_base: int = DEFAULT_STACK_BASE,
        labels: dict[str, int] | None = None,
    ) -> None:
        if not instructions:
            raise ValueError("a program must contain at least one instruction")
        if not 0 <= entry < len(instructions):
            raise ValueError(f"entry point {entry} out of range")
        self.instructions = instructions
        self.name = name
        self.entry = entry
        self.code_base = code_base
        self.data_base = data_base
        self.stack_base = stack_base
        self.labels = dict(labels or {})
        self._validate_targets()

    def _validate_targets(self) -> None:
        n = len(self.instructions)
        for index, inst in enumerate(self.instructions):
            needs_target = inst.opcode in (
                Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                Opcode.JMP, Opcode.CALL,
            )
            if needs_target and not 0 <= inst.target < n:
                raise ValueError(
                    f"instruction {index} ({inst.opcode.name}) has "
                    f"unresolved or out-of-range target {inst.target}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at `index`."""
        return self.code_base + index * self.instruction_bytes

    def index_of_address(self, address: int) -> int:
        """Instruction index for a code byte address."""
        return (address - self.code_base) // self.instruction_bytes

    def basic_blocks(self) -> list[BasicBlock]:
        """Partition the program into basic blocks.

        Block leaders are: the entry point, every control-transfer target,
        and every instruction following a control transfer.  The result is
        ordered by start index.  Used by the SimPoint basic-block-vector
        profiler.
        """
        n = len(self.instructions)
        leaders = {self.entry, 0}
        for index, inst in enumerate(self.instructions):
            if inst.is_control:
                if index + 1 < n:
                    leaders.add(index + 1)
                if inst.target >= 0:
                    leaders.add(inst.target)
        ordered = sorted(leaders)
        blocks: list[BasicBlock] = []
        for position, start in enumerate(ordered):
            end = ordered[position + 1] if position + 1 < len(ordered) else n
            blocks.append(BasicBlock(start=start, end=end))
        block_of = {}
        for block_id, block in enumerate(blocks):
            block_of[block.start] = block_id
        for block in blocks:
            last = self.instructions[block.end - 1]
            if last.is_control:
                if last.target >= 0:
                    block.successors.append(last.target)
                if last.is_cond_branch and block.end < n:
                    block.successors.append(block.end)
            elif block.end < n:
                block.successors.append(block.end)
        return blocks

    def leader_table(self) -> dict[int, int]:
        """Map each basic-block start index to a dense block id."""
        return {
            block.start: block_id
            for block_id, block in enumerate(self.basic_blocks())
        }

    def __repr__(self) -> str:
        return (
            f"Program(name={self.name!r}, instructions={len(self)}, "
            f"entry={self.entry})"
        )
