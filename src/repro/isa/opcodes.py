"""Opcode definitions for the synthetic RISC ISA.

The reproduction replaces the paper's SimpleScalar/Alpha substrate with a
small load/store RISC instruction set.  Only the properties that matter to
sampled simulation are modelled: instruction class (for functional-unit
latency), memory behaviour (for the cache hierarchy), and control-transfer
behaviour (for the branch predictor, BTB, and return-address stack).
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Every instruction kind understood by the simulators.

    The numeric values are stable and dense so they can be used to index
    latency tables.
    """

    NOP = 0

    # Register-register ALU operations: rd <- rs1 <op> rs2.
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    AND = 5
    OR = 6
    XOR = 7
    SLL = 8
    SRL = 9
    SLT = 10

    # Register-immediate ALU operations: rd <- rs1 <op> imm.
    ADDI = 11
    ANDI = 12
    ORI = 13
    XORI = 14
    SLTI = 15
    SLLI = 16
    SRLI = 17

    # rd <- imm (load immediate; stands in for LUI/ORI pairs).
    LI = 18

    # Memory operations.  LOAD: rd <- mem[rs1 + imm].  STORE: mem[rs1 + imm] <- rs2.
    LOAD = 19
    STORE = 20

    # Conditional branches: compare rs1 with rs2, branch to `target`.
    BEQ = 21
    BNE = 22
    BLT = 23
    BGE = 24

    # Unconditional control transfers.
    JMP = 25   # pc <- target
    JR = 26    # pc <- rs1 (indirect jump, e.g. switch tables)
    CALL = 27  # r31 <- return address; pc <- target (RAS push)
    CALLR = 28  # r31 <- return address; pc <- rs1 (indirect call, RAS push)
    RET = 29   # pc <- r31 (RAS pop)

    HALT = 30


#: Architectural register used as the link register by CALL/CALLR/RET.
LINK_REGISTER = 31

#: Architectural register conventionally used as the stack pointer.
STACK_POINTER = 30

#: Number of architectural integer registers (r0 is hard-wired to zero).
NUM_REGISTERS = 32

_ALU_REG = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT,
})

_ALU_IMM = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.LI,
})

_COND_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

_CONTROL = _COND_BRANCHES | {
    Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.CALLR, Opcode.RET,
}


def is_alu(opcode: Opcode) -> bool:
    """Return True for any ALU (register or immediate) operation."""
    return opcode in _ALU_REG or opcode in _ALU_IMM


def is_conditional_branch(opcode: Opcode) -> bool:
    """Return True for BEQ/BNE/BLT/BGE."""
    return opcode in _COND_BRANCHES


def is_control(opcode: Opcode) -> bool:
    """Return True for any instruction that may redirect the PC."""
    return opcode in _CONTROL


def is_memory(opcode: Opcode) -> bool:
    """Return True for LOAD or STORE."""
    return opcode is Opcode.LOAD or opcode is Opcode.STORE


#: Execution latency, in cycles, of each opcode on a universal function unit.
#: LOAD latency listed here excludes the memory hierarchy; the timing core
#: adds the cache access time on top of the 1-cycle address generation.
EXECUTION_LATENCY: dict[Opcode, int] = {op: 1 for op in Opcode}
EXECUTION_LATENCY[Opcode.MUL] = 3
EXECUTION_LATENCY[Opcode.DIV] = 12
