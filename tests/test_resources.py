"""Unit tests for timing-core resource constraints."""

from repro.timing import BandwidthLimiter, FifoCapacity, PooledCapacity


class TestBandwidthLimiter:
    def test_width_events_fit_in_one_cycle(self):
        limiter = BandwidthLimiter(4)
        assert [limiter.take(10) for _ in range(4)] == [10] * 4

    def test_overflow_spills_to_next_cycle(self):
        limiter = BandwidthLimiter(2)
        assert limiter.take(5) == 5
        assert limiter.take(5) == 5
        assert limiter.take(5) == 6

    def test_later_cycle_resets_budget(self):
        limiter = BandwidthLimiter(1)
        assert limiter.take(0) == 0
        assert limiter.take(10) == 10

    def test_requests_never_go_backwards(self):
        limiter = BandwidthLimiter(1)
        limiter.take(10)
        assert limiter.take(3) >= 10

    def test_reset(self):
        limiter = BandwidthLimiter(1)
        limiter.take(0)
        limiter.reset()
        assert limiter.take(0) == 0

    def test_sustained_throughput(self):
        limiter = BandwidthLimiter(4)
        slots = [limiter.take(0) for _ in range(40)]
        assert max(slots) == 9  # 40 events at 4/cycle fill cycles 0..9
        for cycle in range(10):
            assert slots.count(cycle) == 4


class TestFifoCapacity:
    def test_under_capacity_is_free(self):
        fifo = FifoCapacity(2)
        assert fifo.acquire(5) == 5
        fifo.release_at(100)
        assert fifo.acquire(5) == 5

    def test_full_structure_stalls_until_head_frees(self):
        fifo = FifoCapacity(2)
        fifo.acquire(0)
        fifo.release_at(10)
        fifo.acquire(0)
        fifo.release_at(20)
        assert fifo.acquire(0) == 11  # waits for first release + 1

    def test_occupancy(self):
        fifo = FifoCapacity(4)
        fifo.release_at(1)
        fifo.release_at(2)
        assert fifo.occupancy() == 2

    def test_reset(self):
        fifo = FifoCapacity(1)
        fifo.acquire(0)
        fifo.release_at(99)
        fifo.reset()
        assert fifo.acquire(0) == 0


class TestPooledCapacity:
    def test_frees_by_minimum_release(self):
        pool = PooledCapacity(2)
        pool.acquire(0)
        pool.release_at(50)
        pool.acquire(0)
        pool.release_at(10)   # out-of-order completion
        assert pool.acquire(0) == 11  # min release is 10

    def test_under_capacity_is_free(self):
        pool = PooledCapacity(3)
        pool.release_at(100)
        assert pool.acquire(0) == 0

    def test_ready_after_release_not_delayed(self):
        pool = PooledCapacity(1)
        pool.acquire(0)
        pool.release_at(5)
        assert pool.acquire(20) == 20

    def test_reset(self):
        pool = PooledCapacity(1)
        pool.acquire(0)
        pool.release_at(99)
        pool.reset()
        assert pool.acquire(0) == 0
