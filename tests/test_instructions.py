"""Unit tests for the Instruction representation."""

from repro.isa import Instruction, Opcode


class TestFlags:
    def test_load_flags(self):
        inst = Instruction(Opcode.LOAD, rd=1, rs1=2, imm=8)
        assert inst.is_load and inst.is_mem
        assert not inst.is_store and not inst.is_control

    def test_store_flags(self):
        inst = Instruction(Opcode.STORE, rs1=1, rs2=2)
        assert inst.is_store and inst.is_mem
        assert not inst.is_load

    def test_conditional_branch_flags(self):
        inst = Instruction(Opcode.BNE, rs1=1, rs2=2, target=0)
        assert inst.is_cond_branch and inst.is_control
        assert not inst.is_call and not inst.is_ret and not inst.is_indirect

    def test_call_flags(self):
        inst = Instruction(Opcode.CALL, target=5)
        assert inst.is_call and inst.is_control
        assert not inst.is_indirect

    def test_indirect_call_flags(self):
        inst = Instruction(Opcode.CALLR, rs1=4)
        assert inst.is_call and inst.is_indirect

    def test_ret_flags(self):
        inst = Instruction(Opcode.RET)
        assert inst.is_ret and inst.is_indirect and inst.is_control

    def test_jr_is_indirect(self):
        assert Instruction(Opcode.JR, rs1=3).is_indirect

    def test_latency_copied_from_table(self):
        assert Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3).latency == 3
        assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).latency == 1


class TestDestination:
    def test_alu_destination(self):
        assert Instruction(Opcode.ADD, rd=5, rs1=1, rs2=2).destination() == 5

    def test_write_to_r0_is_discarded(self):
        assert Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2).destination() is None

    def test_store_has_no_destination(self):
        assert Instruction(Opcode.STORE, rs1=1, rs2=2).destination() is None

    def test_branch_has_no_destination(self):
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0).destination() \
            is None

    def test_call_writes_link_register(self):
        assert Instruction(Opcode.CALL, target=0).destination() == 31
        assert Instruction(Opcode.CALLR, rs1=2).destination() == 31

    def test_load_destination(self):
        assert Instruction(Opcode.LOAD, rd=7, rs1=1).destination() == 7

    def test_nop_and_halt(self):
        assert Instruction(Opcode.NOP).destination() is None
        assert Instruction(Opcode.HALT).destination() is None


class TestSources:
    def test_three_operand_alu(self):
        assert Instruction(Opcode.XOR, rd=1, rs1=2, rs2=3).sources() == (2, 3)

    def test_immediate_alu(self):
        assert Instruction(Opcode.ADDI, rd=1, rs1=2, imm=5).sources() == (2,)

    def test_store_reads_base_and_value(self):
        assert Instruction(Opcode.STORE, rs1=4, rs2=9).sources() == (4, 9)

    def test_load_reads_base(self):
        assert Instruction(Opcode.LOAD, rd=1, rs1=4).sources() == (4,)

    def test_r0_sources_filtered(self):
        assert Instruction(Opcode.ADD, rd=1, rs1=0, rs2=0).sources() == ()

    def test_ret_reads_link_register(self):
        assert Instruction(Opcode.RET).sources() == (31,)

    def test_li_has_no_sources(self):
        assert Instruction(Opcode.LI, rd=1, imm=42).sources() == ()

    def test_jmp_has_no_sources(self):
        assert Instruction(Opcode.JMP, target=3).sources() == ()

    def test_branch_sources(self):
        assert Instruction(Opcode.BLT, rs1=5, rs2=6, target=0).sources() \
            == (5, 6)


class TestEquality:
    def test_equal_instructions(self):
        a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        b = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_instructions(self):
        a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert a != Instruction(Opcode.SUB, rd=1, rs1=2, rs2=3)
        assert a != Instruction(Opcode.ADD, rd=2, rs1=2, rs2=3)

    def test_comparison_against_other_types(self):
        assert Instruction(Opcode.NOP) != "nop"

    def test_repr_contains_opcode(self):
        assert "BNE" in repr(Instruction(Opcode.BNE, rs1=1, rs2=2, target=7))
