"""Tests for the telemetry subsystem: registry, sessions, traces, and
their integration through the controller, harness, and parallel engine."""

import json

import pytest

from repro.harness.experiment import SCALES, run_matrix
from repro.harness.parallel import execute_matrix, merged_telemetry
from repro.harness.reporting import format_telemetry_summary
from repro.sampling import SampledSimulator, SamplingRegimen
from repro.telemetry import (
    EMPTY_SNAPSHOT,
    NULL_TELEMETRY,
    HistogramSummary,
    MetricsRegistry,
    NullRegistry,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
    read_trace,
    telemetry_from_env,
    write_trace,
)
from repro.warmup import make_method
from repro.workloads import build_workload

CI = SCALES["ci"]
METHOD_NAMES = ("None", "S$BP", "R$BP (20%)")


def small_suite():
    """Picklable module-level method factory (crosses the pool boundary)."""
    return [make_method(name) for name in METHOD_NAMES]


def make_simulator(workload_name="ammp", telemetry=None):
    workload = build_workload(workload_name, mem_scale=CI.mem_scale)
    return SampledSimulator(
        workload, CI.regimen(), CI.configs(),
        warmup_prefix=CI.warmup_prefix,
        detail_ramp=CI.detail_ramp,
        telemetry=telemetry,
    )


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter_values() == {"a": 5}

    def test_instruments_are_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.5)
        assert registry.gauge_values() == {"g": 7.5}

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.histogram("h").observe(value)
        summary = registry.histogram_summaries()["h"]
        assert summary.count == 3
        assert summary.total == 6.0
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.mean == 2.0

    def test_null_registry_shares_noop_instruments(self):
        registry = NullRegistry()
        counter = registry.counter("anything")
        assert counter is registry.counter("else")
        counter.inc(100)
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(1.0)
        assert registry.counter_values() == {}
        assert registry.gauge_values() == {}
        assert registry.histogram_summaries() == {}


class TestSnapshotMerge:
    def test_counters_and_phases_sum(self):
        a = TelemetrySnapshot(counters={"x": 1, "y": 2},
                              phase_seconds={"hot_sim": 1.0})
        b = TelemetrySnapshot(counters={"y": 3, "z": 5},
                              phase_seconds={"hot_sim": 0.5,
                                             "cold_skip": 2.0})
        merged = a.merge(b)
        assert merged.counters == {"x": 1, "y": 5, "z": 5}
        assert merged.phase_seconds == {"hot_sim": 1.5, "cold_skip": 2.0}

    def test_histograms_combine(self):
        a = TelemetrySnapshot(histograms={
            "h": HistogramSummary(count=2, total=3.0, min=1.0, max=2.0)
        })
        b = TelemetrySnapshot(histograms={
            "h": HistogramSummary(count=1, total=4.0, min=4.0, max=4.0)
        })
        merged = a.merge(b).histograms["h"]
        assert merged.count == 3
        assert merged.total == 7.0
        assert (merged.min, merged.max) == (1.0, 4.0)

    def test_records_sorted_deterministically(self):
        a = TelemetrySnapshot(trace_records=[
            {"workload": "gcc", "method": "S$BP", "cluster": 0},
        ])
        b = TelemetrySnapshot(trace_records=[
            {"workload": "ammp", "method": "S$BP", "cluster": 1},
            {"workload": "ammp", "method": "S$BP", "cluster": 0},
        ])
        merged = a.merge(b)
        assert [(r["workload"], r["cluster"])
                for r in merged.trace_records] == [
            ("ammp", 0), ("ammp", 1), ("gcc", 0),
        ]

    def test_merge_snapshots_skips_none(self):
        only = TelemetrySnapshot(counters={"x": 1})
        assert merge_snapshots([None, only, None]) is only
        assert merge_snapshots([None, None]) is None
        assert merge_snapshots([]) is None


class TestTraceIO:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [{"type": "cluster", "cluster": i} for i in range(3)]
        assert write_trace(records, path) == 3
        assert read_trace(path) == records

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace([{"a": 1}, {"b": [1, 2]}], path)
        with open(path, encoding="utf-8") as stream:
            lines = [line for line in stream if line.strip()]
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestSession:
    def test_phase_timer_accumulates(self):
        telemetry = Telemetry()
        with telemetry.phase("hot_sim"):
            pass
        with telemetry.phase("hot_sim"):
            pass
        assert telemetry.phase_seconds["hot_sim"] >= 0.0
        assert set(telemetry.phase_seconds) == {"hot_sim"}

    def test_cluster_scope_attributes_deltas(self):
        telemetry = Telemetry()
        telemetry.count("reconstruct.blocks_applied", 5)  # pre-cluster
        telemetry.begin_cluster()
        telemetry.count("reconstruct.blocks_applied", 3)
        telemetry.count("reconstruct.pht_entries", 2)
        telemetry.count("other.metric", 7)
        with telemetry.phase("hot_sim"):
            pass
        record = telemetry.end_cluster({"cluster": 0})
        assert record["blocks_reconstructed"] == 3
        assert record["pht_entries_reconstructed"] == 2
        assert record["counters"] == {"other.metric": 7}
        assert record["wall_seconds"] == pytest.approx(
            record["cold_skip_seconds"] + record["reconstruct_seconds"]
            + record["hot_sim_seconds"]
        )
        assert telemetry.trace_records == [record]

    def test_flush_trace_writes_each_record_once(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=str(path))
        telemetry.emit({"a": 1})
        assert telemetry.flush_trace() == 1
        assert telemetry.flush_trace() == 0
        telemetry.emit({"b": 2})
        assert telemetry.flush_trace() == 1
        assert len(read_trace(path)) == 2

    def test_null_session_accepts_full_api(self):
        null = NULL_TELEMETRY
        null.count("x")
        null.observe("y", 1.0)
        null.set_gauge("z", 2.0)
        with null.phase("hot_sim"):
            pass
        null.begin_cluster()
        assert null.end_cluster({"cluster": 0}) is None
        assert null.snapshot() is None
        assert null.flush_trace() == 0
        assert not null.enabled

    def test_env_resolution(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_from_env() is NULL_TELEMETRY

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        session = telemetry_from_env()
        assert session.enabled and session.trace_path is None

        path = str(tmp_path / "trace.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        session = telemetry_from_env()
        assert session.enabled and session.trace_path == path

        monkeypatch.delenv("REPRO_TRACE")
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert telemetry_from_env() is NULL_TELEMETRY


@pytest.fixture(scope="module")
def traced_run():
    simulator = make_simulator(telemetry=Telemetry)
    return simulator.run(make_method("R$BP (20%)"))


class TestTracedRun:
    """Acceptance criteria: one record per cluster, consistent with the
    run's WarmupCost and wall_seconds."""

    def test_one_record_per_cluster(self, traced_run):
        snapshot = traced_run.extra["telemetry"]
        records = snapshot.trace_records
        assert len(records) == CI.num_clusters
        assert len(traced_run.cluster_ipcs) == CI.num_clusters
        assert [r["cluster"] for r in records] == list(range(len(records)))
        for record, ipc in zip(records, traced_run.cluster_ipcs):
            assert record["ipc"] == pytest.approx(ipc)

    def test_warm_updates_consistent_with_cost(self, traced_run):
        records = traced_run.extra["telemetry"].trace_records
        cost = traced_run.cost
        assert sum(r["warm_updates"] for r in records) == cost.warm_updates()
        assert sum(r["cache_updates"] for r in records) == cost.cache_updates
        assert (sum(r["predictor_updates"] for r in records)
                == cost.predictor_updates)
        assert sum(r["log_records"] for r in records) == cost.log_records
        assert (sum(r["functional_instructions"] for r in records)
                == cost.functional_instructions)
        assert (sum(r["hot_instructions"] for r in records)
                == cost.hot_instructions)

    def test_phase_times_consistent_with_wall(self, traced_run):
        records = traced_run.extra["telemetry"].trace_records
        summed = sum(r["wall_seconds"] for r in records)
        # Phase timers run inside the measured loop, so their sum cannot
        # exceed the run's wall time (tiny float tolerance only).
        assert summed <= traced_run.wall_seconds * 1.001 + 1e-6
        assert summed > 0.0
        for record in records:
            assert record["wall_seconds"] == pytest.approx(
                record["cold_skip_seconds"] + record["reconstruct_seconds"]
                + record["hot_sim_seconds"]
            )

    def test_reconstruction_counters_reported(self, traced_run):
        snapshot = traced_run.extra["telemetry"]
        assert snapshot.counters["reconstruct.blocks_applied"] > 0
        assert snapshot.counters["reconstruct.pht_entries"] > 0
        assert snapshot.counters["log.memory_records"] > 0
        records = snapshot.trace_records
        assert (sum(r["blocks_reconstructed"] for r in records)
                == snapshot.counters["reconstruct.blocks_applied"])
        assert (sum(r["pht_entries_reconstructed"] for r in records)
                == snapshot.counters["reconstruct.pht_entries"])

    def test_snapshot_is_picklable(self, traced_run):
        import pickle

        snapshot = traced_run.extra["telemetry"]
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.counters == snapshot.counters
        assert clone.trace_records == snapshot.trace_records

    def test_default_run_carries_no_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        result = make_simulator().run(make_method("None"))
        assert "telemetry" not in result.extra

    def test_repro_trace_env_appends_file(self, monkeypatch, tmp_path):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        make_simulator().run(make_method("None"))
        records = read_trace(path)
        assert len(records) == CI.num_clusters
        make_simulator().run(make_method("None"))
        assert len(read_trace(path)) == 2 * CI.num_clusters


def _strip_timing(record):
    return {key: value for key, value in record.items()
            if not key.endswith("_seconds")}


class TestParallelMerge:
    """Per-cell snapshots merged by the parallel engine equal the serial
    run's totals."""

    def test_parallel_merge_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        serial = run_matrix(small_suite, workload_names=("ammp",), scale=CI)
        parallel = execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=2,
        )
        merged_serial = merged_telemetry(serial)
        merged_parallel = merged_telemetry(parallel)
        assert merged_serial is not None and merged_parallel is not None
        assert merged_parallel.counters == merged_serial.counters
        serial_records = sorted(
            (_strip_timing(r) for r in merged_serial.trace_records),
            key=lambda r: (r["workload"], r["method"], r["cluster"]),
        )
        parallel_records = sorted(
            (_strip_timing(r) for r in merged_parallel.trace_records),
            key=lambda r: (r["workload"], r["method"], r["cluster"]),
        )
        assert parallel_records == serial_records
        for name, summary in merged_serial.histograms.items():
            other = merged_parallel.histograms[name]
            assert other.count == summary.count
            assert other.total == pytest.approx(summary.total)

    def test_untraced_grid_merges_to_empty_sentinel(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        grid = execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
        )
        merged = merged_telemetry(grid)
        assert merged is EMPTY_SNAPSHOT
        assert merged.is_empty()
        assert not merged

    def test_zero_cell_grid_folds_to_empty_sentinel(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        grid = execute_matrix(
            small_suite, workload_names=(), scale=CI, jobs=1,
        )
        merged = merged_telemetry(grid)
        assert merged is EMPTY_SNAPSHOT
        assert not merged
        # The sentinel is a real snapshot: merging and iterating it is
        # safe without a None guard.
        assert merge_snapshots([merged, merged]).is_empty()
        assert list(merged.trace_records) == []


class TestFormatTelemetrySummary:
    def test_summary_sections(self):
        snapshot = TelemetrySnapshot(
            counters={"warmup.cache_updates": 10,
                      "reconstruct.blocks_applied": 4},
            phase_seconds={"cold_skip": 1.0, "reconstruct": 0.25,
                           "hot_sim": 0.75},
            trace_records=[
                {"type": "cluster", "method": "S$BP", "warm_updates": 6,
                 "log_records": 0, "wall_seconds": 0.5},
                {"type": "cluster", "method": "S$BP", "warm_updates": 4,
                 "log_records": 0, "wall_seconds": 0.5},
            ],
        )
        text = format_telemetry_summary(snapshot)
        assert "cold_skip" in text
        assert "50.0%" in text  # cold_skip share of 2.0s total
        assert "warmup.cache_updates" in text
        assert "S$BP" in text
        assert "10" in text

    def test_empty_snapshot_renders(self):
        text = format_telemetry_summary(TelemetrySnapshot())
        assert "total" in text


class _EmptyRegimen(SamplingRegimen):
    """A regimen whose draw yields no clusters (degenerate edge case)."""

    def cluster_starts(self):
        return []


class TestHarmonicMeanGuard:
    def test_zero_cluster_run_does_not_divide_by_zero(self):
        workload = build_workload("ammp", mem_scale=CI.mem_scale)
        simulator = SampledSimulator(
            workload,
            _EmptyRegimen(total_instructions=10_000, num_clusters=1,
                          cluster_size=100),
            CI.configs(),
        )
        # The harmonic-mean diagnostic must not raise ZeroDivisionError;
        # the run still fails later with the estimator's readable error.
        with pytest.raises(ValueError, match="no clusters"):
            simulator.run(make_method("None"))
