"""Tests for state-level warm-up fidelity analysis."""

import pytest

from repro.analysis import measure_state_fidelity
from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.core import ReverseStateReconstruction
from repro.sampling import SamplingRegimen, SimulatorConfigs
from repro.warmup import NoWarmup, SmartsWarmup
from repro.workloads import build_workload


REGIMEN = SamplingRegimen(60_000, 6, 800, seed=4)


def configs():
    return SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )


@pytest.fixture(scope="module")
def workload():
    return build_workload("vpr")


@pytest.fixture(scope="module")
def smarts_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, SmartsWarmup(), configs(), warmup_prefix=8_000,
    )


@pytest.fixture(scope="module")
def none_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, NoWarmup(), configs(), warmup_prefix=8_000,
    )


@pytest.fixture(scope="module")
def rsr_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, ReverseStateReconstruction(1.0), configs(),
        warmup_prefix=8_000,
    )


class TestReportStructure:
    def test_one_record_per_cluster(self, smarts_report):
        assert len(smarts_report.records) == REGIMEN.num_clusters
        for record in smarts_report.records:
            assert 0.0 <= record.l1d_overlap <= 1.0
            assert 0.0 <= record.counter_agreement <= 1.0

    def test_summary_keys(self, smarts_report):
        summary = smarts_report.summary()
        assert set(summary) == {
            "l1i_overlap", "l1d_overlap", "l2_overlap",
            "counter_agreement", "prediction_agreement", "ghr_match",
            "btb_agreement", "ras_top_match",
        }

    def test_empty_report_mean(self):
        from repro.analysis import FidelityReport
        assert FidelityReport("x", "y").mean("l1d_overlap") == 0.0


class TestFidelityOrdering:
    def test_smarts_is_self_consistent(self, smarts_report):
        """SMARTS vs the SMARTS reference: identical state everywhere."""
        assert smarts_report.mean("l1d_overlap") == pytest.approx(1.0)
        assert smarts_report.mean("l2_overlap") == pytest.approx(1.0)
        assert smarts_report.mean("counter_agreement") == pytest.approx(1.0)
        assert smarts_report.mean("ghr_match") == pytest.approx(1.0)

    def test_no_warmup_state_is_degraded(self, none_report):
        assert none_report.mean("l1d_overlap") < 0.9
        assert none_report.mean("counter_agreement") < 1.0

    def test_rsr_beats_no_warmup_on_caches(self, none_report, rsr_report):
        assert rsr_report.mean("l1d_overlap") > \
            none_report.mean("l1d_overlap")
        assert rsr_report.mean("l2_overlap") > \
            none_report.mean("l2_overlap")

    def test_rsr_recovers_ghr_exactly(self, rsr_report):
        assert rsr_report.mean("ghr_match") == pytest.approx(1.0)

    def test_rsr_prediction_agreement_high(self, rsr_report, none_report):
        assert rsr_report.mean("prediction_agreement") >= \
            none_report.mean("prediction_agreement")


class TestVacuousAgreement:
    """Edge cases of the agreement helpers: nothing to compare scores 1.0."""

    def test_jaccard_empty_sets_are_identical(self):
        from repro.analysis.fidelity import _jaccard
        assert _jaccard(set(), set()) == 1.0
        assert _jaccard({1}, set()) == 0.0
        assert _jaccard(set(), {1}) == 0.0
        assert _jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_ratio_vacuous_denominator(self):
        from repro.analysis.fidelity import _ratio
        assert _ratio(0, 0) == 1.0
        assert _ratio(3, 4) == 0.75

    def test_compare_states_on_empty_structures(self):
        """Two cold stacks disagree about nothing: every score is 1.0."""
        from repro.analysis.fidelity import _compare_states
        from repro.branch import BranchPredictor, PredictorConfig
        from repro.cache import MemoryHierarchy

        config = PredictorConfig(pht_entries=1, btb_entries=1,
                                 ras_entries=1)
        record = _compare_states(
            0, 0,
            MemoryHierarchy(paper_hierarchy_config(scale=64)),
            BranchPredictor(config),
            MemoryHierarchy(paper_hierarchy_config(scale=64)),
            BranchPredictor(config),
        )
        assert record.l1i_overlap == 1.0
        assert record.l1d_overlap == 1.0
        assert record.l2_overlap == 1.0
        assert record.counter_agreement == 1.0
        assert record.prediction_agreement == 1.0
        assert record.ghr_match is True
        assert record.btb_agreement == 1.0
        assert record.ras_top_match is True

    def test_single_entry_pht_disagreement_is_binary(self):
        """With one PHT counter, agreement is exactly 0.0 or 1.0."""
        from repro.analysis.fidelity import _compare_states
        from repro.branch import BranchPredictor, PredictorConfig
        from repro.cache import MemoryHierarchy

        config = PredictorConfig(pht_entries=1, btb_entries=1,
                                 ras_entries=1)
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=64))
        reference = MemoryHierarchy(paper_hierarchy_config(scale=64))
        predictor = BranchPredictor(config)
        ref_predictor = BranchPredictor(config)
        # Saturate the lone counter on one side only.
        predictor.pht.counters[0] = 3
        record = _compare_states(0, 0, hierarchy, predictor,
                                 reference, ref_predictor)
        assert record.counter_agreement == 0.0
        assert record.prediction_agreement == 0.0

    def test_fidelity_on_first_instruction_boundary(self, workload):
        """A regimen whose first cluster opens at instruction 0 compares
        near-empty state without dividing by zero."""
        regimen = SamplingRegimen(4_000, 2, 400, seed=1)
        report = measure_state_fidelity(
            workload, regimen, SmartsWarmup(), configs(),
            warmup_prefix=0,
        )
        assert len(report.records) == 2
        for record in report.records:
            assert 0.0 <= record.l1d_overlap <= 1.0
            assert 0.0 <= record.btb_agreement <= 1.0
