"""Tests for state-level warm-up fidelity analysis."""

import pytest

from repro.analysis import measure_state_fidelity
from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.core import ReverseStateReconstruction
from repro.sampling import SamplingRegimen, SimulatorConfigs
from repro.warmup import NoWarmup, SmartsWarmup
from repro.workloads import build_workload


REGIMEN = SamplingRegimen(60_000, 6, 800, seed=4)


def configs():
    return SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )


@pytest.fixture(scope="module")
def workload():
    return build_workload("vpr")


@pytest.fixture(scope="module")
def smarts_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, SmartsWarmup(), configs(), warmup_prefix=8_000,
    )


@pytest.fixture(scope="module")
def none_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, NoWarmup(), configs(), warmup_prefix=8_000,
    )


@pytest.fixture(scope="module")
def rsr_report(workload):
    return measure_state_fidelity(
        workload, REGIMEN, ReverseStateReconstruction(1.0), configs(),
        warmup_prefix=8_000,
    )


class TestReportStructure:
    def test_one_record_per_cluster(self, smarts_report):
        assert len(smarts_report.records) == REGIMEN.num_clusters
        for record in smarts_report.records:
            assert 0.0 <= record.l1d_overlap <= 1.0
            assert 0.0 <= record.counter_agreement <= 1.0

    def test_summary_keys(self, smarts_report):
        summary = smarts_report.summary()
        assert set(summary) == {
            "l1i_overlap", "l1d_overlap", "l2_overlap",
            "counter_agreement", "prediction_agreement", "ghr_match",
            "btb_agreement", "ras_top_match",
        }

    def test_empty_report_mean(self):
        from repro.analysis import FidelityReport
        assert FidelityReport("x", "y").mean("l1d_overlap") == 0.0


class TestFidelityOrdering:
    def test_smarts_is_self_consistent(self, smarts_report):
        """SMARTS vs the SMARTS reference: identical state everywhere."""
        assert smarts_report.mean("l1d_overlap") == pytest.approx(1.0)
        assert smarts_report.mean("l2_overlap") == pytest.approx(1.0)
        assert smarts_report.mean("counter_agreement") == pytest.approx(1.0)
        assert smarts_report.mean("ghr_match") == pytest.approx(1.0)

    def test_no_warmup_state_is_degraded(self, none_report):
        assert none_report.mean("l1d_overlap") < 0.9
        assert none_report.mean("counter_agreement") < 1.0

    def test_rsr_beats_no_warmup_on_caches(self, none_report, rsr_report):
        assert rsr_report.mean("l1d_overlap") > \
            none_report.mean("l1d_overlap")
        assert rsr_report.mean("l2_overlap") > \
            none_report.mean("l2_overlap")

    def test_rsr_recovers_ghr_exactly(self, rsr_report):
        assert rsr_report.mean("ghr_match") == pytest.approx(1.0)

    def test_rsr_prediction_agreement_high(self, rsr_report, none_report):
        assert rsr_report.mean("prediction_agreement") >= \
            none_report.mean("prediction_agreement")
