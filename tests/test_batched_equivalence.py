"""End-to-end equivalence: batched vs scalar core through full runs.

The batch core (`REPRO_BATCH_CORE`) swaps the functional interpreter and
the reverse-reconstruction scans for vectorized kernels; nothing about
the simulated machine may change.  These tests run complete sampled
simulations both ways — raw and compacted skip-log sources, serial and
cluster-sharded topologies — and require bit-identical per-cluster IPCs,
identical WarmupCost ledgers, identical IPC estimates, and identical
telemetry event counters (which subsume the gap-log record counts and
the reconstruction scan/apply/skip accounting).

The full nine-workload matrix runs in `benchmarks/test_perf_vectorized_core.py`;
this tier-1 subset keeps the guarantee under the fast test suite.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ReverseStateReconstruction
from repro.harness import scale_from_env
from repro.sampling import SampledSimulator
from repro.telemetry import Telemetry
from repro.workloads import build_workload

WORKLOADS = ("gcc", "mcf")
SOURCES = ("raw", "compacted")
TOPOLOGIES = {"serial": None, "sharded": 2}


def _run(workload_name: str, source: str, cluster_jobs, batched: bool):
    scale = scale_from_env(default="ci")
    workload = build_workload(workload_name, mem_scale=scale.mem_scale)
    simulator = SampledSimulator(
        workload, scale.regimen(), scale.configs(),
        warmup_prefix=scale.warmup_prefix,
        detail_ramp=scale.detail_ramp,
        telemetry=Telemetry,
        cluster_jobs=cluster_jobs,
    )
    previous = os.environ.get("REPRO_BATCH_CORE")
    os.environ["REPRO_BATCH_CORE"] = "on" if batched else "off"
    try:
        result = simulator.run(
            ReverseStateReconstruction(fraction=1.0, source=source)
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_BATCH_CORE", None)
        else:
            os.environ["REPRO_BATCH_CORE"] = previous
    snapshot = result.extra["telemetry"]
    return {
        "cluster_ipcs": result.cluster_ipcs,
        "cost": result.cost.as_dict(),
        "estimate": result.estimate.mean,
        "counters": dict(snapshot.counters),
    }


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("source", SOURCES)
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_batched_run_is_bit_identical(workload_name, source, topology):
    cluster_jobs = TOPOLOGIES[topology]
    scalar = _run(workload_name, source, cluster_jobs, batched=False)
    batched = _run(workload_name, source, cluster_jobs, batched=True)
    label = f"{workload_name}/{source}/{topology}"
    assert scalar["cluster_ipcs"] == batched["cluster_ipcs"], (
        f"{label}: per-cluster IPCs diverge between scalar and batched"
    )
    assert scalar["cost"] == batched["cost"], (
        f"{label}: WarmupCost ledger diverges between scalar and batched"
    )
    assert scalar["estimate"] == batched["estimate"], (
        f"{label}: IPC estimate diverges between scalar and batched"
    )
    assert scalar["counters"] == batched["counters"], (
        f"{label}: telemetry counters diverge between scalar and batched"
    )
