"""Tests for the classical cache-sampling estimators (paper §2)."""

import pytest

from repro.cache import CacheConfig, WritePolicy
from repro.cachesim import (
    capture_trace,
    full_trace_miss_ratio,
    set_sampling_estimate,
    time_sampling_estimate,
)
from repro.workloads import build_workload


CONFIG = CacheConfig(
    name="study", size_bytes=8 * 1024, line_bytes=64, associativity=4,
    write_policy=WritePolicy.WBWA, hit_latency=1,
)


@pytest.fixture(scope="module")
def trace():
    return capture_trace(build_workload("twolf"), 40_000,
                         skip_instructions=5_000)


@pytest.fixture(scope="module")
def true_ratio(trace):
    return full_trace_miss_ratio(trace, CONFIG)


class TestTraceCapture:
    def test_requested_length(self, trace):
        assert len(trace) == 40_000
        assert len(trace.addresses) == len(trace.writes)

    def test_contains_reads_and_writes(self, trace):
        assert any(trace.writes)
        assert not all(trace.writes)

    def test_slice(self, trace):
        window = trace.slice(100, 50)
        assert len(window) == 50
        assert window.addresses == trace.addresses[100:150]

    def test_deterministic(self):
        a = capture_trace(build_workload("ammp"), 2_000)
        b = capture_trace(build_workload("ammp"), 2_000)
        assert a.addresses == b.addresses


class TestFullTrace:
    def test_ground_truth_in_range(self, true_ratio):
        assert 0.0 < true_ratio < 1.0


class TestTimeSampling:
    def test_cold_overestimates_misses(self, trace, true_ratio):
        """The classical cold-start bias: measuring from empty caches
        inflates the miss ratio."""
        cold = time_sampling_estimate(
            trace, CONFIG, num_samples=10, sample_length=1_000, seed=1,
        )
        assert cold.miss_ratio > true_ratio

    def test_primed_sets_reduce_cold_start_bias(self, trace, true_ratio):
        cold = time_sampling_estimate(
            trace, CONFIG, num_samples=10, sample_length=1_000, seed=1,
        )
        primed = time_sampling_estimate(
            trace, CONFIG, num_samples=10, sample_length=1_000, seed=1,
            primed_sets=True,
        )
        assert primed.relative_error(true_ratio) < \
            cold.relative_error(true_ratio)

    def test_simulates_only_sampled_references(self, trace):
        estimate = time_sampling_estimate(
            trace, CONFIG, num_samples=5, sample_length=500, seed=2,
        )
        assert estimate.references_simulated == 5 * 500
        assert len(estimate.samples) == 5

    def test_design_must_fit_trace(self, trace):
        with pytest.raises(ValueError):
            time_sampling_estimate(trace, CONFIG, num_samples=100,
                                   sample_length=10_000)

    def test_method_labels(self, trace):
        cold = time_sampling_estimate(trace, CONFIG, 4, 500)
        primed = time_sampling_estimate(trace, CONFIG, 4, 500,
                                        primed_sets=True)
        assert cold.method == "time-cold"
        assert primed.method == "time-primed"


class TestSetSampling:
    def test_accurate_with_many_sets(self, trace, true_ratio):
        estimate = set_sampling_estimate(
            trace, CONFIG, num_sets_sampled=16, seed=3,
        )
        assert estimate.relative_error(true_ratio) < 0.25

    def test_fewer_references_simulated(self, trace):
        estimate = set_sampling_estimate(
            trace, CONFIG, num_sets_sampled=4, seed=3,
        )
        assert estimate.references_simulated < len(trace) / 2

    def test_all_sets_equals_full_trace(self, trace, true_ratio):
        cache_sets = CONFIG.num_sets
        estimate = set_sampling_estimate(
            trace, CONFIG, num_sets_sampled=cache_sets, seed=0,
        )
        # Sampling every set simulates the whole trace; the per-set mean
        # differs from the aggregate ratio only by set weighting.
        assert estimate.references_simulated == len(trace)
        assert estimate.relative_error(true_ratio) < 0.15

    def test_range_validation(self, trace):
        with pytest.raises(ValueError):
            set_sampling_estimate(trace, CONFIG, num_sets_sampled=0)
        with pytest.raises(ValueError):
            set_sampling_estimate(trace, CONFIG,
                                  num_sets_sampled=10_000)

    def test_confidence_interval_available(self, trace, true_ratio):
        estimate = set_sampling_estimate(
            trace, CONFIG, num_sets_sampled=16, seed=5,
        )
        assert estimate.estimate.error_bound > 0
