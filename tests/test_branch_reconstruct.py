"""Unit tests for reverse branch-predictor reconstruction (paper §3.2).

The reference point for most tests: SMARTS-style full functional warming
produces the ground-truth predictor state for a skip region; reverse
reconstruction should approach it, and must match it exactly for the
components with exact algorithms (GHR, BTB newest-claimant, RAS without
overflow, counters whose history pins them).
"""

import numpy as np

from repro.branch import BranchPredictor, PredictorConfig
from repro.core.branch_reconstruct import ReverseBranchReconstructor
from repro.core.logging import SkipRegionLog, BR_COND, BR_CALL, BR_RET, BR_JUMP
from repro.isa import Instruction, Opcode


def config():
    return PredictorConfig(pht_entries=64, btb_entries=16, ras_entries=4)


def cond_inst(target):
    return Instruction(Opcode.BNE, rs1=1, rs2=2, target=target)


def synth_log(seed=0, count=400, branch_pcs=(3, 9, 17, 33, 40)):
    """A synthetic branch trace plus the SMARTS-warmed reference state."""
    rng = np.random.default_rng(seed)
    log = SkipRegionLog()
    reference = BranchPredictor(config())
    for _ in range(count):
        pc = int(rng.choice(branch_pcs))
        kind = int(rng.integers(0, 10))
        if kind < 7:
            taken = bool(rng.random() < 0.7)
            next_pc = pc + 50 if taken else pc + 1
            inst = cond_inst(pc + 50)
            reference.update(pc, inst, taken, next_pc)
            log.branch_records.append((pc, next_pc, taken, BR_COND))
        elif kind == 7:
            reference.update(pc, Instruction(Opcode.CALL, target=pc + 20),
                             True, pc + 20)
            log.branch_records.append((pc, pc + 20, True, BR_CALL))
        elif kind == 8:
            reference.update(pc, Instruction(Opcode.RET), True, 0)
            log.branch_records.append((pc, 0, True, BR_RET))
        else:
            reference.update(pc, Instruction(Opcode.JMP, target=pc + 5),
                             True, pc + 5)
            log.branch_records.append((pc, pc + 5, True, BR_JUMP))
    return log, reference


class TestGHR:
    def test_ghr_matches_smarts_reference(self):
        log, reference = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        assert predictor.pht.history == reference.pht.history

    def test_ghr_stale_when_no_branches(self):
        predictor = BranchPredictor(config())
        predictor.pht.set_history(0x2A)
        ReverseBranchReconstructor(predictor).prepare(SkipRegionLog())
        assert predictor.pht.history == 0x2A


class TestBTB:
    def test_btb_matches_smarts_for_logged_taken_branches(self):
        log, reference = synth_log()
        predictor = BranchPredictor(config())
        ReverseBranchReconstructor(predictor).prepare(log)
        # Every entry the reference holds that was claimed by a logged
        # taken transfer must match (newest claimant wins in both).
        for entry in range(predictor.btb.entries):
            if predictor.btb.reconstructed[entry]:
                assert predictor.btb.tags[entry] == \
                    reference.btb.tags[entry]
                assert predictor.btb.targets[entry] == \
                    reference.btb.targets[entry]

    def test_not_taken_branches_do_not_claim_btb(self):
        log = SkipRegionLog()
        log.branch_records.append((5, 6, False, BR_COND))
        predictor = BranchPredictor(config())
        ReverseBranchReconstructor(predictor).prepare(log)
        assert not any(predictor.btb.reconstructed)


class TestRAS:
    def test_ras_matches_smarts_reference(self):
        log, reference = synth_log(seed=3)
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        recon = predictor.ras.contents_from_top()
        reference_contents = reference.ras.contents_from_top()
        # Equal up to the recovered depth (overflow approximation aside,
        # the top — the next prediction — must agree when non-empty).
        if reference_contents and recon:
            assert recon[0] == reference_contents[0]


class TestOnDemandCounters:
    def test_demand_pins_entry_with_consistent_history(self):
        log = SkipRegionLog()
        pc = 5
        # Same GHR context is hard to force; use an always-taken branch so
        # every touched entry saturates and pins.
        for _ in range(20):
            log.branch_records.append((pc, 55, True, BR_COND))
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        entry = predictor.pht.index(pc)
        reconstructor.demand(entry)
        assert predictor.pht.reconstructed[entry]

    def test_demand_walks_once(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        reconstructor.demand(0)
        steps_after_first = reconstructor.log_walk_steps
        reconstructor.demand(0)
        assert reconstructor.log_walk_steps == steps_after_first

    def test_unseen_entry_left_stale_but_marked(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        # Demand an entry: the walk consumes the whole log and must mark
        # the entry done whether or not it found history for it.
        reconstructor.demand(0)
        assert predictor.pht.reconstructed[0]

    def test_counters_match_smarts_when_pinned(self):
        log, reference = synth_log(seed=7, count=600)
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        reconstructor.drain()
        # For every entry the inference pinned exactly, the value must be
        # bit-identical to the SMARTS-warmed reference.
        agreements = 0
        for entry in range(predictor.pht.entries):
            if predictor.pht.reconstructed[entry] and \
                    entry not in reconstructor._pending:
                if predictor.pht.counters[entry] == \
                        reference.pht.counters[entry]:
                    agreements += 1
        touched = sum(predictor.pht.reconstructed)
        assert touched > 0
        # The overwhelming majority of reconstructed counters agree.
        assert agreements >= 0.7 * touched

    def test_hook_reconstructs_probed_entries(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        hook = reconstructor.make_hook()
        inst = cond_inst(55)
        entry = predictor.pht.index(5)
        assert not predictor.pht.reconstructed[entry]
        hook(5, inst)
        assert predictor.pht.reconstructed[entry]

    def test_hook_ignores_unconditional(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        hook = reconstructor.make_hook()
        hook(5, Instruction(Opcode.JMP, target=9))
        assert reconstructor.log_walk_steps == 0

    def test_infer_counters_false_leaves_stale_values(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        stale = list(predictor.pht.counters)
        reconstructor = ReverseBranchReconstructor(
            predictor, infer_counters=False
        )
        reconstructor.prepare(log)
        reconstructor.drain()
        assert predictor.pht.counters == stale
        assert reconstructor.counter_writes == 0

    def test_counter_writes_accounted(self):
        log, _ = synth_log()
        predictor = BranchPredictor(config())
        reconstructor = ReverseBranchReconstructor(predictor)
        reconstructor.prepare(log)
        reconstructor.drain()
        assert reconstructor.counter_writes > 0
