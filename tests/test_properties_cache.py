"""Property-based tests of the reverse cache-reconstruction invariant.

The central claim of paper §3.1: scanning the *complete* reference stream
in reverse and applying the reconstruction rules yields the same tag +
recency state as forward LRU simulation of that stream, for any stale
starting state.  (With partial streams the result is an approximation;
with the full stream and allocate-on-reference semantics it is exact.)
"""

from hypothesis import given, settings, strategies as st

from repro.cache import Cache, CacheConfig, WritePolicy


def make_pair(assoc, sets):
    config = CacheConfig(
        name="p", size_bytes=sets * assoc * 64, line_bytes=64,
        associativity=assoc, write_policy=WritePolicy.WBWA, hit_latency=1,
    )
    return Cache(config), Cache(config)


line_addresses = st.integers(min_value=0, max_value=63).map(
    lambda line: line * 64
)


@st.composite
def stale_and_stream(draw):
    assoc = draw(st.sampled_from([1, 2, 4]))
    sets = draw(st.sampled_from([1, 2, 4]))
    stale = draw(st.lists(line_addresses, min_size=0, max_size=12))
    stream = draw(st.lists(line_addresses, min_size=0, max_size=40))
    return assoc, sets, stale, stream


@given(stale_and_stream())
@settings(max_examples=200, deadline=None)
def test_full_reverse_scan_equals_forward_lru(case):
    assoc, sets, stale, stream = case
    forward, reverse = make_pair(assoc, sets)

    # Identical stale state on both caches.
    for address in stale:
        forward.access(address)
        reverse.access(address)

    # Forward cache simulates the skip region normally (reads: allocate-on-
    # reference semantics match reconstruction's conservative allocation).
    for address in stream:
        forward.access(address)

    # Reverse cache reconstructs from the logged stream, newest first.
    reverse.begin_reconstruction()
    for address in reversed(stream):
        reverse.reconstruct_reference(address)

    assert forward.state_fingerprint() == reverse.state_fingerprint()


@given(stale_and_stream())
@settings(max_examples=100, deadline=None)
def test_reconstruction_applies_at_most_capacity_per_set(case):
    assoc, sets, stale, stream = case
    _, cache = make_pair(assoc, sets)
    for address in stale:
        cache.access(address)
    cache.begin_reconstruction()
    applied = sum(
        1 for address in reversed(stream)
        if cache.reconstruct_reference(address)
    )
    assert applied <= assoc * sets
    assert applied == cache.stats.reconstruction_applied


@given(stale_and_stream())
@settings(max_examples=100, deadline=None)
def test_reconstructed_contents_are_stream_suffix_lines(case):
    """Every reconstructed block must correspond to some logged reference
    (no invented state)."""
    assoc, sets, stale, stream = case
    _, cache = make_pair(assoc, sets)
    for address in stale:
        cache.access(address)
    stale_lines = cache.contents()
    cache.begin_reconstruction()
    for address in reversed(stream):
        cache.reconstruct_reference(address)
    allowed = stale_lines | {cache.line_address(a) for a in stream}
    assert cache.contents() <= allowed


@given(stale_and_stream())
@settings(max_examples=60, deadline=None)
def test_reconstruction_idempotent_under_redundant_suffix(case):
    """Replaying the stream tail twice in reverse changes nothing: all
    second-pass references hit reconstructed blocks or full sets."""
    assoc, sets, stale, stream = case
    _, cache = make_pair(assoc, sets)
    for address in stale:
        cache.access(address)
    cache.begin_reconstruction()
    for address in reversed(stream):
        cache.reconstruct_reference(address)
    fingerprint = cache.state_fingerprint()
    for address in reversed(stream):
        cache.reconstruct_reference(address)
    assert cache.state_fingerprint() == fingerprint


@given(
    st.lists(line_addresses, min_size=1, max_size=30),
    st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_wbwa_write_reconstruction_matches_forward(addresses, writes):
    """With write-allocate caches, mixed load/store streams also match."""
    forward, reverse = make_pair(2, 2)
    stream = [
        (address, write)
        for address, write in zip(addresses, writes * len(addresses))
    ]
    for address, write in stream:
        forward.access(address, is_write=write)
    reverse.begin_reconstruction()
    for address, write in reversed(stream):
        reverse.reconstruct_reference(address, is_write=write)
    assert forward.state_fingerprint() == reverse.state_fingerprint()
