"""Tests for the steady-state warm-up prefix (DESIGN.md §2)."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.sampling import (
    SampledSimulator,
    SamplingRegimen,
    measure_true_ipc,
)
from repro.sampling.controller import steady_state_prefix
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("vpr")


class TestPrefixMechanics:
    def test_prefix_advances_machine_and_warms_state(self, workload):
        machine = workload.make_machine()
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
        predictor = BranchPredictor(PredictorConfig(512, 128, 8))
        steady_state_prefix(machine, hierarchy, predictor, 5_000)
        assert machine.instructions_retired == 5_000
        assert hierarchy.l1d.stats.accesses > 0
        assert predictor.pht.updates > 0

    def test_zero_prefix_is_noop(self, workload):
        machine = workload.make_machine()
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
        predictor = BranchPredictor(PredictorConfig(512, 128, 8))
        steady_state_prefix(machine, hierarchy, predictor, 0)
        assert machine.instructions_retired == 0
        assert hierarchy.total_updates() == 0

    def test_prefix_matches_smarts_skip_state(self, workload):
        """The prefix is definitionally SMARTS warming, so both paths must
        produce identical microarchitectural state."""
        machine_a = workload.make_machine()
        hierarchy_a = MemoryHierarchy(paper_hierarchy_config(scale=32))
        predictor_a = BranchPredictor(PredictorConfig(512, 128, 8))
        steady_state_prefix(machine_a, hierarchy_a, predictor_a, 6_000)

        from repro.warmup import SimulationContext
        machine_b = workload.make_machine()
        hierarchy_b = MemoryHierarchy(paper_hierarchy_config(scale=32))
        predictor_b = BranchPredictor(PredictorConfig(512, 128, 8))
        smarts = SmartsWarmup()
        smarts.bind(SimulationContext(
            machine=machine_b, hierarchy=hierarchy_b, predictor=predictor_b,
        ))
        smarts.skip(6_000)

        assert hierarchy_a.l1d.state_fingerprint() == \
            hierarchy_b.l1d.state_fingerprint()
        assert hierarchy_a.l2.state_fingerprint() == \
            hierarchy_b.l2.state_fingerprint()
        assert predictor_a.pht.counters == predictor_b.pht.counters


class TestPrefixEffect:
    def test_measurement_excludes_prefix(self, workload):
        result = measure_true_ipc(workload, 20_000, warmup_prefix=10_000)
        assert result.instructions == 20_000

    def test_prefixed_baseline_is_faster_than_cold(self, workload):
        cold = measure_true_ipc(workload, 30_000)
        warm = measure_true_ipc(workload, 30_000, warmup_prefix=30_000)
        # Starting from steady state, the measured region avoids the
        # compulsory-miss storm of a cold start.
        assert warm.ipc > cold.ipc

    def test_sampled_run_accepts_prefix(self, workload):
        regimen = SamplingRegimen(30_000, 5, 800, seed=3)
        simulator = SampledSimulator(workload, regimen, warmup_prefix=8_000)
        result = simulator.run(SmartsWarmup())
        assert result.extra["warmup_prefix"] == 8_000
        assert len(result.cluster_ipcs) == 5

    def test_prefix_reduces_smarts_bias(self, workload):
        """With matched prefixes, the SMARTS estimate tracks the true IPC
        more closely than a cold-started baseline comparison would."""
        prefix = 30_000
        true_warm = measure_true_ipc(workload, 60_000,
                                     warmup_prefix=prefix)
        regimen = SamplingRegimen(60_000, 10, 800, seed=3)
        sampled = SampledSimulator(
            workload, regimen, warmup_prefix=prefix,
        ).run(SmartsWarmup())
        # Ten clusters is a deliberately tiny sample; this only guards
        # against gross divergence.
        assert sampled.relative_error(true_warm.ipc) < 0.30
