"""Unit tests for counters, Gshare PHT, BTB, and RAS."""

import pytest

from repro.branch import (
    PredictorConfig,
    paper_predictor_config,
    STRONG_NOT_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    STRONG_TAKEN,
    predict_taken,
    update_counter,
    apply_history,
    GsharePHT,
    BranchTargetBuffer,
    ReturnAddressStack,
)


def small_config(pht=256, btb=64, ras=8) -> PredictorConfig:
    return PredictorConfig(pht_entries=pht, btb_entries=btb, ras_entries=ras)


class TestCounters:
    def test_prediction_boundary(self):
        assert not predict_taken(STRONG_NOT_TAKEN)
        assert not predict_taken(WEAK_NOT_TAKEN)
        assert predict_taken(WEAK_TAKEN)
        assert predict_taken(STRONG_TAKEN)

    def test_saturation_up(self):
        assert update_counter(STRONG_TAKEN, True) == STRONG_TAKEN

    def test_saturation_down(self):
        assert update_counter(STRONG_NOT_TAKEN, False) == STRONG_NOT_TAKEN

    def test_increment_decrement(self):
        assert update_counter(WEAK_NOT_TAKEN, True) == WEAK_TAKEN
        assert update_counter(WEAK_TAKEN, False) == WEAK_NOT_TAKEN

    def test_three_taken_pins_any_state(self):
        for initial in range(4):
            assert apply_history(initial, [True] * 3) == STRONG_TAKEN

    def test_three_not_taken_pins_any_state(self):
        for initial in range(4):
            assert apply_history(initial, [False] * 3) == STRONG_NOT_TAKEN


class TestConfig:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            PredictorConfig(pht_entries=100, btb_entries=64, ras_entries=8)

    def test_history_bits(self):
        assert small_config(pht=256).history_bits == 8
        assert paper_predictor_config(scale=1).history_bits == 16

    def test_paper_scale_validation(self):
        with pytest.raises(ValueError):
            paper_predictor_config(scale=3)


class TestGshare:
    def test_index_mixes_history(self):
        pht = GsharePHT(small_config())
        base = pht.index(0x12)
        pht.push_history(True)
        assert pht.index(0x12) != base

    def test_initial_prediction_not_taken(self):
        pht = GsharePHT(small_config())
        assert not pht.predict(5)

    def test_training_flips_prediction(self):
        pht = GsharePHT(small_config())
        history = pht.history
        pht.update(5, True, history=history)
        # Re-point the GHR at the trained entry.
        pht.set_history(history)
        assert pht.predict(5)

    def test_update_shifts_history(self):
        pht = GsharePHT(small_config())
        pht.update(5, True)
        assert pht.history & 1 == 1
        pht.update(5, False)
        assert pht.history & 1 == 0

    def test_history_masked_to_width(self):
        pht = GsharePHT(small_config(pht=16))  # 4 history bits
        for _ in range(10):
            pht.push_history(True)
        assert pht.history == 0b1111

    def test_set_history_masks(self):
        pht = GsharePHT(small_config(pht=16))
        pht.set_history(0xFFFF)
        assert pht.history == 0xF

    def test_reset(self):
        pht = GsharePHT(small_config())
        pht.update(3, True)
        pht.reset()
        assert pht.history == 0
        assert all(c == WEAK_NOT_TAKEN for c in pht.counters)

    def test_clear_reconstructed(self):
        pht = GsharePHT(small_config())
        pht.reconstructed[3] = True
        pht.clear_reconstructed()
        assert not any(pht.reconstructed)


class TestBTB:
    def test_miss_returns_none(self):
        btb = BranchTargetBuffer(small_config())
        assert btb.lookup(10) is None

    def test_update_then_hit(self):
        btb = BranchTargetBuffer(small_config())
        btb.update(10, 55)
        assert btb.lookup(10) == 55

    def test_aliasing_eviction(self):
        btb = BranchTargetBuffer(small_config(btb=64))
        btb.update(10, 55)
        btb.update(10 + 64, 77)   # same entry, different tag
        assert btb.lookup(10) is None
        assert btb.lookup(10 + 64) == 77

    def test_reconstruct_first_claimant_wins(self):
        btb = BranchTargetBuffer(small_config(btb=64))
        btb.clear_reconstructed()
        assert btb.reconstruct(10, 55)       # newest claims
        assert not btb.reconstruct(10 + 64, 77)  # older ignored
        assert btb.lookup(10) == 55

    def test_reconstruct_different_entries(self):
        btb = BranchTargetBuffer(small_config(btb=64))
        assert btb.reconstruct(1, 11)
        assert btb.reconstruct(2, 22)
        assert btb.lookup(1) == 11 and btb.lookup(2) == 22

    def test_reset(self):
        btb = BranchTargetBuffer(small_config())
        btb.update(10, 55)
        btb.reset()
        assert btb.lookup(10) is None


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(small_config())
        ras.push(100)
        ras.push(200)
        assert ras.pop() == 200
        assert ras.pop() == 100

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(small_config())
        ras.push(42)
        assert ras.peek() == 42
        assert ras.depth == 1

    def test_underflow_returns_zero(self):
        ras = ReturnAddressStack(small_config())
        assert ras.pop() == 0
        assert ras.depth == 0

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(small_config(ras=4))
        for value in (1, 2, 3, 4, 5):
            ras.push(value)
        assert ras.depth == 4
        assert [ras.pop() for _ in range(4)] == [5, 4, 3, 2]
        assert ras.pop() == 0  # 1 was overwritten

    def test_contents_from_top(self):
        ras = ReturnAddressStack(small_config(ras=4))
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.contents_from_top() == [3, 2, 1]

    def test_set_contents_roundtrip(self):
        ras = ReturnAddressStack(small_config(ras=4))
        ras.set_contents([9, 8, 7])
        assert ras.contents_from_top() == [9, 8, 7]
        assert ras.pop() == 9

    def test_set_contents_truncates_to_capacity(self):
        ras = ReturnAddressStack(small_config(ras=2))
        ras.set_contents([1, 2, 3, 4])
        assert ras.contents_from_top() == [1, 2]

    def test_reset(self):
        ras = ReturnAddressStack(small_config())
        ras.push(5)
        ras.reset()
        assert ras.depth == 0
        assert ras.peek() == 0
