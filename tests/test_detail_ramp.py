"""Tests for SMARTS-style detailed warming (measurement ramp)."""


from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.functional import FunctionalMachine
from repro.isa import ProgramBuilder
from repro.sampling import SampledSimulator, SamplingRegimen
from repro.timing import TimingSimulator, TimingResult
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


def alu_loop_simulator():
    builder = ProgramBuilder()
    builder.label("top")
    for reg in range(1, 9):
        builder.addi(reg, reg, 1)
    builder.jmp("top")
    machine = FunctionalMachine(builder.build())
    hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=16))
    predictor = BranchPredictor(PredictorConfig(1024, 256, 8))
    return TimingSimulator(machine, hierarchy, predictor)


class TestTimingResultWindows:
    def test_default_measures_everything(self):
        result = TimingResult(instructions=100, cycles=50)
        assert result.measured_instructions == 100
        assert result.measured_cycles == 50
        assert result.ipc == 2.0

    def test_explicit_window(self):
        result = TimingResult(instructions=100, cycles=50,
                              measured_instructions=80,
                              measured_cycles=20)
        assert result.ipc == 4.0

    def test_zero_measured_cycles(self):
        result = TimingResult(instructions=0, cycles=0)
        assert result.ipc == 0.0


class TestMeasureAfter:
    def test_window_excludes_ramp(self):
        sim = alu_loop_simulator()
        result = sim.run(2_000, measure_after=500)
        assert result.instructions == 2_000
        assert result.measured_instructions == 1_500
        assert 0 < result.measured_cycles < result.cycles

    def test_ramp_hides_pipeline_fill(self):
        cold = alu_loop_simulator().run(2_000)
        warm = alu_loop_simulator().run(2_500, measure_after=500)
        # Excluding the fill ramp yields equal or better measured IPC.
        assert warm.ipc >= cold.ipc

    def test_measure_after_zero_is_identity(self):
        a = alu_loop_simulator().run(1_000)
        b = alu_loop_simulator().run(1_000, measure_after=0)
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc

    def test_halt_during_ramp_degrades_gracefully(self):
        builder = ProgramBuilder()
        builder.addi(1, 1, 1)
        builder.halt()
        machine = FunctionalMachine(builder.build())
        sim = TimingSimulator(
            machine,
            MemoryHierarchy(paper_hierarchy_config(scale=16)),
            BranchPredictor(PredictorConfig(1024, 256, 8)),
        )
        result = sim.run(1_000, measure_after=500)
        # Run ended inside the ramp: fall back to whole-run measurement.
        assert result.instructions == 2
        assert result.measured_instructions == result.instructions


class TestControllerRamp:
    def test_ramp_preserves_population_coverage(self):
        workload = build_workload("ammp")
        regimen = SamplingRegimen(40_000, 5, 800, seed=2)
        simulator = SampledSimulator(workload, regimen, detail_ramp=200)
        result = simulator.run(SmartsWarmup())
        cost = result.cost
        covered = cost.functional_instructions + cost.hot_instructions
        last_start = regimen.cluster_starts()[-1]
        assert covered == last_start + regimen.cluster_size

    def test_ramp_changes_only_measurement(self):
        workload = build_workload("ammp")
        regimen = SamplingRegimen(40_000, 5, 800, seed=2)
        plain = SampledSimulator(workload, regimen).run(SmartsWarmup())
        ramped = SampledSimulator(
            workload, regimen, detail_ramp=200,
        ).run(SmartsWarmup())
        assert len(plain.cluster_ipcs) == len(ramped.cluster_ipcs)
        # Ramped clusters simulate more instructions hot.
        assert ramped.cost.hot_instructions > plain.cost.hot_instructions

    def test_ramp_capped_by_gap(self):
        workload = build_workload("ammp")
        # First cluster may start near zero; ramp must not underflow.
        regimen = SamplingRegimen(30_000, 6, 500, seed=0)
        simulator = SampledSimulator(workload, regimen, detail_ramp=5_000)
        result = simulator.run(SmartsWarmup())
        assert len(result.cluster_ipcs) == 6
