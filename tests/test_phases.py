"""Tests for IPC phase profiling."""

import pytest

from repro.analysis import IPCProfile, measure_ipc_profile
from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.sampling import SimulatorConfigs
from repro.workloads import build_workload


def configs():
    return SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )


class TestProfileObject:
    def test_mean_and_cov(self):
        profile = IPCProfile("x", 100, ipcs=[1.0, 2.0, 3.0])
        assert profile.mean == pytest.approx(2.0)
        assert profile.coefficient_of_variation > 0

    def test_constant_profile_has_zero_cov(self):
        profile = IPCProfile("x", 100, ipcs=[1.5] * 10)
        assert profile.coefficient_of_variation == 0.0

    def test_extremes(self):
        profile = IPCProfile("x", 100, ipcs=[0.5, 0.1, 0.9, 0.4])
        assert profile.extremes() == (1, 2)

    def test_extremes_empty_raises(self):
        with pytest.raises(ValueError):
            IPCProfile("x", 100).extremes()

    def test_sparkline_length_and_charset(self):
        profile = IPCProfile("x", 100, ipcs=[float(i) for i in range(120)])
        line = profile.sparkline(width=60)
        assert 0 < len(line) <= 61
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_empty_sparkline(self):
        assert IPCProfile("x", 100).sparkline() == ""


class TestMeasurement:
    def test_window_count(self):
        profile = measure_ipc_profile(
            build_workload("ammp"), 40_000, 2_000, configs(),
        )
        assert len(profile.ipcs) == 20
        assert all(ipc > 0 for ipc in profile.ipcs)

    def test_validation(self):
        workload = build_workload("ammp")
        with pytest.raises(ValueError):
            measure_ipc_profile(workload, 1_000, 0)
        with pytest.raises(ValueError):
            measure_ipc_profile(workload, 500, 1_000)

    def test_phased_workload_varies_more_than_flat(self):
        flat = measure_ipc_profile(
            build_workload("art"), 60_000, 2_000, configs(),
            warmup_prefix=10_000,
        )
        phased = measure_ipc_profile(
            build_workload("vpr"), 60_000, 2_000, configs(),
            warmup_prefix=10_000,
        )
        # vpr alternates annealing/wire-sweep phases with very different
        # IPCs; art streams steadily.
        assert phased.coefficient_of_variation > \
            flat.coefficient_of_variation

    def test_deterministic(self):
        a = measure_ipc_profile(build_workload("vpr"), 30_000, 1_500,
                                configs())
        b = measure_ipc_profile(build_workload("vpr"), 30_000, 1_500,
                                configs())
        assert a.ipcs == b.ipcs
