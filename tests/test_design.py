"""Tests for pilot-driven sampling-regimen design."""

import math

import pytest

from repro.sampling import (
    SampledSimulator,
    clusters_for_error,
    pilot_study,
    recommend_regimen,
)
from repro.sampling.statistics import Z_95
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


class TestClustersForError:
    def test_formula(self):
        # n = (1.96 * sigma / (eps * mu))^2, rounded up.
        n = clusters_for_error(mean=1.0, std_dev=0.2,
                               target_relative_error=0.05)
        expected = math.ceil((Z_95 * 0.2 / 0.05) ** 2)
        assert n == expected

    def test_zero_variance_needs_one_cluster(self):
        assert clusters_for_error(1.0, 0.0, 0.05) == 1

    def test_tighter_target_needs_more_clusters(self):
        loose = clusters_for_error(1.0, 0.2, 0.10)
        tight = clusters_for_error(1.0, 0.2, 0.02)
        assert tight > loose

    def test_higher_variance_needs_more_clusters(self):
        calm = clusters_for_error(1.0, 0.1, 0.05)
        wild = clusters_for_error(1.0, 0.4, 0.05)
        assert wild > calm

    def test_validation(self):
        with pytest.raises(ValueError):
            clusters_for_error(0.0, 0.1, 0.05)
        with pytest.raises(ValueError):
            clusters_for_error(1.0, 0.1, 0.0)
        with pytest.raises(ValueError):
            clusters_for_error(1.0, 0.1, 1.5)


class TestPilot:
    def test_pilot_returns_plausible_statistics(self):
        workload = build_workload("ammp")
        mean, std_dev = pilot_study(
            workload, 40_000, cluster_size=800, pilot_clusters=5,
        )
        assert 0 < mean <= 4.0
        assert std_dev >= 0

    def test_pilot_deterministic(self):
        workload = build_workload("ammp")
        first = pilot_study(workload, 40_000, 800, pilot_clusters=4)
        second = pilot_study(workload, 40_000, 800, pilot_clusters=4)
        assert first == second


class TestRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self):
        return recommend_regimen(
            build_workload("vpr"), 80_000, cluster_size=800,
            target_relative_error=0.05, pilot_clusters=6,
        )

    def test_fields(self, recommendation):
        assert recommendation.workload_name == "vpr"
        assert recommendation.recommended_clusters >= 1
        assert recommendation.pilot_mean_ipc > 0

    def test_capped_to_population(self, recommendation):
        maximum = 80_000 // (2 * 800)
        assert recommendation.recommended_clusters <= maximum

    def test_predicted_bound(self, recommendation):
        bound = recommendation.predicted_error_bound
        expected = Z_95 * recommendation.pilot_std_dev / math.sqrt(
            recommendation.recommended_clusters
        )
        assert bound == pytest.approx(expected)

    def test_materialised_regimen_is_usable(self, recommendation):
        regimen = recommendation.regimen(80_000, seed=5)
        assert regimen.num_clusters == recommendation.recommended_clusters
        workload = build_workload("vpr")
        result = SampledSimulator(workload, regimen).run(SmartsWarmup())
        assert len(result.cluster_ipcs) == regimen.num_clusters

    def test_recommendation_hits_target_on_average(self, recommendation):
        """Running the recommended design, the realised error bound should
        be in the ballpark of the target (pilot sigma is itself noisy)."""
        workload = build_workload("vpr")
        regimen = recommendation.regimen(80_000, seed=11)
        result = SampledSimulator(workload, regimen).run(SmartsWarmup())
        realised = result.estimate.error_bound / result.estimate.mean
        assert realised < 3 * recommendation.target_relative_error
