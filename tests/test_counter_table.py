"""Unit + property tests for the a-priori counter-inference table
(paper §3.2, Figure 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (
    STRONG_NOT_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    STRONG_TAKEN,
    apply_history,
)
from repro.core.counter_table import (
    CounterInferenceTable,
    MAX_HISTORY,
    default_table,
    prepend_outcome,
    resolve,
    _infer,
)


def encode_reverse(outcomes_newest_first):
    """Pack a reverse history into (length, bits): bit 0 = most recent."""
    bits = 0
    for position, taken in enumerate(outcomes_newest_first):
        bits |= int(taken) << position
    return len(outcomes_newest_first), bits


@pytest.fixture(scope="module")
def table():
    return default_table()


class TestFigure3Cases:
    def test_three_taken_pins_strongly_taken(self, table):
        # Case 1: last three outcomes taken -> counter is 3 regardless of
        # the pre-history state.
        inference = table.lookup(*encode_reverse([True, True, True]))
        assert inference.exact
        assert inference.value == STRONG_TAKEN

    def test_three_not_taken_pins_strongly_not_taken(self, table):
        inference = table.lookup(*encode_reverse([False, False, False]))
        assert inference.exact
        assert inference.value == STRONG_NOT_TAKEN

    def test_pattern_anywhere_in_history_pins(self, table):
        # Case 3: T T T deeper in the history, then newer outcomes applied
        # on top, still pins exactly.
        # Reverse history (newest first): N, T, T, T, T
        inference = table.lookup(
            *encode_reverse([False, True, True, True, True])
        )
        assert inference.exact
        # Forward: T T T T (counter=3) then N -> 2.
        assert inference.value == WEAK_TAKEN

    def test_single_outcome_is_ambiguous(self, table):
        inference = table.lookup(*encode_reverse([True]))
        assert not inference.exact
        assert len(inference.possible) == 3

    def test_single_taken_predicts_middle_state(self, table):
        # Possible states after one taken: {1, 2, 3}; middle -> 2.
        inference = table.lookup(*encode_reverse([True]))
        assert inference.value == WEAK_TAKEN

    def test_single_not_taken_predicts_middle_state(self, table):
        # Possible states after one not-taken: {0, 1, 2}; middle -> 1.
        inference = table.lookup(*encode_reverse([False]))
        assert inference.value == WEAK_NOT_TAKEN

    def test_no_history_leaves_stale(self, table):
        inference = table.lookup(0, 0)
        assert inference.value is None
        assert not inference.exact

    def test_two_taken_leaves_taken_side_pair(self, table):
        # T T forward from {0..3} -> {2, 3}; rule picks the weak form.
        inference = table.lookup(*encode_reverse([True, True]))
        assert not inference.exact
        assert set(inference.possible) == {WEAK_TAKEN, STRONG_TAKEN}
        assert inference.value == WEAK_TAKEN

    def test_two_not_taken_leaves_not_taken_side_pair(self, table):
        inference = table.lookup(*encode_reverse([False, False]))
        assert set(inference.possible) == {STRONG_NOT_TAKEN, WEAK_NOT_TAKEN}
        assert inference.value == WEAK_NOT_TAKEN


class TestMechanics:
    def test_prepend_outcome_composes(self):
        identity = (0, 1, 2, 3)
        one_taken = prepend_outcome(identity, True)
        assert one_taken == (1, 2, 3, 3)
        two_taken = prepend_outcome(one_taken, True)
        assert two_taken == (2, 3, 3, 3)

    def test_resolve_three_states_picks_middle(self):
        inference = resolve(frozenset({0, 1, 2}), taken_count=0, length=1)
        assert inference.value == 1

    def test_resolve_straddling_pair_uses_bias(self):
        taken_biased = resolve(frozenset({1, 2}), taken_count=3, length=4)
        assert taken_biased.value == WEAK_TAKEN
        not_taken_biased = resolve(frozenset({1, 2}), taken_count=1, length=4)
        assert not_taken_biased.value == WEAK_NOT_TAKEN

    def test_truncation_beyond_max_history(self, table):
        long_bits = (1 << 40) - 1
        inference = table.lookup(40, long_bits)
        truncated = table.lookup(MAX_HISTORY, (1 << MAX_HISTORY) - 1)
        assert inference == truncated

    def test_table_size(self):
        small = CounterInferenceTable(max_history=4)
        assert len(small) == sum(2 ** k for k in range(5))

    def test_max_history_validation(self):
        with pytest.raises(ValueError):
            CounterInferenceTable(max_history=0)

    def test_default_table_is_shared(self):
        assert default_table() is default_table()


@given(st.lists(st.booleans(), min_size=0, max_size=MAX_HISTORY))
@settings(max_examples=300, deadline=None)
def test_table_matches_direct_inference(outcomes_newest_first):
    length, bits = encode_reverse(outcomes_newest_first)
    assert default_table().lookup(length, bits) == _infer(length, bits)


@given(st.lists(st.booleans(), min_size=1, max_size=MAX_HISTORY),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=300, deadline=None)
def test_exact_inference_equals_forward_replay(forward_history, initial):
    """Whenever the table claims exactness, the value must equal a forward
    replay of the history from ANY initial counter state."""
    reverse = list(reversed(forward_history))
    length, bits = encode_reverse(reverse)
    inference = default_table().lookup(length, bits)
    replayed = apply_history(initial, forward_history)
    if inference.exact:
        assert inference.value == replayed
    else:
        assert replayed in inference.possible


@given(st.lists(st.booleans(), min_size=1, max_size=MAX_HISTORY))
@settings(max_examples=200, deadline=None)
def test_possible_set_shrinks_with_more_history(outcomes_newest_first):
    """Adding older outcomes can only narrow the possible-state set."""
    table = default_table()
    previous = None
    for prefix_length in range(1, len(outcomes_newest_first) + 1):
        length, bits = encode_reverse(outcomes_newest_first[:prefix_length])
        current = set(table.lookup(length, bits).possible)
        if previous is not None:
            assert current <= previous
        previous = current


@given(st.lists(st.booleans(), min_size=3, max_size=MAX_HISTORY))
@settings(max_examples=200, deadline=None)
def test_three_consecutive_equal_outcomes_guarantee_exactness(history):
    """If the forward history contains three equal consecutive outcomes,
    the reverse inference must be exact."""
    has_run = any(
        history[i] == history[i + 1] == history[i + 2]
        for i in range(len(history) - 2)
    )
    length, bits = encode_reverse(list(reversed(history)))
    inference = default_table().lookup(length, bits)
    if has_run:
        assert inference.exact
