"""Regression tests for experiment-harness correctness fixes.

Covers two bugs fixed alongside the parallel engine:

- ``full_matrix("")`` used to cache under the literal empty string, so
  changing ``REPRO_EXPERIMENT_SCALE`` between calls silently returned
  the grid computed for the *previous* scale;
- ``run_workload_experiment`` used a caller-supplied ``configs`` for the
  sampled runs but always built the true-IPC baseline from
  ``scale.configs()``, scoring outcomes against the wrong baseline.
"""

from __future__ import annotations

import pytest

from repro.branch import paper_predictor_config
from repro.cache import paper_hierarchy_config
from repro.harness import experiment as experiment_module
from repro.harness.experiment import (
    SCALES,
    full_matrix,
    run_workload_experiment,
    true_run_for,
)
from repro.sampling import SimulatorConfigs
from repro.warmup import make_method

CI = SCALES["ci"]


def tiny_configs() -> SimulatorConfigs:
    """A deliberately different microarchitecture from CI.configs()."""
    return SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=64),
        predictor=paper_predictor_config(scale=64),
    )


class TestFullMatrixScaleResolution:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        experiment_module._full_matrix_cached.cache_clear()
        yield
        experiment_module._full_matrix_cached.cache_clear()

    def test_env_change_between_calls_is_honoured(self, monkeypatch):
        seen = []

        def fake_run_matrix(method_factory, scale=None, **kwargs):
            seen.append(scale.name)
            return {"grid-for": scale.name}

        monkeypatch.setattr(experiment_module, "run_matrix",
                            fake_run_matrix)
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert full_matrix("") == {"grid-for": "ci"}
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "bench")
        assert full_matrix("") == {"grid-for": "bench"}
        assert seen == ["ci", "bench"]

    def test_resolved_scale_still_cached(self, monkeypatch):
        calls = []

        def fake_run_matrix(method_factory, scale=None, **kwargs):
            calls.append(scale.name)
            return {}

        monkeypatch.setattr(experiment_module, "run_matrix",
                            fake_run_matrix)
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        full_matrix("")
        full_matrix("ci")  # explicit name resolves to the same entry
        full_matrix("")
        assert calls == ["ci"]


class TestTrueRunConfigs:
    def test_configs_participate_in_cache_key(self):
        default_run = true_run_for("ammp", CI)
        override_run = true_run_for("ammp", CI, tiny_configs())
        assert default_run.cycles != override_run.cycles
        # Same inputs hit the per-process cache, not a recomputation.
        assert true_run_for("ammp", CI, tiny_configs()) is override_run
        assert true_run_for("ammp", CI, CI.configs()) is default_run

    def test_experiment_scored_against_matching_baseline(self):
        configs = tiny_configs()
        experiment = run_workload_experiment(
            "ammp", [make_method("None")], CI, configs=configs,
        )
        assert experiment.true_run == true_run_for("ammp", CI, configs)
        assert experiment.true_run != true_run_for("ammp", CI)
