"""Unit + property tests for sampling regimens."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import SamplingRegimen


class TestValidation:
    def test_positive_population(self):
        with pytest.raises(ValueError):
            SamplingRegimen(0, 1, 1)

    def test_positive_clusters(self):
        with pytest.raises(ValueError):
            SamplingRegimen(1000, 0, 10)
        with pytest.raises(ValueError):
            SamplingRegimen(1000, 10, 0)

    def test_sample_must_fit_in_half(self):
        with pytest.raises(ValueError):
            SamplingRegimen(1000, 10, 100)


class TestProperties:
    def test_sampled_instructions(self):
        regimen = SamplingRegimen(100_000, 10, 1000)
        assert regimen.sampled_instructions == 10_000
        assert regimen.sampling_fraction == pytest.approx(0.1)

    def test_describe(self):
        text = SamplingRegimen(100_000, 10, 1000).describe()
        assert "10 clusters" in text and "1000" in text


class TestStarts:
    def test_deterministic_for_same_seed(self):
        a = SamplingRegimen(100_000, 10, 1000, seed=5)
        b = SamplingRegimen(100_000, 10, 1000, seed=5)
        assert a.cluster_starts() == b.cluster_starts()

    def test_different_seeds_differ(self):
        a = SamplingRegimen(100_000, 10, 1000, seed=5).cluster_starts()
        b = SamplingRegimen(100_000, 10, 1000, seed=6).cluster_starts()
        assert a != b

    def test_count(self):
        assert len(SamplingRegimen(100_000, 17, 500).cluster_starts()) == 17


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_starts_are_sorted_disjoint_and_in_range(num_clusters, cluster_size,
                                                 seed):
    total = max(num_clusters * cluster_size * 2, 1000)
    regimen = SamplingRegimen(total, num_clusters, cluster_size, seed=seed)
    starts = regimen.cluster_starts()
    assert len(starts) == num_clusters
    previous_end = 0
    for start in starts:
        assert start >= previous_end          # non-overlapping
        previous_end = start + cluster_size
    assert previous_end <= total              # last cluster fits
