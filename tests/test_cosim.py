"""Tests for co-simulation validation (paper §4)."""

import pytest

from repro.functional import FunctionalMachine
from repro.isa import ProgramBuilder
from repro.timing.cosim import (
    CosimDivergenceError,
    CosimValidator,
    validate_workload,
)
from repro.workloads import PAPER_WORKLOADS, build_workload


class TestValidator:
    def test_healthy_execution_validates(self):
        report = validate_workload(build_workload("gcc"), count=20_000)
        assert report.instructions_checked == 20_000
        assert report.register_checks > 0
        assert report.memory_checks > 0

    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_every_workload_passes_cosim(self, name):
        report = validate_workload(build_workload(name), count=8_000)
        assert report.instructions_checked == 8_000

    def test_mid_stream_attachment(self):
        machine = build_workload("vpr").make_machine()
        machine.run(5_000)
        validator = CosimValidator(machine)
        report = validator.run(5_000)
        assert report.instructions_checked == 5_000

    def test_check_interval_validation(self):
        machine = build_workload("vpr").make_machine()
        with pytest.raises(ValueError):
            CosimValidator(machine, check_interval=0)

    def test_halt_stops_validation(self):
        builder = ProgramBuilder()
        builder.addi(1, 1, 1)
        builder.halt()
        machine = FunctionalMachine(builder.build())
        report = CosimValidator(machine).run(100)
        assert report.instructions_checked <= 2


class TestDivergenceDetection:
    def _validator(self):
        machine = build_workload("twolf").make_machine()
        machine.run(1_000)
        return CosimValidator(machine, check_interval=1)

    def test_register_corruption_detected(self):
        validator = self._validator()
        validator.run(10)
        validator.primary.registers[5] ^= 0xDEADBEEF
        with pytest.raises(CosimDivergenceError):
            validator.run(200)

    def test_pc_corruption_detected(self):
        validator = self._validator()
        validator.run(10)
        validator.shadow.pc = validator.primary.pc  # keep aligned
        validator.primary.pc += 1
        with pytest.raises(CosimDivergenceError, match="instruction index"):
            validator.run(5)

    def test_memory_corruption_detected(self):
        validator = self._validator()
        validator.run(10)
        # Corrupt the word the net-list chase will read next: r23 holds
        # the current chain node, whose stored value is the next pointer.
        node = validator.primary.registers[23]
        validator.primary.memory.store(
            node, validator.primary.memory.load(node) ^ 0x40,
        )
        with pytest.raises(CosimDivergenceError):
            validator.run(5_000)

    def test_error_reports_location(self):
        validator = self._validator()
        validator.primary.registers[7] += 1
        with pytest.raises(CosimDivergenceError) as exc_info:
            validator.run(200)
        assert exc_info.value.instruction_number >= 0
        assert exc_info.value.field
