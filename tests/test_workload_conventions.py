"""Invariant tests for the workload register/stack conventions.

The generators rely on a strict register discipline (kernels.py header);
a violation would silently corrupt main-loop state and produce bogus
workload behaviour, so these tests verify the discipline dynamically.
"""

import pytest

from repro.isa import STACK_POINTER
from repro.workloads import PAPER_WORKLOADS, build_workload


def run_to_loop(machine, loop_index, minimum_instructions, budget=60_000):
    """Advance until the machine sits at the main-loop head again."""
    machine.run(minimum_instructions)
    for _ in range(budget):
        if machine.pc == loop_index:
            return True
        machine.step()
    return False


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
class TestConventions:
    def test_stack_balanced_at_loop_head(self, name):
        """Every kernel must pop what it pushes: at the main-loop head the
        stack pointer equals its initial value."""
        workload = build_workload(name)
        machine = workload.make_machine()
        loop = workload.program.labels["loop"]
        initial_sp = workload.program.stack_base
        for visit in range(3):
            assert run_to_loop(machine, loop, 1_000)
            assert machine.registers[STACK_POINTER] == initial_sp, (
                f"{name}: unbalanced stack at loop visit {visit}"
            )
            machine.step()  # move off the label before the next search

    def test_untouched_globals_stay_zero(self, name):
        """r20 and r21 are reserved main-loop globals no current workload
        initialises: kernels must never scribble on them."""
        workload = build_workload(name)
        machine = workload.make_machine()
        machine.run(30_000)
        assert machine.registers[20] == 0
        assert machine.registers[21] == 0

    def test_rng_register_keeps_evolving(self, name):
        """The shared LCG (r26) must advance — a kernel accidentally
        clobbering it to a constant would freeze workload randomness."""
        workload = build_workload(name)
        machine = workload.make_machine()
        machine.run(5_000)
        first = machine.registers[26]
        machine.run(5_000)
        second = machine.registers[26]
        assert first != 0
        assert first != second

    def test_main_loop_revisited_forever(self, name):
        workload = build_workload(name)
        machine = workload.make_machine()
        loop = workload.program.labels["loop"]
        visits = 0
        machine.run(2_000)
        for _ in range(30_000):
            if machine.pc == loop:
                visits += 1
            machine.step()
        assert visits >= 3, f"{name}: main loop starved"
