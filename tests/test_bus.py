"""Unit tests for the bus model: transfer time, contention, arbitration."""

from repro.cache import Bus, BusConfig


def make_bus(width=16, cycles_per_beat=2) -> Bus:
    return Bus(BusConfig(name="b", width_bytes=width,
                         cycles_per_beat=cycles_per_beat))


class TestTransferCycles:
    def test_exact_multiple(self):
        config = BusConfig("b", 16, 2)
        assert config.transfer_cycles(64) == 8  # 4 beats x 2 cycles

    def test_rounds_up_partial_beat(self):
        config = BusConfig("b", 16, 2)
        assert config.transfer_cycles(8) == 2   # 1 beat
        assert config.transfer_cycles(17) == 4  # 2 beats

    def test_faster_bus(self):
        config = BusConfig("b", 32, 1)
        assert config.transfer_cycles(64) == 2


class TestContention:
    def test_idle_bus_starts_immediately(self):
        bus = make_bus()
        assert bus.request(100, 16) == 102

    def test_back_to_back_serialises(self):
        bus = make_bus()
        first = bus.request(0, 64)   # finishes at 8
        second = bus.request(0, 64)  # queues behind: 8 + 8
        assert first == 8
        assert second == 16
        assert bus.contention_cycles == 8

    def test_later_request_after_drain_is_uncontended(self):
        bus = make_bus()
        bus.request(0, 64)
        completion = bus.request(50, 16)
        assert completion == 52
        assert bus.contention_cycles == 0

    def test_statistics(self):
        bus = make_bus()
        bus.request(0, 16)
        bus.request(0, 16)
        assert bus.transfers == 2
        assert bus.bytes_moved == 32

    def test_rewind_keeps_stats(self):
        bus = make_bus()
        bus.request(0, 64)
        bus.rewind()
        assert bus.busy_until == 0
        assert bus.transfers == 1

    def test_reset_clears_stats(self):
        bus = make_bus()
        bus.request(0, 64)
        bus.reset()
        assert bus.busy_until == 0
        assert bus.transfers == 0
        assert bus.bytes_moved == 0
