"""Tests for the on-disk result cache (harness/cache.py)."""

from __future__ import annotations

from pathlib import Path

from repro.harness.cache import (
    CACHE_ENV_VAR,
    ResultCache,
    cache_key,
    code_version,
    default_cache_dir,
    resolve_cache,
)
from repro.harness.experiment import SCALES
from repro.sampling import SimulatorConfigs

CI = SCALES["ci"]
BENCH = SCALES["bench"]


class TestCacheKey:
    def test_stable_across_calls(self):
        first = cache_key("cell", "ammp", CI, CI.configs(), "S$BP")
        second = cache_key("cell", "ammp", CI, CI.configs(), "S$BP")
        assert first == second
        assert len(first) == 64
        int(first, 16)  # hex digest

    def test_every_component_participates(self):
        from repro.branch import paper_predictor_config
        from repro.cache import paper_hierarchy_config

        other_configs = SimulatorConfigs(
            hierarchy=paper_hierarchy_config(scale=64),
            predictor=paper_predictor_config(scale=64),
        )
        base = cache_key("cell", "ammp", CI, CI.configs(), "S$BP")
        assert cache_key("true", "ammp", CI, CI.configs(), "S$BP") != base
        assert cache_key("cell", "gcc", CI, CI.configs(), "S$BP") != base
        assert cache_key("cell", "ammp", BENCH, CI.configs(), "S$BP") != base
        assert cache_key("cell", "ammp", CI, other_configs, "S$BP") != base
        assert cache_key("cell", "ammp", CI, CI.configs(), "None") != base

    def test_equal_configs_hash_equally(self):
        # scale.configs() builds fresh objects each call; value equality
        # must be what the key sees, not object identity.
        assert CI.configs() is not CI.configs()
        assert cache_key("cell", "ammp", CI, CI.configs(), "S$BP") == \
            cache_key("cell", "ammp", CI, SimulatorConfigs(
                hierarchy=CI.configs().hierarchy,
                predictor=CI.configs().predictor,
            ), "S$BP")

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("cell", "ammp", CI, CI.configs(), "S$BP")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, {"ipc": 1.25})
        assert key in cache
        assert cache.get(key) == {"ipc": 1.25}
        assert cache.stats.hits == 1
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        # pickle raises different exception types depending on the
        # garbage (UnpicklingError, ValueError, EOFError...); all of
        # them must read as misses, never crash a run.
        for index, garbage in enumerate(
            (b"not a pickle", b"garbage\n", b"", b"\x80")
        ):
            cache = ResultCache(tmp_path / f"cache-{index}")
            key = "ab" + "0" * 62
            cache.put(key, [1, 2, 3])
            cache._path(key).write_bytes(garbage)
            assert cache.get(key) is None
            assert cache.stats.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for prefix in ("aa", "bb", "cc"):
            cache.put(prefix + "0" * 62, prefix)
        assert cache.clear() == 3
        assert cache.entry_count() == 0


class TestResolveCache:
    def test_env_unset_defaults_off(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert resolve_cache() is None

    def test_env_unset_with_default_on(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        cache = resolve_cache(default="on")
        assert cache is not None
        assert cache.root == default_cache_dir()

    def test_env_off_values(self, monkeypatch):
        for value in ("off", "0", "none", "false", ""):
            monkeypatch.setenv(CACHE_ENV_VAR, value)
            assert resolve_cache(default="on") is None

    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "results"))
        cache = resolve_cache()
        assert cache is not None
        assert cache.root == tmp_path / "results"

    def test_explicit_setting_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        cache = resolve_cache(str(tmp_path / "explicit"))
        assert cache is not None
        assert cache.root == tmp_path / "explicit"

    def test_passthrough_instances(self, tmp_path):
        existing = ResultCache(tmp_path)
        assert resolve_cache(existing) is existing
        assert resolve_cache(Path(tmp_path)).root == Path(tmp_path)
