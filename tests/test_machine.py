"""Unit tests for the functional machine: per-opcode semantics, hooks,
checkpointing."""

import pytest

from repro.functional import FunctionalMachine, Memory, to_signed
from repro.isa import ProgramBuilder

MASK64 = (1 << 64) - 1


def run_snippet(emit, steps=100, memory=None, setup=None):
    """Build a program from `emit(builder)`, run it, return the machine."""
    builder = ProgramBuilder()
    emit(builder)
    builder.halt()
    machine = FunctionalMachine(builder.build(), memory)
    if setup:
        setup(machine)
    machine.run(steps)
    return machine


class TestAluSemantics:
    def test_add(self):
        machine = run_snippet(lambda b: (b.li(1, 5), b.li(2, 7),
                                         b.add(3, 1, 2)))
        assert machine.registers[3] == 12

    def test_add_wraps_64_bits(self):
        machine = run_snippet(lambda b: (b.li(1, MASK64), b.li(2, 1),
                                         b.add(3, 1, 2)))
        assert machine.registers[3] == 0

    def test_sub_wraps(self):
        machine = run_snippet(lambda b: (b.li(1, 0), b.li(2, 1),
                                         b.sub(3, 1, 2)))
        assert machine.registers[3] == MASK64

    def test_mul_masks(self):
        machine = run_snippet(lambda b: (b.li(1, 1 << 60), b.li(2, 1 << 10),
                                         b.mul(3, 1, 2)))
        assert machine.registers[3] == (1 << 70) & MASK64

    def test_div(self):
        machine = run_snippet(lambda b: (b.li(1, 100), b.li(2, 7),
                                         b.div(3, 1, 2)))
        assert machine.registers[3] == 14

    def test_div_by_zero_yields_zero(self):
        machine = run_snippet(lambda b: (b.li(1, 100), b.div(3, 1, 0)))
        assert machine.registers[3] == 0

    def test_bitwise(self):
        machine = run_snippet(lambda b: (b.li(1, 0b1100), b.li(2, 0b1010),
                                         b.and_(3, 1, 2), b.or_(4, 1, 2),
                                         b.xor(5, 1, 2)))
        assert machine.registers[3] == 0b1000
        assert machine.registers[4] == 0b1110
        assert machine.registers[5] == 0b0110

    def test_shifts(self):
        machine = run_snippet(lambda b: (b.li(1, 1), b.li(2, 8),
                                         b.sll(3, 1, 2), b.srl(4, 3, 2)))
        assert machine.registers[3] == 256
        assert machine.registers[4] == 1

    def test_shift_amount_masked_to_63(self):
        machine = run_snippet(lambda b: (b.li(1, 1), b.li(2, 64),
                                         b.sll(3, 1, 2)))
        assert machine.registers[3] == 1  # 64 & 63 == 0

    def test_slt_signed(self):
        machine = run_snippet(lambda b: (b.li(1, -1), b.li(2, 1),
                                         b.slt(3, 1, 2), b.slt(4, 2, 1)))
        assert machine.registers[3] == 1
        assert machine.registers[4] == 0

    def test_immediates(self):
        machine = run_snippet(lambda b: (b.li(1, 10), b.addi(2, 1, -3),
                                         b.andi(3, 1, 2), b.ori(4, 1, 5),
                                         b.xori(5, 1, 0xFF),
                                         b.slti(6, 1, 11),
                                         b.slli(7, 1, 2), b.srli(8, 1, 1)))
        assert machine.registers[2] == 7
        assert machine.registers[3] == 2
        assert machine.registers[4] == 15
        assert machine.registers[5] == 0xF5
        assert machine.registers[6] == 1
        assert machine.registers[7] == 40
        assert machine.registers[8] == 5

    def test_writes_to_r0_discarded(self):
        machine = run_snippet(lambda b: (b.li(0, 42), b.addi(0, 0, 1)))
        assert machine.registers[0] == 0


class TestMemorySemantics:
    def test_store_load(self):
        machine = run_snippet(lambda b: (b.li(1, 0x2000), b.li(2, 77),
                                         b.store(2, 1, 8), b.load(3, 1, 8)))
        assert machine.registers[3] == 77

    def test_load_from_preinitialised_memory(self):
        memory = Memory()
        memory.store(0x3000, 555)
        machine = run_snippet(
            lambda b: (b.li(1, 0x3000), b.load(2, 1, 0)), memory=memory,
        )
        assert machine.registers[2] == 555


class TestControlSemantics:
    def test_beq_taken_and_not_taken(self):
        def emit(b):
            b.li(1, 5)
            b.li(2, 5)
            b.beq(1, 2, "eq")
            b.li(3, 111)   # skipped
            b.label("eq")
            b.li(4, 222)
        machine = run_snippet(emit)
        assert machine.registers[3] == 0
        assert machine.registers[4] == 222

    def test_bne_loop_count(self):
        def emit(b):
            b.li(1, 3)
            b.label("loop")
            b.addi(2, 2, 1)
            b.addi(1, 1, -1)
            b.bne(1, 0, "loop")
        machine = run_snippet(emit)
        assert machine.registers[2] == 3

    def test_blt_bge_signed(self):
        def emit(b):
            b.li(1, -5)
            b.li(2, 5)
            b.blt(1, 2, "lt")
            b.li(3, 1)
            b.label("lt")
            b.bge(2, 1, "ge")
            b.li(4, 1)
            b.label("ge")
            b.li(5, 1)
        machine = run_snippet(emit)
        assert machine.registers[3] == 0  # blt taken
        assert machine.registers[4] == 0  # bge taken
        assert machine.registers[5] == 1

    def test_call_sets_link_register(self):
        def emit(b):
            b.jmp("main")
            b.label("fn")
            b.li(1, 9)
            b.ret()
            b.label("main")
            b.call("fn")
        machine = run_snippet(emit)
        assert machine.registers[1] == 9
        assert machine.halted

    def test_callr_and_jr(self):
        def emit(b):
            b.jmp("main")
            b.label("fn")
            b.li(1, 3)
            b.ret()
            b.label("main")
            b.li(5, 1)      # index of fn
            b.callr(5)
            b.li(6, 8)      # index of the halt below... set by label math
        machine = run_snippet(emit)
        assert machine.registers[1] == 3

    def test_halt_stops_execution(self):
        machine = run_snippet(lambda b: b.li(1, 1), steps=50)
        assert machine.halted
        before = machine.instructions_retired
        machine.run(10)
        assert machine.instructions_retired == before


class TestRunAndHooks:
    def _looping_machine(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.li(1, 0x5000)
        builder.load(2, 1, 0)
        builder.store(2, 1, 8)
        builder.bne(0, 1, "top")
        return FunctionalMachine(builder.build())

    def test_run_executes_exact_count(self):
        machine = self._looping_machine()
        assert machine.run(1000) == 1000
        assert machine.instructions_retired == 1000

    def test_mem_hook_sees_loads_and_stores(self):
        machine = self._looping_machine()
        events = []
        machine.run(8, mem_hook=lambda pc, np_, addr, st: events.append(
            (pc, addr, st)))
        loads = [e for e in events if not e[2]]
        stores = [e for e in events if e[2]]
        assert loads and stores
        assert all(addr == 0x5000 for _pc, addr, _st in loads)
        assert all(addr == 0x5008 for _pc, addr, _st in stores)

    def test_branch_hook_sees_control(self):
        machine = self._looping_machine()
        events = []
        machine.run(8, branch_hook=lambda pc, np_, inst, taken:
                    events.append((pc, taken)))
        assert events
        assert all(taken for _pc, taken in events)

    def test_ifetch_hook_filters_same_block(self):
        machine = self._looping_machine()
        fetches = []
        machine.run(64, ifetch_hook=fetches.append, ifetch_block_bytes=64)
        # The 4-instruction loop fits in one 64-byte block: one fetch only.
        assert len(fetches) == 1

    def test_ifetch_hook_small_blocks(self):
        machine = self._looping_machine()
        fetches = []
        machine.run(8, ifetch_hook=fetches.append, ifetch_block_bytes=4)
        # One block per instruction: every instruction fetch reported.
        assert len(fetches) == 8


class TestCheckpoint:
    def test_checkpoint_restore_roundtrip(self):
        machine = TestRunAndHooks()._looping_machine()
        machine.run(10)
        checkpoint = machine.checkpoint()
        registers = list(machine.registers)
        pc = machine.pc
        machine.run(100)
        machine.restore(checkpoint)
        assert machine.registers == registers
        assert machine.pc == pc
        assert machine.instructions_retired == 10

    def test_restore_isolates_memory(self):
        machine = TestRunAndHooks()._looping_machine()
        machine.run(4)
        checkpoint = machine.checkpoint()
        word = machine.memory.load(0x5008)
        machine.memory.store(0x5008, 999)
        machine.restore(checkpoint)
        assert machine.memory.load(0x5008) == word

    def test_deterministic_replay_after_restore(self):
        machine = TestRunAndHooks()._looping_machine()
        machine.run(5)
        checkpoint = machine.checkpoint()
        machine.run(50)
        state_a = (machine.pc, list(machine.registers))
        machine.restore(checkpoint)
        machine.run(50)
        state_b = (machine.pc, list(machine.registers))
        assert state_a == state_b


class TestSigned:
    @pytest.mark.parametrize("value,expected", [
        (0, 0),
        (1, 1),
        (MASK64, -1),
        (1 << 63, -(1 << 63)),
        ((1 << 63) - 1, (1 << 63) - 1),
    ])
    def test_to_signed(self, value, expected):
        assert to_signed(value) == expected
