"""Unit tests for the detailed timing simulator.

These validate the *mechanisms* (dependences, bandwidth, cache latency,
branch prediction) through their effect on IPC, since absolute cycle
counts are a modelling choice.
"""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.functional import FunctionalMachine
from repro.isa import ProgramBuilder
from repro.timing import CoreConfig, TimingSimulator


def build_simulator(emit, core_config=None):
    builder = ProgramBuilder()
    emit(builder)
    machine = FunctionalMachine(builder.build())
    hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=16))
    predictor = BranchPredictor(PredictorConfig(
        pht_entries=1024, btb_entries=256, ras_entries=8,
    ))
    return TimingSimulator(machine, hierarchy, predictor, core_config)


def independent_alu_loop(b):
    b.label("top")
    for reg in range(1, 9):
        b.addi(reg, reg, 1)
    b.jmp("top")


def dependent_chain_loop(b):
    b.label("top")
    for _ in range(8):
        b.addi(1, 1, 1)
    b.jmp("top")


class TestThroughput:
    def test_ipc_never_exceeds_retire_width(self):
        sim = build_simulator(independent_alu_loop)
        result = sim.run(5000)
        assert result.ipc <= sim.config.retire_width

    def test_independent_ops_reach_superscalar_ipc(self):
        sim = build_simulator(independent_alu_loop)
        result = sim.run(5000)
        assert result.ipc > 1.5

    def test_dependent_chain_limits_ipc(self):
        independent = build_simulator(independent_alu_loop).run(5000)
        dependent = build_simulator(dependent_chain_loop).run(5000)
        assert dependent.ipc < independent.ipc

    def test_result_counts_instructions(self):
        sim = build_simulator(independent_alu_loop)
        result = sim.run(1234)
        assert result.instructions == 1234

    def test_zero_cycles_guard(self):
        sim = build_simulator(independent_alu_loop)
        result = sim.run(0)
        assert result.ipc == 0.0


class TestMemoryEffects:
    def _load_loop(self, stride):
        def emit(b):
            b.li(1, 0x100000)
            b.label("top")
            b.load(2, 1, 0)
            b.addi(1, 1, stride)
            b.jmp("top")
        return emit

    def test_cache_misses_lower_ipc(self):
        hits = build_simulator(self._load_loop(0)).run(3000)
        misses = build_simulator(self._load_loop(4096)).run(3000)
        assert misses.ipc < hits.ipc * 0.7

    def test_dependent_loads_slower_than_independent(self):
        # Dependent: each load's address register is its own destination,
        # so every load waits for the previous one (memory reads zero, so
        # the address settles on 0 and the loads all hit — the difference
        # is purely the dependence).
        def dependent(b):
            b.label("top")
            b.load(1, 1, 0)
            b.jmp("top")

        def independent(b):
            b.label("top")
            b.load(2, 1, 0)
            b.jmp("top")

        dep = build_simulator(dependent).run(2000)
        ind = build_simulator(independent).run(2000)
        assert dep.ipc < ind.ipc


class TestBranchEffects:
    def _branchy(self, period):
        def emit(b):
            b.li(3, period)
            b.add(4, 0, 0)
            b.label("top")
            b.addi(4, 4, 1)
            b.blt(4, 3, "skip")
            b.add(4, 0, 0)
            b.label("skip")
            b.addi(5, 5, 1)
            b.jmp("top")
        return emit

    def _random_branch(self, threshold):
        # LCG-driven data-dependent branch with taken bias threshold/256.
        def emit(b):
            b.li(6, 12345)
            b.label("top")
            b.li(8, 6364136223846793005)
            b.mul(6, 6, 8)
            b.li(8, 1442695040888963407)
            b.add(6, 6, 8)
            b.srli(7, 6, 33)
            b.andi(7, 7, 255)
            b.li(8, threshold)
            b.blt(7, 8, "taken")
            b.addi(1, 1, 1)
            b.jmp("top")
            b.label("taken")
            b.addi(2, 2, 1)
            b.jmp("top")
        return emit

    def test_random_branches_slower_than_biased(self):
        biased = build_simulator(self._random_branch(0))
        random = build_simulator(self._random_branch(128))
        biased_result = biased.run(5000)
        random_result = random.run(5000)
        assert random.predictor.stats.misprediction_rate() > \
            biased.predictor.stats.misprediction_rate() + 0.2
        assert random_result.ipc < biased_result.ipc

    def test_mispredict_penalty_configurable(self):
        harsh = CoreConfig(mispredict_penalty=40)
        mild = CoreConfig(mispredict_penalty=0)
        slow = build_simulator(self._branchy(3), harsh).run(4000)
        fast = build_simulator(self._branchy(3), mild).run(4000)
        assert slow.ipc < fast.ipc


class TestResourceLimits:
    def test_tiny_rob_throttles(self):
        big = build_simulator(independent_alu_loop,
                              CoreConfig(rob_entries=64)).run(4000)
        tiny = build_simulator(independent_alu_loop,
                               CoreConfig(rob_entries=4)).run(4000)
        assert tiny.ipc <= big.ipc

    def test_narrow_issue_throttles(self):
        wide = build_simulator(independent_alu_loop,
                               CoreConfig(issue_width=4)).run(4000)
        narrow = build_simulator(independent_alu_loop,
                                 CoreConfig(issue_width=1)).run(4000)
        assert narrow.ipc < wide.ipc

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_width=0)
        with pytest.raises(ValueError):
            CoreConfig(mispredict_penalty=-1)
        with pytest.raises(ValueError):
            CoreConfig(frontend_depth=9, pipeline_depth=7)


class TestDeterminismAndState:
    def test_repeatable_runs(self):
        a = build_simulator(independent_alu_loop).run(3000)
        b = build_simulator(independent_alu_loop).run(3000)
        assert a.cycles == b.cycles

    def test_halt_stops_early(self):
        def emit(b):
            b.addi(1, 1, 1)
            b.halt()
        sim = build_simulator(emit)
        result = sim.run(100)
        assert result.instructions == 2

    def test_cache_state_persists_across_runs(self):
        def loads(b):
            b.li(1, 0x100000)
            b.label("top")
            b.load(2, 1, 0)
            b.jmp("top")
        sim = build_simulator(loads)
        cold = sim.run(500)
        warm = sim.run(500)
        assert warm.cycles <= cold.cycles

    def test_pre_branch_hook_invoked(self):
        sim = build_simulator(independent_alu_loop)
        seen = []
        sim.run(50, pre_branch_hook=lambda pc, inst: seen.append(pc))
        assert seen  # the jmp at the loop bottom
        assert all(
            sim.machine.program.instructions[pc].is_control for pc in seen
        )
