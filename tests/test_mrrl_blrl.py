"""Unit tests for the MRRL and BLRL profile-driven warm-up baselines."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.sampling import SamplingRegimen
from repro.warmup import (
    BLRLWarmup,
    MRRLWarmup,
    SimulationContext,
    reuse_latency_percentile,
)
from repro.workloads import build_workload


def make_context(workload_name="twolf"):
    workload = build_workload(workload_name)
    return SimulationContext(
        machine=workload.make_machine(),
        hierarchy=MemoryHierarchy(paper_hierarchy_config(scale=16)),
        predictor=BranchPredictor(PredictorConfig(1024, 256, 8)),
        regimen=SamplingRegimen(100_000, 10, 1000),
    )


class TestReuseLatencyPercentile:
    def test_empty(self):
        assert reuse_latency_percentile([], 0.9) == 0

    def test_full_percentile_is_max(self):
        assert reuse_latency_percentile([5, 1, 9, 3], 1.0) == 9

    def test_median(self):
        assert reuse_latency_percentile([1, 2, 3, 4], 0.5) == 3

    def test_low_percentile(self):
        assert reuse_latency_percentile([10, 20, 30, 40], 0.25) == 20


@pytest.mark.parametrize("method_class", [MRRLWarmup, BLRLWarmup])
class TestProfiledWarmup:
    def test_percentile_validation(self, method_class):
        with pytest.raises(ValueError):
            method_class(percentile=0.0)
        with pytest.raises(ValueError):
            method_class(percentile=1.2)

    def test_name_includes_percentile(self, method_class):
        assert "99%" in method_class(0.99).name

    def test_profiling_preserves_architectural_state(self, method_class):
        """The look-ahead pass must be invisible: after skip(n), the
        machine state equals plain execution of n instructions."""
        context = make_context()
        method = method_class(0.9)
        method.bind(context)
        method.skip(3000)

        plain = make_context()
        plain.machine.run(3000)
        assert context.machine.pc == plain.machine.pc
        assert context.machine.registers == plain.machine.registers
        assert context.machine.instructions_retired == \
            plain.machine.instructions_retired

    def test_window_recorded_and_bounded(self, method_class):
        context = make_context()
        method = method_class(0.9)
        method.bind(context)
        method.skip(3000)
        assert len(method.window_history) == 1
        assert 0 <= method.window_history[0] <= 3000

    def test_warms_some_state(self, method_class):
        context = make_context("vpr")
        method = method_class(0.95)
        method.bind(context)
        method.skip(5000)
        # vpr reuses lines across the boundary, so a window must open.
        assert method.cost.cache_updates > 0


class TestWindowSemantics:
    def test_higher_percentile_never_shrinks_window(self):
        windows = {}
        for percentile in (0.5, 0.99):
            context = make_context("vpr")
            method = MRRLWarmup(percentile)
            method.bind(context)
            method.skip(5000)
            windows[percentile] = method.window_history[0]
        assert windows[0.99] >= windows[0.5]

    def test_blrl_window_at_most_mrrl_window(self):
        """BLRL considers only boundary-crossing reuses, a subset of the
        reuses MRRL covers, so its window cannot be larger at the same
        percentile."""
        context = make_context("vpr")
        mrrl = MRRLWarmup(0.95)
        mrrl.bind(context)
        mrrl.skip(5000)

        context = make_context("vpr")
        blrl = BLRLWarmup(0.95)
        blrl.bind(context)
        blrl.skip(5000)
        assert blrl.window_history[0] <= 5000
        assert mrrl.window_history[0] <= 5000
